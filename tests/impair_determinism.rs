//! Fault injection must not weaken the determinism contract.
//!
//! The impairment schedule (link flaps, wire corruption, cross-traffic) is
//! executed as ordinary scheduler events, so an impaired sweep has to stay
//! **bit-identical** for every `--jobs` value and across both event-list
//! backends — exactly like a healthy one. The property test at the bottom
//! pins the semantics the counters summarize: a downed link delivers
//! nothing while it is dark.

use proptest::prelude::*;
use tcpburst_core::experiments::Sweep;
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder, ScenarioConfig};
use tcpburst_des::{QueueBackend, Scheduler, SimDuration, SimTime};
use tcpburst_net::{
    Delivered, DropTailQueue, Ecn, FlowId, NetEvent, Network, Packet, PacketKind,
};

/// A schedule that exercises every impairment class at once.
const IMPAIR: &str = "flap:300ms/1500ms,corrupt:1e-4,cross:200";

fn impaired_base(secs: u64, seed: u64) -> ScenarioConfig {
    ScenarioBuilder::paper()
        .impairments(|i| i.spec(IMPAIR).expect("valid spec"))
        .instrumentation(|i| i.secs(secs).seed(seed))
        .finish()
}

#[test]
fn impaired_sweep_is_bit_identical_across_thread_counts() {
    let base = impaired_base(5, 7);
    let protocols = [Protocol::Reno, Protocol::Vegas];
    let clients = [5, 10];
    let serial = Sweep::run_with_jobs_from(&base, &protocols, &clients, 1);
    // The schedule must actually fire, or this test proves nothing.
    assert!(serial
        .cells
        .iter()
        .all(|c| c.report.impairments.link_down_events > 0));
    for jobs in [4, 0] {
        let parallel = Sweep::run_with_jobs_from(&base, &protocols, &clients, jobs);
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.protocol, b.protocol, "jobs={jobs}: cell order changed");
            assert_eq!(a.clients, b.clients, "jobs={jobs}: cell order changed");
            assert_eq!(
                a.report.cov.to_bits(),
                b.report.cov.to_bits(),
                "jobs={jobs}: c.o.v. diverged for {:?}/{}",
                a.protocol,
                a.clients
            );
            assert_eq!(a.report.delivered_packets, b.report.delivered_packets);
            assert_eq!(a.report.generated_packets, b.report.generated_packets);
            assert_eq!(a.report.events_processed, b.report.events_processed);
            assert_eq!(a.report.impairments, b.report.impairments);
        }
    }
}

#[test]
fn impaired_run_is_identical_across_queue_backends() {
    let base = impaired_base(8, 3);
    let run = |backend| {
        let cfg = ScenarioBuilder::from_config(base)
            .instrumentation(|i| i.queue(backend))
            .finish();
        Scenario::run(&cfg)
    };
    let cal = run(QueueBackend::Calendar);
    let heap = run(QueueBackend::BinaryHeap);
    assert!(cal.impairments.link_down_events > 0);
    assert!(cal.impairments.cross_injected > 0);
    // The backends differ in how they carry superseded timers, never in
    // what the simulated world does.
    assert_eq!(cal.cov.to_bits(), heap.cov.to_bits());
    assert_eq!(cal.delivered_packets, heap.delivered_packets);
    assert_eq!(cal.generated_packets, heap.generated_packets);
    assert_eq!(cal.loss_percent.to_bits(), heap.loss_percent.to_bits());
    assert_eq!(cal.impairments, heap.impairments);
}

#[derive(Debug)]
enum Ev {
    Inject,
    Down,
    Up,
    Net(NetEvent),
}

impl From<NetEvent> for Ev {
    fn from(ev: NetEvent) -> Self {
        Ev::Net(ev)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the injection pattern and outage window, a dark link hands
    /// the hosts nothing: every arrival lands at or before the down
    /// transition or after the up transition, and every packet is either
    /// delivered or accounted as lost in flight.
    #[test]
    fn downed_link_delivers_nothing_while_down(
        n in 1usize..20,
        down_ms in 1u64..50,
        outage_ms in 1u64..80,
        gap_us in (100u64..5_000),
    ) {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        // 1 Mbps, 1 ms propagation; capacity n so nothing is tail-dropped.
        let ab = net.add_link(
            a,
            b,
            1_000_000,
            SimDuration::from_millis(1),
            DropTailQueue::new(n),
        );
        net.set_route(a, b, ab);
        let mut sched: Scheduler<Ev> = Scheduler::new();
        for i in 0..n {
            sched.schedule_at(
                SimTime::from_nanos(i as u64 * gap_us * 1_000),
                Ev::Inject,
            );
        }
        let down = SimTime::from_millis(down_ms);
        let up = SimTime::from_millis(down_ms + outage_ms);
        sched.schedule_at(down, Ev::Down);
        sched.schedule_at(up, Ev::Up);
        let (mut arrived, mut lost) = (0usize, 0usize);
        while let Some((t, ev)) = sched.pop() {
            match ev {
                Ev::Inject => {
                    let p = Packet {
                        flow: FlowId(0),
                        kind: PacketKind::Datagram,
                        size_bytes: 1000,
                        src: a,
                        dst: b,
                        created_at: t,
                        ecn: Ecn::NotCapable,
                    };
                    net.inject(p, &mut sched);
                }
                Ev::Down => {
                    prop_assert!(net.set_link_up(ab, false, &mut sched));
                }
                Ev::Up => {
                    prop_assert!(net.set_link_up(ab, true, &mut sched));
                }
                Ev::Net(NetEvent::TxComplete { link, epoch }) => {
                    net.on_tx_complete(link, epoch, &mut sched);
                }
                Ev::Net(NetEvent::Delivery { link, epoch, packet }) => {
                    match net.on_delivery(link, epoch, packet, &mut sched) {
                        Delivered::ToHost { node, .. } => {
                            prop_assert_eq!(node, b);
                            // A delivery sharing the down transition's
                            // timestamp may dispatch first; past that
                            // instant the link hands over nothing until up.
                            prop_assert!(
                                t <= down || t > up,
                                "delivery at {:?} inside outage [{:?}, {:?}]",
                                t, down, up
                            );
                            arrived += 1;
                        }
                        Delivered::LostOnWire { .. } => lost += 1,
                        Delivered::Forwarded { .. } => {
                            prop_assert!(false, "no routers in this topology");
                        }
                    }
                }
            }
        }
        prop_assert_eq!(arrived + lost, n, "every packet must be accounted");
        prop_assert_eq!(net.link(ab).stats().lost_in_flight as usize, lost);
    }
}
