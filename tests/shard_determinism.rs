//! The conservative parallel engine's determinism contract.
//!
//! The sharded engine (`--shards`) partitions one run's fixed domain set
//! (one per client, plus the central gateway/server domain) across worker
//! threads. The contract it must keep:
//!
//! 1. **Shard-count invariance** — the `ScenarioReport` is byte-identical
//!    at shards 1, 2 and 4 (and any other count): threads only partition
//!    the domains, they never change what any domain computes.
//! 2. **Statistical agreement with the serial engine** — the sharded
//!    engine is allowed to differ from `shards: 0` in same-instant
//!    tie-breaks, but both engines simulate the same physics, so their
//!    aggregate results must agree closely.
//! 3. **Honest fallback** — configurations the sharded engine cannot honor
//!    (audit, event traces, wire corruption) run on the serial engine and
//!    reproduce its results exactly.
//!
//! The property test at the bottom drives the invariance check across
//! randomized small configurations.

use proptest::prelude::*;
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder, ScenarioReport};

/// Debug-formats a report with the wall clock (the one documented
/// non-deterministic field) zeroed, so equality means byte equality of
/// every simulated quantity: bins, flows, counters, queue stats, timers.
fn fingerprint(mut report: ScenarioReport) -> String {
    report.wall_clock_secs = 0.0;
    format!("{report:?}")
}

fn run_sharded(protocol: Protocol, clients: usize, secs: u64, shards: usize) -> ScenarioReport {
    let cfg = ScenarioBuilder::paper()
        .topology(|t| t.clients(clients))
        .transport(|t| t.protocol(protocol))
        .instrumentation(|i| i.secs(secs).shards(shards))
        .finish();
    Scenario::run(&cfg)
}

fn assert_shard_invariant(label: &str, reports: Vec<(usize, ScenarioReport)>) {
    let mut prints = reports.into_iter().map(|(k, r)| (k, fingerprint(r)));
    let (k0, base) = prints.next().expect("at least one shard count");
    for (k, p) in prints {
        assert_eq!(
            base, p,
            "{label}: shards={k} diverged from shards={k0}"
        );
    }
}

#[test]
fn reno_report_is_identical_at_shards_1_2_4() {
    let reports: Vec<_> = [1, 2, 4]
        .into_iter()
        .map(|k| (k, run_sharded(Protocol::Reno, 32, 5, k)))
        .collect();
    assert!(reports[0].1.delivered_packets > 0, "run must do real work");
    assert!(
        reports[0].1.tcp_totals.fast_retransmits + reports[0].1.tcp_totals.timeouts > 0,
        "run must exercise loss recovery, or the test is too easy"
    );
    assert_shard_invariant("Reno", reports);
}

#[test]
fn delack_red_spread_report_is_identical_at_shards_1_2_4() {
    // Delayed ACKs put timers in the central domain; RED puts an RNG in
    // the gateway queue; the RTT spread de-aligns the per-client windows.
    let run = |k| {
        let cfg = ScenarioBuilder::paper()
            .topology(|t| t.clients(10).rtt_spread(0.5))
            .transport(|t| t.protocol(Protocol::RenoRed).delayed_ack(true))
            .instrumentation(|i| i.secs(5).shards(k))
            .finish();
        Scenario::run(&cfg)
    };
    let reports: Vec<_> = [1, 2, 4].into_iter().map(|k| (k, run(k))).collect();
    assert!(reports[0].1.delivered_packets > 0);
    assert_shard_invariant("RenoRed+delack+spread", reports);
}

#[test]
fn udp_report_is_identical_at_shards_1_2_4() {
    let reports: Vec<_> = [1, 2, 4]
        .into_iter()
        .map(|k| (k, run_sharded(Protocol::Udp, 12, 5, k)))
        .collect();
    assert!(reports[0].1.delivered_packets > 0);
    assert_shard_invariant("UDP", reports);
}

#[test]
fn impaired_report_is_identical_at_shards_1_2_4() {
    // Flap, capacity, delay and cross-traffic all live in the central
    // domain; corruption is excluded (it falls back to serial).
    let run = |k| {
        let cfg = ScenarioBuilder::paper()
            .topology(|t| t.clients(10))
            .transport(|t| t.protocol(Protocol::Reno))
            .impairments(|i| i.spec("flap:300ms/1500ms,cross:200,cap:0.5/1s").expect("valid"))
            .instrumentation(|i| i.secs(5).shards(k))
            .finish();
        Scenario::run(&cfg)
    };
    let reports: Vec<_> = [1, 2, 4].into_iter().map(|k| (k, run(k))).collect();
    let first = &reports[0].1;
    assert!(first.impairments.link_down_events > 0, "flap must fire");
    assert!(first.impairments.cross_injected > 0, "cross must fire");
    assert_shard_invariant("impaired", reports);
}

#[test]
fn sharded_engine_agrees_with_serial_statistics() {
    let serial = run_sharded(Protocol::Reno, 12, 5, 0);
    let sharded = run_sharded(Protocol::Reno, 12, 5, 2);
    // Generation is open-loop (source RNG only), so the counts match
    // exactly; delivery differs only in same-instant tie-breaks.
    assert_eq!(serial.generated_packets, sharded.generated_packets);
    let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-9);
    assert!(
        rel(serial.delivered_packets as f64, sharded.delivered_packets as f64) < 0.02,
        "delivered diverged: serial {} vs sharded {}",
        serial.delivered_packets,
        sharded.delivered_packets
    );
    assert!(
        rel(serial.cov, sharded.cov) < 0.10,
        "c.o.v. diverged: serial {} vs sharded {}",
        serial.cov,
        sharded.cov
    );
}

#[test]
fn unsupported_configs_fall_back_to_the_serial_engine() {
    // Audit is serial-only: shards must be ignored, bit for bit.
    let run = |k: usize| {
        let cfg = ScenarioBuilder::paper()
            .topology(|t| t.clients(8))
            .instrumentation(|i| i.secs(3).audit(true).shards(k))
            .finish();
        Scenario::run(&cfg)
    };
    let serial = run(0);
    let fell_back = run(4);
    assert!(serial.audit.is_some(), "audit must have run");
    assert_eq!(fingerprint(serial), fingerprint(fell_back));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the (small) configuration, the report is invariant in the
    /// shard count.
    #[test]
    fn report_is_shard_count_invariant(
        clients in 1usize..9,
        secs in 2u64..4,
        seed in 0u64..1_000,
        proto_ix in 0usize..3,
        spread_ix in 0usize..2,
    ) {
        let protocol = [Protocol::Reno, Protocol::Vegas, Protocol::Udp][proto_ix];
        let spread = [0.0, 0.5][spread_ix];
        let run = |k: usize| {
            let cfg = ScenarioBuilder::paper()
                .topology(|t| t.clients(clients).rtt_spread(spread))
                .transport(|t| t.protocol(protocol))
                .instrumentation(|i| i.secs(secs).seed(seed).shards(k))
                .finish();
            Scenario::run(&cfg)
        };
        let base = fingerprint(run(1));
        for k in [2, 4] {
            prop_assert_eq!(
                &base,
                &fingerprint(run(k)),
                "shards={} diverged (protocol {:?}, {} clients, seed {})",
                k, protocol, clients, seed
            );
        }
    }
}
