//! The paper's qualitative claims, asserted at reduced scale.
//!
//! These tests pin the *shape* of every headline result (who wins, in which
//! direction, roughly by how much) using shorter runs than the paper's
//! 200 s; the full-scale numbers live in the bench harness and
//! EXPERIMENTS.md.

use tcpburst_core::experiments::{cwnd_evolution, paper_traced_clients};
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};
use tcpburst_des::{SimDuration, SimTime};
use tcpburst_stats::RunningStats;

const SECS: u64 = 25;

fn run(clients: usize, protocol: Protocol) -> tcpburst_core::ScenarioReport {
    let cfg = ScenarioBuilder::paper()
        .topology(|t| t.clients(clients))
        .transport(|t| t.protocol(protocol))
        .instrumentation(|i| i.secs(SECS))
        .finish();
    Scenario::run(&cfg)
}

/// Figure 2, uncongested regime: every transport's c.o.v. is close to the
/// aggregated-Poisson reference ("the different TCP implementations exhibit
/// nearly identical behavior" below the congestion knee).
#[test]
fn fig2_uncongested_everything_tracks_poisson() {
    for p in [Protocol::Udp, Protocol::Reno, Protocol::Vegas] {
        let r = run(15, p);
        assert!(
            (0.8..1.4).contains(&r.cov_ratio()),
            "{p:?}: uncongested cov ratio {} strays from 1",
            r.cov_ratio()
        );
    }
}

/// Figure 2, UDP: no adverse modulation at any load.
#[test]
fn fig2_udp_never_modulates() {
    for n in [20, 40, 60] {
        let r = run(n, Protocol::Udp);
        assert!(
            (0.85..1.25).contains(&r.cov_ratio()),
            "UDP at {n} clients: cov ratio {}",
            r.cov_ratio()
        );
    }
}

/// Figure 2, heavy congestion: Reno modulates the aggregate to be far
/// burstier than Poisson (the paper reports >140%); Vegas stays at or below
/// the reference.
#[test]
fn fig2_reno_bursty_vegas_smooth_under_heavy_congestion() {
    let reno = run(60, Protocol::Reno);
    let vegas = run(60, Protocol::Vegas);
    assert!(
        reno.cov_ratio() > 1.5,
        "Reno cov ratio {} should be well above Poisson",
        reno.cov_ratio()
    );
    assert!(
        vegas.cov_ratio() < 1.1,
        "Vegas cov ratio {} should hug the Poisson reference",
        vegas.cov_ratio()
    );
    assert!(
        reno.cov > 2.0 * vegas.cov,
        "Reno cov {} should dwarf Vegas cov {}",
        reno.cov,
        vegas.cov
    );
}

/// Figure 2: RED increases Reno's modulation relative to plain FIFO under
/// heavy congestion.
#[test]
fn fig2_red_worsens_reno_burstiness() {
    let plain = run(60, Protocol::Reno);
    let red = run(60, Protocol::RenoRed);
    assert!(
        red.cov > plain.cov * 0.9,
        "Reno/RED cov {} collapsed below plain Reno {}",
        red.cov,
        plain.cov
    );
    // The paper: Reno/RED is the burstiest configuration of all.
    assert!(
        red.cov_ratio() > 1.4,
        "Reno/RED cov ratio {} should be far above Poisson",
        red.cov_ratio()
    );
}

/// Figure 3: under heavy congestion Vegas sustains at least Reno's
/// throughput, and each plain variant beats its RED counterpart.
#[test]
fn fig3_throughput_ordering() {
    let reno = run(60, Protocol::Reno);
    let reno_red = run(60, Protocol::RenoRed);
    let vegas = run(60, Protocol::Vegas);
    let vegas_red = run(60, Protocol::VegasRed);
    assert!(
        vegas.delivered_packets as f64 >= 0.98 * reno.delivered_packets as f64,
        "Vegas {} should not trail Reno {}",
        vegas.delivered_packets,
        reno.delivered_packets
    );
    assert!(
        reno.delivered_packets > reno_red.delivered_packets,
        "plain Reno {} should beat Reno/RED {}",
        reno.delivered_packets,
        reno_red.delivered_packets
    );
    assert!(
        vegas.delivered_packets > vegas_red.delivered_packets,
        "plain Vegas {} should beat Vegas/RED {}",
        vegas.delivered_packets,
        vegas_red.delivered_packets
    );
}

/// Figure 4: Vegas loses fewer packets than Reno; Vegas/RED is the worst
/// loss configuration (duplicate ACKs keep pushing data into a full RED
/// gateway).
#[test]
fn fig4_loss_ordering() {
    let reno = run(60, Protocol::Reno);
    let vegas = run(60, Protocol::Vegas);
    let vegas_red = run(60, Protocol::VegasRed);
    assert!(
        vegas.loss_percent < reno.loss_percent,
        "Vegas loss {}% should be below Reno {}%",
        vegas.loss_percent,
        reno.loss_percent
    );
    assert!(
        vegas_red.loss_percent > vegas.loss_percent,
        "Vegas/RED loss {}% should exceed plain Vegas {}%",
        vegas_red.loss_percent,
        vegas.loss_percent
    );
}

/// Figure 13: Reno resolves far more of its losses by timeout than Vegas
/// does (Vegas's fine-grained dup-ACK retransmission catches them early).
#[test]
fn fig13_timeout_ratio_reno_above_vegas() {
    let reno = run(60, Protocol::Reno);
    let vegas = run(60, Protocol::Vegas);
    assert!(
        reno.timeout_dupack_ratio() > vegas.timeout_dupack_ratio(),
        "Reno ratio {} should exceed Vegas ratio {}",
        reno.timeout_dupack_ratio(),
        vegas.timeout_dupack_ratio()
    );
    assert!(
        reno.tcp_totals.timeouts > vegas.tcp_totals.timeouts,
        "Reno timeouts {} should exceed Vegas {}",
        reno.tcp_totals.timeouts,
        vegas.tcp_totals.timeouts
    );
}

/// Figures 5 vs 10 (uncongested cwnd evolution): Reno's windows keep
/// probing (high variability); Vegas's settle near a stable operating point
/// (low variability).
#[test]
fn fig5_vs_fig10_cwnd_variability() {
    let duration = SimDuration::from_secs(15);
    let spread = |protocol| {
        let fig = cwnd_evolution(protocol, 39, &paper_traced_clients(39), duration, 3);
        let mut agg = RunningStats::new();
        for t in &fig.traces {
            // Skip the first 5 s (startup transient), sample at 0.1 s.
            let samples = t
                .trace
                .sample_hold(SimDuration::from_millis(100), SimTime::ZERO + duration);
            for &w in &samples[50..] {
                agg.push(w);
            }
        }
        agg
    };
    let reno = spread(Protocol::Reno);
    let vegas = spread(Protocol::Vegas);
    assert!(
        reno.population_std_dev() > vegas.population_std_dev(),
        "Reno cwnd sd {} should exceed Vegas sd {}",
        reno.population_std_dev(),
        vegas.population_std_dev()
    );
}

/// Figures 8–9: under persistent congestion Reno windows fluctuate without
/// settling — the trace keeps changing through the entire run.
#[test]
fn fig8_reno_windows_never_stabilize_past_crossover() {
    let duration = SimDuration::from_secs(20);
    let fig = cwnd_evolution(Protocol::Reno, 45, &[0], duration, 5);
    let trace = &fig.traces[0].trace;
    // Count direction changes in the second half of the run.
    let samples = trace.sample_hold(SimDuration::from_millis(100), SimTime::ZERO + duration);
    let tail = &samples[samples.len() / 2..];
    let changes = tail.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        changes > 10,
        "expected ongoing window fluctuation, saw {changes} changes"
    );
}

/// Section 3.2: the slow-start burst mechanism — the application keeps
/// writing while the window is collapsed, so the send buffer backlogs and
/// the post-recovery window dumps a burst. Peak backlog must far exceed the
/// advertised window under heavy congestion.
#[test]
fn sec32_send_buffers_accumulate_under_congestion() {
    let r = run(60, Protocol::Reno);
    assert!(
        r.tcp_totals.peak_backlog > 20,
        "peak backlog {} should exceed the 20-packet advertised window",
        r.tcp_totals.peak_backlog
    );
}

/// Section 3.2/3.4: "TCP streams tend to recognize congestion in the
/// network at the same time and thus halve their congestion windows at the
/// same time." Reno's loss responses must cluster across flows far more
/// than Vegas's under heavy congestion.
#[test]
fn sec34_reno_loss_responses_synchronize_across_flows() {
    let synchrony_peak = |protocol| {
        let cfg = ScenarioBuilder::paper()
            .topology(|t| t.clients(50))
            .transport(|t| t.protocol(protocol))
            .instrumentation(|i| i.secs(15).trace_events(true))
            .finish();
        let r = Scenario::run(&cfg);
        let log = r.event_log.expect("tracing enabled");
        log.loss_response_synchrony(
            SimDuration::from_millis(500),
            SimTime::ZERO + cfg.duration,
        )
        .into_iter()
        .max()
        .unwrap_or(0)
    };
    let reno = synchrony_peak(Protocol::Reno);
    let vegas = synchrony_peak(Protocol::Vegas);
    assert!(
        reno >= 25,
        "Reno peak synchrony {reno}/50 flows too low for the paper's claim"
    );
    assert!(
        reno > vegas,
        "Reno synchrony {reno} should exceed Vegas {vegas}"
    );
}
