//! Golden-trace guard for the congestion-control refactor.
//!
//! The five TCP variants must produce byte-identical figure tables across
//! refactors of the transport stack. The canonical tables (a small
//! fixed grid: all five variants, 12 and 48 clients, 6 simulated
//! seconds — the 48-client column overloads the bottleneck so loss
//! recovery and retransmission paths are exercised) are committed under
//! `tests/golden/fig_tables.txt`; this test re-renders them and
//! compares byte-for-byte.
//!
//! To re-bless the golden file after an *intentional* behavior change:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! A second test asserts the tables are invariant across the two event-queue
//! backends and across `--jobs` 1 vs 4, so the golden file pins all four
//! execution modes at once.

use tcpburst_core::experiments::Sweep;
use tcpburst_core::{Protocol, ScenarioBuilder};
use tcpburst_des::QueueBackend;

/// All five TCP variants, in canonical order.
const VARIANTS: [Protocol; 5] = [
    Protocol::Tahoe,
    Protocol::Reno,
    Protocol::NewReno,
    Protocol::Vegas,
    Protocol::Sack,
];

/// The modern policies added with the delivery-rate/pacing engine, pinned
/// by their own golden file (`tests/golden/modern_tables.txt`).
const MODERN: [Protocol; 3] = [Protocol::Cubic, Protocol::Hstcp, Protocol::Bbr];

const CLIENTS: [usize; 2] = [12, 48];
const SECS: u64 = 6;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/fig_tables.txt")
}

fn modern_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/modern_tables.txt")
}

fn figure_tables(protocols: &[Protocol], queue: QueueBackend, jobs: usize) -> String {
    let base = ScenarioBuilder::paper()
        .instrumentation(|i| i.secs(SECS).queue(queue))
        .finish();
    let sweep = Sweep::run_with_jobs_from(&base, protocols, &CLIENTS, jobs);
    format!(
        "{}{}{}{}",
        sweep.fig2_cov_table(),
        sweep.fig3_throughput_table(),
        sweep.fig4_loss_table(),
        sweep.fig13_timeout_ratio_table(),
    )
}

#[test]
fn five_variants_match_golden_tables() {
    let got = figure_tables(&VARIANTS, QueueBackend::Calendar, 1);
    let path = golden_path();
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("tests/golden/fig_tables.txt missing; bless it with BLESS_GOLDEN=1");
    assert_eq!(
        got, want,
        "figure tables diverged from tests/golden/fig_tables.txt; if the \
         change is intentional, re-bless with BLESS_GOLDEN=1"
    );
}

/// `GeneralizedAimd { alpha: 0, beta: 1 }` must *be* Reno: `pow(x, 0)` and
/// `pow(x, 1)` are exact in IEEE-754 and `x - x/2 == x/2`, so the default
/// exponents reproduce Reno's figure tables byte-for-byte (after the
/// width-preserving ` GAIMD` → `  Reno` label swap).
#[test]
fn gaimd_default_exponents_reproduce_reno_tables() {
    let reno = figure_tables(&[Protocol::Reno], QueueBackend::Calendar, 1);
    let gaimd = figure_tables(&[Protocol::Gaimd], QueueBackend::Calendar, 1);
    assert_eq!(
        gaimd.replace(" GAIMD", "  Reno"),
        reno,
        "GAIMD(alpha=0, beta=1) diverged from Reno"
    );
}

#[test]
fn tables_invariant_across_backends_and_jobs() {
    let reference = figure_tables(&VARIANTS, QueueBackend::Calendar, 1);
    for (queue, jobs) in [
        (QueueBackend::Calendar, 4),
        (QueueBackend::BinaryHeap, 1),
        (QueueBackend::BinaryHeap, 4),
    ] {
        assert_eq!(
            figure_tables(&VARIANTS, queue, jobs),
            reference,
            "figure tables differ for {queue:?} with jobs={jobs}"
        );
    }
}

#[test]
fn modern_variants_match_golden_tables() {
    let got = figure_tables(&MODERN, QueueBackend::Calendar, 1);
    let path = modern_golden_path();
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("tests/golden/modern_tables.txt missing; bless it with BLESS_GOLDEN=1");
    assert_eq!(
        got, want,
        "modern-policy figure tables diverged from tests/golden/modern_tables.txt; \
         if the change is intentional, re-bless with BLESS_GOLDEN=1"
    );
}

/// Cubic, HSTCP and BBR (the one paced policy, so its burst timing rides
/// the paced-send timer path) must be bit-identical across the two event
/// queue backends and across `--jobs` 1 vs 4, exactly like the legacy set.
#[test]
fn modern_tables_invariant_across_backends_and_jobs() {
    let reference = figure_tables(&MODERN, QueueBackend::Calendar, 1);
    for (queue, jobs) in [
        (QueueBackend::Calendar, 4),
        (QueueBackend::BinaryHeap, 1),
        (QueueBackend::BinaryHeap, 4),
    ] {
        assert_eq!(
            figure_tables(&MODERN, queue, jobs),
            reference,
            "modern figure tables differ for {queue:?} with jobs={jobs}"
        );
    }
}
