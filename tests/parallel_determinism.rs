//! Parallel execution must be invisible in the results: any `--jobs` value
//! has to reproduce the serial sweep **bit for bit** — not merely "close",
//! since floating-point accumulation order changes would silently move
//! published figure values between machines with different core counts.

use tcpburst_core::experiments::Sweep;
use tcpburst_core::{Protocol, ReplicatedSweep};
use tcpburst_des::SimDuration;

const PROTOCOLS: [Protocol; 3] = [Protocol::Udp, Protocol::Reno, Protocol::VegasRed];
const CLIENTS: [usize; 2] = [5, 12];

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let duration = SimDuration::from_secs(5);
    let serial = Sweep::run_with_jobs(&PROTOCOLS, &CLIENTS, duration, 7, 1);
    for jobs in [2, 4, 7] {
        let parallel = Sweep::run_with_jobs(&PROTOCOLS, &CLIENTS, duration, 7, jobs);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.protocol, b.protocol, "jobs={jobs}: cell order changed");
            assert_eq!(a.clients, b.clients, "jobs={jobs}: cell order changed");
            // Float fields compared via to_bits: equality must be exact.
            assert_eq!(
                a.report.cov.to_bits(),
                b.report.cov.to_bits(),
                "jobs={jobs}: c.o.v. diverged for {:?}/{}",
                a.protocol,
                a.clients
            );
            assert_eq!(a.report.loss_percent.to_bits(), b.report.loss_percent.to_bits());
            assert_eq!(a.report.delivered_packets, b.report.delivered_packets);
            assert_eq!(a.report.generated_packets, b.report.generated_packets);
            assert_eq!(a.report.events_processed, b.report.events_processed);
        }
    }
}

#[test]
fn sweep_default_jobs_matches_serial_tables() {
    let duration = SimDuration::from_secs(5);
    // Sweep::run uses jobs = 0 (all cores); whatever this host has, the
    // rendered figure tables must be byte-identical to the serial run.
    let auto = Sweep::run(&PROTOCOLS, &CLIENTS, duration, 7);
    let serial = Sweep::run_with_jobs(&PROTOCOLS, &CLIENTS, duration, 7, 1);
    assert_eq!(auto.fig2_cov_table(), serial.fig2_cov_table());
    assert_eq!(auto.fig3_throughput_table(), serial.fig3_throughput_table());
    assert_eq!(auto.fig4_loss_table(), serial.fig4_loss_table());
    assert_eq!(
        auto.fig13_timeout_ratio_table(),
        serial.fig13_timeout_ratio_table()
    );
}

#[test]
fn replicated_sweep_is_bit_identical_across_thread_counts() {
    let duration = SimDuration::from_secs(3);
    let seeds = [1, 2, 3];
    let serial =
        ReplicatedSweep::run_with_jobs(&PROTOCOLS, &CLIENTS, duration, &seeds, 1);
    for jobs in [2, 4] {
        let parallel =
            ReplicatedSweep::run_with_jobs(&PROTOCOLS, &CLIENTS, duration, &seeds, jobs);
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.clients, b.clients);
            // The CI fold is order-sensitive; the engine must feed samples
            // to RunningStats in canonical seed order regardless of which
            // worker finished first.
            assert_eq!(a.cov.mean().to_bits(), b.cov.mean().to_bits());
            assert_eq!(
                a.cov.ci95_half_width().to_bits(),
                b.cov.ci95_half_width().to_bits()
            );
            assert_eq!(a.delivered.mean().to_bits(), b.delivered.mean().to_bits());
            assert_eq!(
                a.loss_percent.mean().to_bits(),
                b.loss_percent.mean().to_bits()
            );
            assert_eq!(
                a.timeout_ratio.mean().to_bits(),
                b.timeout_ratio.mean().to_bits()
            );
        }
        assert_eq!(serial.fig2_cov_table(), parallel.fig2_cov_table());
        assert_eq!(serial.fig13_ratio_table(), parallel.fig13_ratio_table());
    }
}

#[test]
fn oversubscribed_jobs_clamp_and_still_agree() {
    // More workers than grid points: the engine clamps instead of spawning
    // idle threads, and the answer still matches serial.
    let duration = SimDuration::from_secs(2);
    let serial = Sweep::run_with_jobs(&[Protocol::Reno], &[5], duration, 3, 1);
    let wide = Sweep::run_with_jobs(&[Protocol::Reno], &[5], duration, 3, 64);
    assert_eq!(
        serial.cells[0].report.cov.to_bits(),
        wide.cells[0].report.cov.to_bits()
    );
    assert_eq!(
        serial.cells[0].report.events_processed,
        wide.cells[0].report.events_processed
    );
}
