//! Cross-crate integration tests: the full stack (des → net → transport →
//! traffic → core) wired together, checked for conservation laws, timer
//! hygiene and reproducibility.

use tcpburst_core::{GatewayKind, Protocol, Scenario, ScenarioBuilder, ScenarioConfig, SourceKind};
use tcpburst_des::SimDuration;
use tcpburst_traffic::ParetoOnOffConfig;
use tcpburst_transport::TcpVariant;

fn cfg(clients: usize, protocol: Protocol, secs: u64) -> ScenarioConfig {
    ScenarioBuilder::paper()
        .topology(|t| t.clients(clients))
        .transport(|t| t.protocol(protocol))
        .instrumentation(|i| i.secs(secs))
        .finish()
}

/// Every packet offered to the bottleneck queue is accounted for: it either
/// departed, was dropped, or is still queued/in flight at the end.
#[test]
fn bottleneck_accounting_conserves_packets() {
    for p in [Protocol::Udp, Protocol::Reno, Protocol::Vegas] {
        let r = Scenario::run(&cfg(45, p, 10));
        let q = r.bottleneck_queue;
        assert!(
            q.departures + q.drops_total() <= q.arrivals,
            "{p:?}: departures {} + drops {} exceed arrivals {}",
            q.departures,
            q.drops_total(),
            q.arrivals
        );
        // The residue (still queued at the end) is at most the buffer size
        // plus the packet in service.
        let residue = q.arrivals - q.departures - q.drops_total();
        assert!(residue <= 51, "{p:?}: residue {residue} exceeds buffer");
    }
}

/// Goodput can never exceed what the senders put on the wire, and the wire
/// count includes retransmissions.
#[test]
fn goodput_bounded_by_transmissions() {
    let r = Scenario::run(&cfg(40, Protocol::Reno, 10));
    assert!(r.delivered_packets <= r.tcp_totals.data_packets_sent);
    assert!(r.tcp_totals.retransmits <= r.tcp_totals.data_packets_sent);
    for f in &r.flows {
        assert!(f.delivered <= f.packets_sent);
    }
}

/// In-order delivery: per-flow goodput counts only unique segments, so it is
/// bounded by what the application generated.
#[test]
fn goodput_bounded_by_generation() {
    let r = Scenario::run(&cfg(30, Protocol::Reno, 10));
    let submitted: u64 = r
        .flows
        .iter()
        .filter_map(|f| f.tcp.as_ref())
        .map(|c| c.app_packets_submitted)
        .sum();
    assert_eq!(submitted, r.generated_packets);
    assert!(r.delivered_packets <= r.generated_packets);
}

/// The whole pipeline is deterministic: same seed, same everything.
#[test]
fn end_to_end_determinism_across_protocols() {
    for p in [
        Protocol::Udp,
        Protocol::Reno,
        Protocol::RenoRed,
        Protocol::Vegas,
        Protocol::VegasRed,
        Protocol::RenoDelayAck,
        Protocol::Tahoe,
        Protocol::NewReno,
        Protocol::Sack,
    ] {
        let a = Scenario::run(&cfg(15, p, 5));
        let b = Scenario::run(&cfg(15, p, 5));
        assert_eq!(a.events_processed, b.events_processed, "{p:?}");
        assert_eq!(a.delivered_packets, b.delivered_packets, "{p:?}");
        assert_eq!(a.cov.to_bits(), b.cov.to_bits(), "{p:?}");
        assert_eq!(
            a.bottleneck_queue.drops_total(),
            b.bottleneck_queue.drops_total(),
            "{p:?}"
        );
    }
}

/// Delayed ACKs halve the reverse-path ACK count (roughly) without breaking
/// delivery.
#[test]
fn delayed_ack_reduces_ack_traffic() {
    let plain = Scenario::run(&cfg(20, Protocol::Reno, 10));
    let delack = Scenario::run(&cfg(20, Protocol::RenoDelayAck, 10));
    assert!(
        delack.tcp_totals.acks_received < plain.tcp_totals.acks_received,
        "delack acks {} should be below plain {}",
        delack.tcp_totals.acks_received,
        plain.tcp_totals.acks_received
    );
    // Uncongested at 20 clients: both deliver essentially everything.
    assert!(delack.delivered_packets as f64 >= 0.95 * delack.generated_packets as f64);
}

/// All TCP variants make forward progress under heavy congestion and drop
/// some packets at the gateway (none deadlocks, none is loss-free).
#[test]
fn every_variant_survives_heavy_congestion() {
    for v in [
        TcpVariant::Tahoe,
        TcpVariant::Reno,
        TcpVariant::NewReno,
        TcpVariant::Vegas,
        TcpVariant::Sack,
    ] {
        let mut c = cfg(50, Protocol::Reno, 10);
        c.transport = tcpburst_core::TransportKind::Tcp(v);
        let r = Scenario::run(&c);
        let capacity = 4166.7 * 10.0;
        assert!(
            r.delivered_packets as f64 > 0.6 * capacity,
            "{v:?} delivered only {} of ~{capacity}",
            r.delivered_packets
        );
        assert!(
            r.bottleneck_queue.drops_total() > 0,
            "{v:?} suspiciously lost nothing at 120% offered load"
        );
    }
}

/// RED and FIFO gateways both work with every transport; RED's drops are
/// (mostly) early/forced rather than buffer overflows.
#[test]
fn red_drops_before_the_buffer_fills() {
    let mut c = cfg(50, Protocol::RenoRed, 10);
    c.gateway = GatewayKind::Red;
    let r = Scenario::run(&c);
    let q = r.bottleneck_queue;
    assert!(
        q.drops_early + q.drops_forced > q.drops_full,
        "RED should act before overflow: early {} forced {} full {}",
        q.drops_early,
        q.drops_forced,
        q.drops_full
    );
}

/// The c.o.v. probe sees exactly the data packets that reached the gateway:
/// generated minus access-link residue (access links never drop at these
/// loads).
#[test]
fn probe_counts_match_gateway_arrivals() {
    let r = Scenario::run(&cfg(10, Protocol::Udp, 10));
    let counted: u64 = r.bins.counts().iter().sum();
    // Bins cover complete windows only, so counted <= arrivals; the gap is
    // at most the final partial bin plus packets in flight on access links.
    assert!(counted <= r.bottleneck_queue.arrivals);
    let gap = r.bottleneck_queue.arrivals - counted;
    assert!(gap <= 200, "unaccounted gap {gap} too large");
}

/// Alternate sources plug into the same harness.
#[test]
fn cbr_and_pareto_sources_run_end_to_end() {
    let mut c = cfg(20, Protocol::Reno, 10);
    c.source = SourceKind::Cbr { rate: 100.0 };
    let cbr = Scenario::run(&c);
    assert!(cbr.delivered_packets > 0);

    c.source = SourceKind::ParetoOnOff(ParetoOnOffConfig::default());
    let pareto = Scenario::run(&c);
    assert!(pareto.delivered_packets > 0);

    // Same mean rate, very different burst structure: the heavy-tailed
    // input should be burstier at the gateway than the CBR input.
    assert!(
        pareto.cov > cbr.cov,
        "Pareto ON/OFF cov {} should exceed CBR cov {}",
        pareto.cov,
        cbr.cov
    );
}

/// Warm-up exclusion and custom bin widths are honoured by the probe.
#[test]
fn warmup_and_bin_overrides_apply() {
    let mut c = cfg(20, Protocol::Reno, 10);
    c.warmup = SimDuration::from_secs(5);
    c.cov_bin = Some(SimDuration::from_millis(100));
    let r = Scenario::run(&c);
    // 5 s of 100 ms bins = 50 complete bins.
    assert_eq!(r.bins.len(), 50);
    assert_eq!(r.bins.bin_width(), SimDuration::from_millis(100));
}

/// Per-flow fairness on a symmetric topology is near-perfect when
/// uncongested, for every transport.
#[test]
fn symmetric_uncongested_flows_share_equally() {
    for p in [Protocol::Udp, Protocol::Reno, Protocol::Vegas] {
        let r = Scenario::run(&cfg(10, p, 15));
        assert!(
            r.fairness > 0.98,
            "{p:?}: fairness {} too low for an uncongested symmetric net",
            r.fairness
        );
    }
}

/// ECN end-to-end: with a marking RED gateway and ECN-negotiating Reno,
/// congestion is signalled by marks, losses fall relative to dropping RED,
/// and senders take echo-driven window cuts.
#[test]
fn ecn_marks_replace_losses_on_red() {
    let mut plain = cfg(50, Protocol::RenoRed, 15);
    let dropping = Scenario::run(&plain);
    plain.ecn = true;
    let marking = Scenario::run(&plain);

    assert!(marking.bottleneck_queue.ecn_marks > 0, "no CE marks");
    assert!(marking.tcp_totals.ecn_window_cuts > 0, "no echo cuts");
    assert!(
        marking.loss_percent < dropping.loss_percent,
        "ECN loss {}% should be below dropping RED {}%",
        marking.loss_percent,
        dropping.loss_percent
    );
    assert!(
        marking.delivered_packets >= dropping.delivered_packets,
        "ECN goodput {} should not trail dropping RED {}",
        marking.delivered_packets,
        dropping.delivered_packets
    );
    // Without a marking gateway, an ECN-negotiating sender sees no echoes.
    let mut fifo = cfg(50, Protocol::Reno, 15);
    fifo.ecn = true;
    let fifo_run = Scenario::run(&fifo);
    assert_eq!(fifo_run.tcp_totals.ecn_window_cuts, 0);
}

/// The self-configuring RED gateway runs end-to-end and adapts without
/// collapsing throughput.
#[test]
fn adaptive_red_gateway_works() {
    let mut c = cfg(50, Protocol::RenoRed, 15);
    c.gateway = tcpburst_core::GatewayKind::AdaptiveRed;
    let r = Scenario::run(&c);
    assert!(r.delivered_packets as f64 > 0.6 * 4166.7 * 15.0);
    assert!(r.bottleneck_queue.drops_total() > 0);
}

/// The delay and occupancy instrumentation reports sane values: the mean
/// one-way delay is at least the propagation floor (22 ms) and at most
/// propagation plus a full buffer's worth of queueing.
#[test]
fn delay_and_occupancy_metrics_are_physical() {
    let r = Scenario::run(&cfg(45, Protocol::Reno, 15));
    // One-way propagation = 22 ms; full 50-packet queue at 50 Mbps adds
    // only ~12 ms, access queueing a bit more.
    assert!(
        r.mean_delay_secs >= 0.022,
        "delay {} below propagation floor",
        r.mean_delay_secs
    );
    assert!(
        r.mean_delay_secs <= 0.060,
        "delay {} implausibly high",
        r.mean_delay_secs
    );
    assert!(r.avg_queue_len > 0.0);
    assert!(
        r.avg_queue_len <= 50.0,
        "avg queue {} exceeds the buffer",
        r.avg_queue_len
    );
    for f in &r.flows {
        assert!(f.mean_delay_secs >= 0.022);
    }
}

/// SACK's selective retransmission resolves multi-loss windows that drive
/// Reno into timeouts: under the same heavy congestion, SACK takes fewer
/// timeouts per fast-retransmit episode.
#[test]
fn sack_times_out_less_than_reno() {
    let reno = Scenario::run(&cfg(55, Protocol::Reno, 20));
    let sack = Scenario::run(&cfg(55, Protocol::Sack, 20));
    assert!(
        sack.timeout_dupack_ratio() < reno.timeout_dupack_ratio(),
        "SACK ratio {} should be below Reno {}",
        sack.timeout_dupack_ratio(),
        reno.timeout_dupack_ratio()
    );
    // And it must not cost goodput.
    assert!(
        sack.delivered_packets as f64 >= 0.97 * reno.delivered_packets as f64,
        "SACK {} vs Reno {}",
        sack.delivered_packets,
        reno.delivered_packets
    );
}
