//! The paper's client/gateway/server topology (Figure 1).

use tcpburst_des::SimDuration;

use crate::adaptive::{AdaptiveRedParams, SelfConfiguringRed};
use crate::network::Network;
use crate::packet::{LinkId, NodeId};
use crate::queue::{AnyQueue, DropTailQueue, RedParams, RedQueue};

/// Which queueing discipline guards a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueSpec {
    /// Bounded FIFO with tail drop.
    DropTail {
        /// Buffer size in packets.
        capacity: usize,
    },
    /// Random early detection.
    Red(RedParams),
    /// Self-configuring RED (adaptive `max_p`).
    AdaptiveRed(RedParams, AdaptiveRedParams),
}

impl QueueSpec {
    /// Instantiates the queue (RED queues derive their marking RNG from
    /// `seed`). Public so engines that assemble their own [`Network`] —
    /// the sharded engine's central domain — build the exact gateway
    /// queue the dumbbell would.
    pub fn build(self, seed: u64) -> AnyQueue {
        match self {
            QueueSpec::DropTail { capacity } => DropTailQueue::new(capacity).into(),
            QueueSpec::Red(params) => RedQueue::new(params, seed).into(),
            QueueSpec::AdaptiveRed(red, adapt) => {
                SelfConfiguringRed::new(red, adapt, seed).into()
            }
        }
    }
}

/// Configuration of the dumbbell topology.
///
/// Defaults (via [`DumbbellConfig::paper`]) reproduce the reconstructed
/// Table 1 of the paper; every field can be overridden for ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellConfig {
    /// Number of client hosts `M`.
    pub num_clients: usize,
    /// Client access-link bandwidth `μc` in bits per second.
    pub client_bandwidth_bps: u64,
    /// Client access-link one-way propagation delay `τc` (client 0's; see
    /// [`DumbbellConfig::client_delay_spread`]).
    pub client_delay: SimDuration,
    /// Heterogeneous-RTT factor: client `i` of `M` gets access delay
    /// `τc · (1 + spread · i/(M−1))`. Zero (the paper's setup) gives every
    /// client the same delay; 1.0 doubles the last client's.
    pub client_delay_spread: f64,
    /// Bottleneck bandwidth `μs` in bits per second.
    pub bottleneck_bandwidth_bps: u64,
    /// Bottleneck one-way propagation delay `τs`.
    pub bottleneck_delay: SimDuration,
    /// Queue at the gateway's bottleneck output — the queue under test.
    pub gateway_queue: QueueSpec,
    /// Buffer size (packets) for access links and the reverse path; sized so
    /// congestion only ever forms at the gateway, as in the paper.
    pub access_queue_capacity: usize,
    /// Seed for any randomized queue discipline (RED).
    pub seed: u64,
}

impl DumbbellConfig {
    /// The paper's Table 1 configuration with `num_clients` clients and a
    /// plain FIFO gateway.
    pub fn paper(num_clients: usize) -> Self {
        DumbbellConfig {
            num_clients,
            client_bandwidth_bps: 100_000_000,
            client_delay: SimDuration::from_millis(2),
            client_delay_spread: 0.0,
            bottleneck_bandwidth_bps: 50_000_000,
            bottleneck_delay: SimDuration::from_millis(20),
            gateway_queue: QueueSpec::DropTail { capacity: 50 },
            access_queue_capacity: 1_000,
            seed: 0,
        }
    }

    /// Same, but with the paper's RED gateway.
    pub fn paper_red(num_clients: usize) -> Self {
        let mut cfg = Self::paper(num_clients);
        cfg.gateway_queue = QueueSpec::Red(RedParams::paper_defaults());
        cfg
    }

    /// Round-trip propagation delay `2(τc + τs)` for client 0 — the
    /// paper's c.o.v. bin width.
    pub fn rtprop(&self) -> SimDuration {
        (self.client_delay + self.bottleneck_delay) * 2
    }

    /// Access delay of client `i` of `num_clients` under the spread rule.
    ///
    /// # Panics
    ///
    /// Panics if the spread is negative or not finite.
    pub fn client_delay_of(&self, i: usize) -> SimDuration {
        assert!(
            self.client_delay_spread >= 0.0 && self.client_delay_spread.is_finite(),
            "delay spread must be non-negative and finite"
        );
        if self.num_clients <= 1 || self.client_delay_spread == 0.0 {
            return self.client_delay;
        }
        let frac = i as f64 / (self.num_clients - 1) as f64;
        SimDuration::from_secs_f64(
            self.client_delay.as_secs_f64() * (1.0 + self.client_delay_spread * frac),
        )
    }
}

/// The built dumbbell: the network plus the ids instrumentation needs.
#[derive(Debug)]
pub struct Dumbbell {
    /// The assembled network.
    pub network: Network,
    /// Client hosts, index-aligned with flows.
    pub clients: Vec<NodeId>,
    /// The shared gateway router.
    pub gateway: NodeId,
    /// The server host.
    pub server: NodeId,
    /// Client → gateway access links (one per client).
    pub uplinks: Vec<LinkId>,
    /// Gateway → client return links (one per client).
    pub downlinks: Vec<LinkId>,
    /// The gateway → server bottleneck (where the queue under test sits).
    pub bottleneck: LinkId,
    /// The server → gateway reverse link (carries ACKs).
    pub reverse: LinkId,
}

impl Dumbbell {
    /// Builds the topology of the paper's Figure 1.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero or any bandwidth/queue parameter is
    /// invalid.
    ///
    /// # Example
    ///
    /// ```
    /// use tcpburst_net::{Dumbbell, DumbbellConfig};
    ///
    /// let db = Dumbbell::build(&DumbbellConfig::paper(4));
    /// assert_eq!(db.clients.len(), 4);
    /// // 4 clients + gateway + server:
    /// assert_eq!(db.network.node_count(), 6);
    /// // per client up+down, plus bottleneck and reverse:
    /// assert_eq!(db.network.link_count(), 10);
    /// ```
    pub fn build(cfg: &DumbbellConfig) -> Self {
        assert!(cfg.num_clients > 0, "need at least one client");
        let mut network = Network::new();
        let gateway = network.add_router();
        let server = network.add_host();

        let bottleneck = network.add_link(
            gateway,
            server,
            cfg.bottleneck_bandwidth_bps,
            cfg.bottleneck_delay,
            cfg.gateway_queue.build(cfg.seed),
        );
        let reverse = network.add_link(
            server,
            gateway,
            cfg.bottleneck_bandwidth_bps,
            cfg.bottleneck_delay,
            DropTailQueue::new(cfg.access_queue_capacity),
        );
        network.set_route(gateway, server, bottleneck);

        let mut clients = Vec::with_capacity(cfg.num_clients);
        let mut uplinks = Vec::with_capacity(cfg.num_clients);
        let mut downlinks = Vec::with_capacity(cfg.num_clients);
        for i in 0..cfg.num_clients {
            let c = network.add_host();
            let delay = cfg.client_delay_of(i);
            let up = network.add_link(
                c,
                gateway,
                cfg.client_bandwidth_bps,
                delay,
                DropTailQueue::new(cfg.access_queue_capacity),
            );
            let down = network.add_link(
                gateway,
                c,
                cfg.client_bandwidth_bps,
                delay,
                DropTailQueue::new(cfg.access_queue_capacity),
            );
            network.set_route(c, server, up);
            network.set_route(gateway, c, down);
            network.set_route(server, c, reverse);
            clients.push(c);
            uplinks.push(up);
            downlinks.push(down);
        }

        Dumbbell {
            network,
            clients,
            gateway,
            server,
            uplinks,
            downlinks,
            bottleneck,
            reverse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Delivered, NetEvent};
    use crate::packet::{Ecn, FlowId, Packet, PacketKind};
    use tcpburst_des::{Scheduler, SimTime};

    #[test]
    fn paper_config_matches_reconstruction() {
        let cfg = DumbbellConfig::paper(10);
        assert_eq!(cfg.client_bandwidth_bps, 100_000_000);
        assert_eq!(cfg.bottleneck_bandwidth_bps, 50_000_000);
        assert_eq!(cfg.rtprop(), SimDuration::from_millis(44));
        assert_eq!(cfg.gateway_queue, QueueSpec::DropTail { capacity: 50 });
        match DumbbellConfig::paper_red(10).gateway_queue {
            QueueSpec::Red(p) => {
                assert_eq!(p.min_th, 10.0);
                assert_eq!(p.max_th, 40.0);
            }
            other => panic!("expected RED, got {other:?}"),
        }
    }

    #[test]
    fn every_client_reaches_server_and_back() {
        let db = Dumbbell::build(&DumbbellConfig::paper(5));
        let mut net = db.network;
        for (i, &c) in db.clients.iter().enumerate() {
            let mut sched: Scheduler<NetEvent> = Scheduler::new();
            // Client -> server.
            net.inject(
                Packet {
                    flow: FlowId(i as u32),
                    kind: PacketKind::Datagram,
                    size_bytes: 1000,
                    src: c,
                    dst: db.server,
                    created_at: SimTime::ZERO,
                    ecn: Ecn::default(),
                },
                &mut sched,
            );
            let mut reached_server = false;
            while let Some((_, ev)) = sched.pop() {
                match ev {
                    NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, &mut sched),
                    NetEvent::Delivery { link, epoch, packet } => {
                        if let Delivered::ToHost { node, .. } =
                            net.on_delivery(link, epoch, packet, &mut sched)
                        {
                            assert_eq!(node, db.server);
                            reached_server = true;
                        }
                    }
                }
            }
            assert!(reached_server, "client {i} cannot reach the server");

            // Server -> client (the ACK path).
            let mut sched: Scheduler<NetEvent> = Scheduler::new();
            net.inject(
                Packet {
                    flow: FlowId(i as u32),
                    kind: PacketKind::TcpAck {
                        ack: crate::SeqNo(1),
                        ece: false,
                        sack: crate::SackBlocks::EMPTY,
                    },
                    size_bytes: 40,
                    src: db.server,
                    dst: c,
                    created_at: SimTime::ZERO,
                    ecn: Ecn::default(),
                },
                &mut sched,
            );
            let mut reached_client = false;
            while let Some((_, ev)) = sched.pop() {
                match ev {
                    NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, &mut sched),
                    NetEvent::Delivery { link, epoch, packet } => {
                        if let Delivered::ToHost { node, .. } =
                            net.on_delivery(link, epoch, packet, &mut sched)
                        {
                            assert_eq!(node, c);
                            reached_client = true;
                        }
                    }
                }
            }
            assert!(reached_client, "server cannot reach client {i}");
        }
    }

    #[test]
    fn bottleneck_queue_is_the_configured_one() {
        let db = Dumbbell::build(&DumbbellConfig::paper(2));
        // DropTail with capacity 50: fill it and watch the 51st drop.
        let mut net = db.network;
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        let make = |i: u32| Packet {
            flow: FlowId(i),
            kind: PacketKind::Datagram,
            size_bytes: 1000,
            src: db.gateway,
            dst: db.server,
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        };
        // First packet goes straight into service, then 50 fit in the buffer.
        for i in 0..51 {
            assert!(!net.send_on(db.bottleneck, make(i), &mut sched).is_drop());
        }
        assert!(net.send_on(db.bottleneck, make(51), &mut sched).is_drop());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        Dumbbell::build(&DumbbellConfig::paper(0));
    }

    #[test]
    fn delay_spread_interpolates_linearly() {
        let mut cfg = DumbbellConfig::paper(5);
        assert_eq!(cfg.client_delay_of(0), cfg.client_delay);
        assert_eq!(cfg.client_delay_of(4), cfg.client_delay);
        cfg.client_delay_spread = 1.0;
        assert_eq!(cfg.client_delay_of(0), SimDuration::from_millis(2));
        assert_eq!(cfg.client_delay_of(4), SimDuration::from_millis(4));
        assert_eq!(cfg.client_delay_of(2), SimDuration::from_millis(3));
        // The built topology uses the per-client delays.
        let db = Dumbbell::build(&cfg);
        assert_eq!(
            db.network.link(db.uplinks[4]).delay(),
            SimDuration::from_millis(4)
        );
    }

    #[test]
    #[should_panic(expected = "delay spread")]
    fn negative_spread_panics() {
        let mut cfg = DumbbellConfig::paper(5);
        cfg.client_delay_spread = -0.5;
        cfg.client_delay_of(1);
    }
}
