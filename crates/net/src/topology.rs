//! Topologies: a generic graph builder with computed routing, the paper's
//! dumbbell (Figure 1) expressed on top of it, and a family of
//! multi-bottleneck specs — parking-lot chains, incast fan-in, and seeded
//! Waxman random graphs.

use tcpburst_des::{SimDuration, SimRng};

use crate::adaptive::{AdaptiveRedParams, SelfConfiguringRed};
use crate::network::Network;
use crate::packet::{LinkId, NodeId};
use crate::queue::{AnyQueue, DropTailQueue, RedParams, RedQueue};

/// Which queueing discipline guards a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueSpec {
    /// Bounded FIFO with tail drop.
    DropTail {
        /// Buffer size in packets.
        capacity: usize,
    },
    /// Random early detection.
    Red(RedParams),
    /// Self-configuring RED (adaptive `max_p`).
    AdaptiveRed(RedParams, AdaptiveRedParams),
}

impl QueueSpec {
    /// Instantiates the queue (RED queues derive their marking RNG from
    /// `seed`). Public so engines that assemble their own [`Network`] —
    /// the sharded engine's central domain — build the exact gateway
    /// queue the dumbbell would.
    pub fn build(self, seed: u64) -> AnyQueue {
        match self {
            QueueSpec::DropTail { capacity } => DropTailQueue::new(capacity).into(),
            QueueSpec::Red(params) => RedQueue::new(params, seed).into(),
            QueueSpec::AdaptiveRed(red, adapt) => {
                SelfConfiguringRed::new(red, adapt, seed).into()
            }
        }
    }
}

/// Why a topology cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The spec declares no traffic flows (zero clients, zero fan-in, an
    /// empty chain, ...).
    NoFlows,
    /// The heterogeneous-RTT spread is negative or not finite.
    InvalidSpread,
    /// A numeric parameter is out of range.
    InvalidParam {
        /// Which parameter.
        what: &'static str,
        /// What is wrong with it.
        reason: String,
    },
    /// A declared flow's endpoints are not mutually reachable under the
    /// computed routes.
    Unreachable {
        /// Flow source.
        src: NodeId,
        /// Flow destination.
        dst: NodeId,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoFlows => write!(f, "topology declares no flows"),
            TopologyError::InvalidSpread => {
                write!(f, "delay spread must be non-negative and finite")
            }
            TopologyError::InvalidParam { what, reason } => {
                write!(f, "invalid {what}: {reason}")
            }
            TopologyError::Unreachable { src, dst } => {
                write!(f, "flow {src:?} -> {dst:?} is not mutually reachable")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incremental graph builder over [`Network`].
///
/// Wraps the raw node/link arena with typed validation ([`TopologyError`]
/// instead of panics) and computed routing: build the graph with
/// [`Topology::add_host`] / [`Topology::add_router`] / [`Topology::add_link`],
/// then call [`Topology::compute_routes`] once and every node's flat
/// `routes[node][dst]` table holds a minimum-hop path. Queues are described
/// by [`QueueSpec`] and instantiated with the builder's seed, so randomized
/// disciplines (RED) stay reproducible.
///
/// # Example
///
/// ```
/// use tcpburst_des::SimDuration;
/// use tcpburst_net::{route_path_len, QueueSpec, Topology};
///
/// let mut t = Topology::new(0);
/// let a = t.add_host();
/// let r = t.add_router();
/// let b = t.add_host();
/// let q = QueueSpec::DropTail { capacity: 10 };
/// t.add_link(a, r, 1_000_000, SimDuration::from_millis(1), q).expect("a->r");
/// t.add_link(r, b, 1_000_000, SimDuration::from_millis(1), q).expect("r->b");
/// t.compute_routes();
/// let net = t.into_network();
/// assert_eq!(route_path_len(&net, a, b), Some(2));
/// assert_eq!(route_path_len(&net, b, a), None); // no return links
/// ```
#[derive(Debug)]
pub struct Topology {
    network: Network,
    seed: u64,
    /// `(from, to)` per link, mirrored so route computation does not have
    /// to re-ask the network on every relaxation round.
    ends: Vec<(NodeId, NodeId)>,
    /// Whether each node may forward packets (hosts terminate delivery).
    router: Vec<bool>,
}

impl Topology {
    /// Creates an empty builder; `seed` feeds every randomized queue.
    pub fn new(seed: u64) -> Self {
        Topology {
            network: Network::new(),
            seed,
            ends: Vec::new(),
            router: Vec::new(),
        }
    }

    /// Adds an end host (packets addressed to it are delivered upward;
    /// computed routes never forward through it).
    pub fn add_host(&mut self) -> NodeId {
        self.router.push(false);
        self.network.add_host()
    }

    /// Adds a router (packets addressed elsewhere are forwarded).
    pub fn add_router(&mut self) -> NodeId {
        self.router.push(true);
        self.network.add_router()
    }

    /// Adds a simplex link guarded by `queue`, validating the endpoints
    /// and the bandwidth.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        delay: SimDuration,
        queue: QueueSpec,
    ) -> Result<LinkId, TopologyError> {
        let n = self.router.len();
        if (from.0 as usize) >= n || (to.0 as usize) >= n {
            return Err(TopologyError::InvalidParam {
                what: "link endpoint",
                reason: format!("{from:?} -> {to:?} names an unknown node"),
            });
        }
        if from == to {
            return Err(TopologyError::InvalidParam {
                what: "link endpoint",
                reason: format!("self-loop at {from:?}"),
            });
        }
        if bandwidth_bps == 0 {
            return Err(TopologyError::InvalidParam {
                what: "link bandwidth",
                reason: "must be positive".into(),
            });
        }
        let id = self
            .network
            .add_link(from, to, bandwidth_bps, delay, queue.build(self.seed));
        self.ends.push((from, to));
        Ok(id)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.router.len()
    }

    /// Number of links added so far.
    pub fn link_count(&self) -> usize {
        self.ends.len()
    }

    /// Fills every node's route table with minimum-hop paths toward every
    /// reachable destination. Transit is router-only: hosts terminate
    /// delivery, so no computed path forwards through one. Ties are broken
    /// toward the lowest outgoing link id, making the tables a pure
    /// function of graph insertion order (and therefore deterministic).
    pub fn compute_routes(&mut self) {
        let n = self.router.len();
        let mut hops = vec![u32::MAX; n];
        let mut via = vec![u32::MAX; n];
        for d in 0..n as u32 {
            let dst = NodeId(d);
            hops.iter_mut().for_each(|h| *h = u32::MAX);
            via.iter_mut().for_each(|v| *v = u32::MAX);
            hops[d as usize] = 0;
            // Bellman-Ford relaxation to a fixpoint over (hop count,
            // first-link id) labels; each change strictly decreases a
            // node's label lexicographically, so this terminates.
            let mut changed = true;
            while changed {
                changed = false;
                for (id, &(from, to)) in self.ends.iter().enumerate() {
                    // Usable only if the far end terminates the path (it
                    // is the destination) or can forward (a router).
                    if to != dst && !self.router[to.0 as usize] {
                        continue;
                    }
                    let through = hops[to.0 as usize];
                    if through == u32::MAX {
                        continue;
                    }
                    let cand = through + 1;
                    let u = from.0 as usize;
                    let id = id as u32;
                    if cand < hops[u] || (cand == hops[u] && id < via[u]) {
                        hops[u] = cand;
                        via[u] = id;
                        changed = true;
                    }
                }
            }
            for u in 0..n {
                if via[u] != u32::MAX {
                    self.network.set_route(NodeId(u as u32), dst, LinkId(via[u]));
                }
            }
        }
    }

    /// Finishes the build, yielding the routed network.
    pub fn into_network(self) -> Network {
        self.network
    }
}

/// Number of links a packet from `src` follows to reach `dst` under the
/// installed route tables, or `None` if some node en route has no entry or
/// the walk exceeds the node count (a routing loop).
pub fn route_path_len(network: &Network, src: NodeId, dst: NodeId) -> Option<usize> {
    let mut at = src;
    let mut hops = 0usize;
    while at != dst {
        let via = network.route(at, dst)?;
        at = network.link(via).to();
        hops += 1;
        if hops > network.node_count() {
            return None;
        }
    }
    Some(hops)
}

/// Configuration of the dumbbell topology.
///
/// Defaults (via [`DumbbellConfig::paper`]) reproduce the reconstructed
/// Table 1 of the paper; every field can be overridden for ablations. The
/// other [`TopologySpec`] shapes reuse this struct as their shared link
/// parameterization (client/bottleneck bandwidth, delays, queues).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellConfig {
    /// Number of client hosts `M`.
    pub num_clients: usize,
    /// Client access-link bandwidth `μc` in bits per second.
    pub client_bandwidth_bps: u64,
    /// Client access-link one-way propagation delay `τc` (client 0's; see
    /// [`DumbbellConfig::client_delay_spread`]).
    pub client_delay: SimDuration,
    /// Heterogeneous-RTT factor: client `i` of `M` gets access delay
    /// `τc · (1 + spread · i/(M−1))`. Zero (the paper's setup) gives every
    /// client the same delay; 1.0 doubles the last client's.
    pub client_delay_spread: f64,
    /// Bottleneck bandwidth `μs` in bits per second.
    pub bottleneck_bandwidth_bps: u64,
    /// Bottleneck one-way propagation delay `τs`.
    pub bottleneck_delay: SimDuration,
    /// Queue at the gateway's bottleneck output — the queue under test.
    pub gateway_queue: QueueSpec,
    /// Buffer size (packets) for access links and the reverse path; sized so
    /// congestion only ever forms at the gateway, as in the paper.
    pub access_queue_capacity: usize,
    /// Seed for any randomized queue discipline (RED).
    pub seed: u64,
}

impl DumbbellConfig {
    /// The paper's Table 1 configuration with `num_clients` clients and a
    /// plain FIFO gateway.
    pub fn paper(num_clients: usize) -> Self {
        DumbbellConfig {
            num_clients,
            client_bandwidth_bps: 100_000_000,
            client_delay: SimDuration::from_millis(2),
            client_delay_spread: 0.0,
            bottleneck_bandwidth_bps: 50_000_000,
            bottleneck_delay: SimDuration::from_millis(20),
            gateway_queue: QueueSpec::DropTail { capacity: 50 },
            access_queue_capacity: 1_000,
            seed: 0,
        }
    }

    /// Same, but with the paper's RED gateway.
    pub fn paper_red(num_clients: usize) -> Self {
        let mut cfg = Self::paper(num_clients);
        cfg.gateway_queue = QueueSpec::Red(RedParams::paper_defaults());
        cfg
    }

    /// Round-trip propagation delay `2(τc + τs)` for client 0 — the
    /// paper's c.o.v. bin width.
    pub fn rtprop(&self) -> SimDuration {
        (self.client_delay + self.bottleneck_delay) * 2
    }

    /// Checks the link parameters every topology shape shares (bandwidths
    /// and buffer sizes positive, spread sane).
    fn validate_links(&self) -> Result<(), TopologyError> {
        if !(self.client_delay_spread >= 0.0 && self.client_delay_spread.is_finite()) {
            return Err(TopologyError::InvalidSpread);
        }
        if self.client_bandwidth_bps == 0 {
            return Err(TopologyError::InvalidParam {
                what: "client bandwidth",
                reason: "must be positive".into(),
            });
        }
        if self.bottleneck_bandwidth_bps == 0 {
            return Err(TopologyError::InvalidParam {
                what: "bottleneck bandwidth",
                reason: "must be positive".into(),
            });
        }
        if self.access_queue_capacity == 0 {
            return Err(TopologyError::InvalidParam {
                what: "access queue capacity",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }

    /// Checks the full dumbbell configuration, returning the first
    /// violation as a typed error.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.num_clients == 0 {
            return Err(TopologyError::NoFlows);
        }
        self.validate_links()
    }

    /// Access delay of client `i` of `num_clients` under the spread rule.
    ///
    /// Invalid (negative or non-finite) spreads are rejected by
    /// [`DumbbellConfig::validate`] at build time; this accessor treats
    /// them as zero rather than panicking.
    pub fn client_delay_of(&self, i: usize) -> SimDuration {
        let spread = self.client_delay_spread;
        if self.num_clients <= 1 || !(spread > 0.0) || !spread.is_finite() {
            return self.client_delay;
        }
        let frac = i as f64 / (self.num_clients - 1) as f64;
        SimDuration::from_secs_f64(self.client_delay.as_secs_f64() * (1.0 + spread * frac))
    }
}

/// The built dumbbell: the network plus the ids instrumentation needs.
#[derive(Debug)]
pub struct Dumbbell {
    /// The assembled network.
    pub network: Network,
    /// Client hosts, index-aligned with flows.
    pub clients: Vec<NodeId>,
    /// The shared gateway router.
    pub gateway: NodeId,
    /// The server host.
    pub server: NodeId,
    /// Client → gateway access links (one per client).
    pub uplinks: Vec<LinkId>,
    /// Gateway → client return links (one per client).
    pub downlinks: Vec<LinkId>,
    /// The gateway → server bottleneck (where the queue under test sits).
    pub bottleneck: LinkId,
    /// The server → gateway reverse link (carries ACKs).
    pub reverse: LinkId,
}

impl Dumbbell {
    /// Builds the topology of the paper's Figure 1 through the generic
    /// [`Topology`] path: same node/link insertion order as ever (gateway,
    /// server, bottleneck, reverse, then per-client host/up/down), with the
    /// routes computed rather than hand-installed — the computed minimum-hop
    /// paths coincide with the paper's manual tables.
    pub fn try_build(cfg: &DumbbellConfig) -> Result<Self, TopologyError> {
        cfg.validate()?;
        let access = QueueSpec::DropTail {
            capacity: cfg.access_queue_capacity,
        };
        let mut t = Topology::new(cfg.seed);
        let gateway = t.add_router();
        let server = t.add_host();
        let bottleneck = t.add_link(
            gateway,
            server,
            cfg.bottleneck_bandwidth_bps,
            cfg.bottleneck_delay,
            cfg.gateway_queue,
        )?;
        let reverse = t.add_link(
            server,
            gateway,
            cfg.bottleneck_bandwidth_bps,
            cfg.bottleneck_delay,
            access,
        )?;

        let mut clients = Vec::with_capacity(cfg.num_clients);
        let mut uplinks = Vec::with_capacity(cfg.num_clients);
        let mut downlinks = Vec::with_capacity(cfg.num_clients);
        for i in 0..cfg.num_clients {
            let c = t.add_host();
            let delay = cfg.client_delay_of(i);
            let up = t.add_link(c, gateway, cfg.client_bandwidth_bps, delay, access)?;
            let down = t.add_link(gateway, c, cfg.client_bandwidth_bps, delay, access)?;
            clients.push(c);
            uplinks.push(up);
            downlinks.push(down);
        }
        t.compute_routes();

        Ok(Dumbbell {
            network: t.into_network(),
            clients,
            gateway,
            server,
            uplinks,
            downlinks,
            bottleneck,
            reverse,
        })
    }

    /// Panicking convenience over [`Dumbbell::try_build`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero clients, zero
    /// bandwidth, bad spread).
    ///
    /// # Example
    ///
    /// ```
    /// use tcpburst_net::{Dumbbell, DumbbellConfig};
    ///
    /// let db = Dumbbell::build(&DumbbellConfig::paper(4));
    /// assert_eq!(db.clients.len(), 4);
    /// // 4 clients + gateway + server:
    /// assert_eq!(db.network.node_count(), 6);
    /// // per client up+down, plus bottleneck and reverse:
    /// assert_eq!(db.network.link_count(), 10);
    /// ```
    pub fn build(cfg: &DumbbellConfig) -> Self {
        match Self::try_build(cfg) {
            Ok(db) => db,
            Err(e) => panic!("invalid dumbbell config: {e}"),
        }
    }
}

/// One traffic flow's endpoints, index-aligned with `FlowId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEndpoints {
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
}

/// A built topology of any shape, with the handles the scenario layer
/// needs: flow endpoints, the instrumented bottleneck hops, and where
/// probes and impairments attach.
#[derive(Debug)]
pub struct BuiltTopology {
    /// The assembled, routed network.
    pub network: Network,
    /// Flow endpoints, index-aligned with `FlowId`.
    pub flows: Vec<FlowEndpoints>,
    /// The instrumented bottleneck hops, upstream to downstream. The
    /// dumbbell has exactly one; a parking lot has one per chain segment.
    pub hops: Vec<LinkId>,
    /// The headline bottleneck: the hop whose queue and loss statistics
    /// the report summarizes (the last, most-loaded element of `hops`).
    pub bottleneck: LinkId,
    /// Where impairments (flap, capacity/delay variation, cross traffic)
    /// attach — the bottleneck, except mid-chain on a parking lot.
    pub impair_link: LinkId,
    /// Upstream endpoint of the bottleneck; data packets arriving at this
    /// node form the paper's per-RTT-bin probe population.
    pub probe_node: NodeId,
    /// Source node for injected cross-traffic datagrams (the impair
    /// link's upstream router).
    pub cross_src: NodeId,
    /// Host that drains injected cross-traffic datagrams.
    pub cross_dst: NodeId,
}

/// Derived-stream tag for the Waxman graph generator so its draws never
/// collide with the traffic sources' per-flow streams.
const WAXMAN_STREAM: u64 = 0x5741_584d_4752_4150; // "WAXMGRAP"

/// A buildable topology family. All link parameters (bandwidths, delays,
/// queue disciplines, seed) come from the embedded [`DumbbellConfig`]
/// `base`; each variant only adds its shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// The paper's Figure-1 dumbbell: `num_clients` hosts behind one
    /// gateway and one bottleneck.
    Dumbbell(DumbbellConfig),
    /// A chain of `hops` bottleneck links `R0 → R1 → … → R_hops` with a
    /// sink host past the last router; `flows_per_hop` flows enter at each
    /// chain router and all terminate at the sink, so flows entering at
    /// router `k` traverse hops `k..hops` and couple every segment.
    ParkingLot {
        /// Shared link parameters.
        base: DumbbellConfig,
        /// Number of chain (bottleneck) links; at least 1.
        hops: usize,
        /// Flows entering at each chain router; at least 1.
        flows_per_hop: usize,
    },
    /// Datacenter fan-in: `fanin` senders on fast access links converge
    /// through one switch onto a single receiver link — the fan-in itself
    /// overflows the switch queue.
    Incast {
        /// Shared link parameters.
        base: DumbbellConfig,
        /// Number of simultaneous senders; at least 1.
        fanin: usize,
    },
    /// Seeded Waxman random graph: `nodes` router sites placed uniformly
    /// in the unit square, pair `(i, j)` linked with probability
    /// `alpha · exp(−d(i,j) / (beta · √2))`, repaired deterministically to
    /// one connected component; each site gets one attached host and one
    /// flow toward a seeded random other site.
    Waxman {
        /// Shared link parameters.
        base: DumbbellConfig,
        /// Number of router sites; at least 2.
        nodes: usize,
        /// Edge-probability ceiling in `(0, 1]`.
        alpha: f64,
        /// Distance-decay scale; larger favors long links. Positive.
        beta: f64,
    },
}

impl TopologySpec {
    /// Number of traffic flows this spec declares; flow `i`'s endpoints
    /// are `flows[i]` of the built topology.
    pub fn num_flows(&self) -> usize {
        match *self {
            TopologySpec::Dumbbell(ref base) => base.num_clients,
            TopologySpec::ParkingLot {
                hops,
                flows_per_hop,
                ..
            } => hops * flows_per_hop,
            TopologySpec::Incast { fanin, .. } => fanin,
            TopologySpec::Waxman { nodes, .. } => nodes,
        }
    }

    /// Checks the spec without building it, returning the first violation.
    pub fn validate(&self) -> Result<(), TopologyError> {
        match *self {
            TopologySpec::Dumbbell(ref base) => base.validate(),
            TopologySpec::ParkingLot {
                ref base,
                hops,
                flows_per_hop,
            } => {
                if hops == 0 {
                    return Err(TopologyError::InvalidParam {
                        what: "parking-lot hops",
                        reason: "chain needs at least one link".into(),
                    });
                }
                if flows_per_hop == 0 {
                    return Err(TopologyError::NoFlows);
                }
                base.validate_links()
            }
            TopologySpec::Incast { ref base, fanin } => {
                if fanin == 0 {
                    return Err(TopologyError::NoFlows);
                }
                base.validate_links()
            }
            TopologySpec::Waxman {
                ref base,
                nodes,
                alpha,
                beta,
            } => {
                if nodes < 2 {
                    return Err(TopologyError::InvalidParam {
                        what: "waxman nodes",
                        reason: "graph needs at least two sites".into(),
                    });
                }
                if !(alpha > 0.0 && alpha <= 1.0) {
                    return Err(TopologyError::InvalidParam {
                        what: "waxman alpha",
                        reason: "must be in (0, 1]".into(),
                    });
                }
                if !(beta > 0.0 && beta.is_finite()) {
                    return Err(TopologyError::InvalidParam {
                        what: "waxman beta",
                        reason: "must be positive and finite".into(),
                    });
                }
                base.validate_links()
            }
        }
    }

    /// Builds the spec: graph, computed routes, flow endpoints and the
    /// instrumentation/impairment handles.
    pub fn build(&self) -> Result<BuiltTopology, TopologyError> {
        self.validate()?;
        let built = match *self {
            TopologySpec::Dumbbell(ref base) => {
                let db = Dumbbell::try_build(base)?;
                BuiltTopology {
                    flows: db
                        .clients
                        .iter()
                        .map(|&c| FlowEndpoints {
                            src: c,
                            dst: db.server,
                        })
                        .collect(),
                    hops: vec![db.bottleneck],
                    bottleneck: db.bottleneck,
                    impair_link: db.bottleneck,
                    probe_node: db.gateway,
                    cross_src: db.gateway,
                    cross_dst: db.server,
                    network: db.network,
                }
            }
            TopologySpec::ParkingLot {
                ref base,
                hops,
                flows_per_hop,
            } => build_parking_lot(base, hops, flows_per_hop)?,
            TopologySpec::Incast { ref base, fanin } => build_incast(base, fanin)?,
            TopologySpec::Waxman {
                ref base,
                nodes,
                alpha,
                beta,
            } => build_waxman(base, nodes, alpha, beta)?,
        };
        verify_flows(&built.network, &built.flows)?;
        Ok(built)
    }
}

/// Defensive post-build check: every declared flow must be mutually
/// reachable under the computed routes (a generated graph that was not
/// repaired correctly surfaces here as a typed error, not a router panic
/// mid-simulation).
fn verify_flows(network: &Network, flows: &[FlowEndpoints]) -> Result<(), TopologyError> {
    for f in flows {
        if route_path_len(network, f.src, f.dst).is_none()
            || route_path_len(network, f.dst, f.src).is_none()
        {
            return Err(TopologyError::Unreachable {
                src: f.src,
                dst: f.dst,
            });
        }
    }
    Ok(())
}

fn build_parking_lot(
    base: &DumbbellConfig,
    hops: usize,
    flows_per_hop: usize,
) -> Result<BuiltTopology, TopologyError> {
    let access = QueueSpec::DropTail {
        capacity: base.access_queue_capacity,
    };
    let mut t = Topology::new(base.seed);
    let routers: Vec<NodeId> = (0..=hops).map(|_| t.add_router()).collect();
    let sink = t.add_host();
    // Forward chain: the bottleneck segments, each guarded by the queue
    // under test.
    let mut chain = Vec::with_capacity(hops);
    for k in 0..hops {
        chain.push(t.add_link(
            routers[k],
            routers[k + 1],
            base.bottleneck_bandwidth_bps,
            base.bottleneck_delay,
            base.gateway_queue,
        )?);
    }
    // Reverse chain for ACKs, amply buffered like the dumbbell's reverse.
    for k in 0..hops {
        t.add_link(
            routers[k + 1],
            routers[k],
            base.bottleneck_bandwidth_bps,
            base.bottleneck_delay,
            access,
        )?;
    }
    // Sink attachment past the last router.
    t.add_link(
        routers[hops],
        sink,
        base.client_bandwidth_bps,
        base.client_delay,
        access,
    )?;
    t.add_link(
        sink,
        routers[hops],
        base.client_bandwidth_bps,
        base.client_delay,
        access,
    )?;
    // Cross-traffic drain just downstream of the mid-chain impair hop, so
    // injected overload stays local to that segment.
    let impair_idx = hops / 2;
    let drain = t.add_host();
    t.add_link(
        routers[impair_idx + 1],
        drain,
        base.client_bandwidth_bps,
        base.client_delay,
        access,
    )?;
    // Flow sources: group h = f / flows_per_hop enters at chain router h
    // and rides hops h..hops to the sink.
    let mut flows = Vec::with_capacity(hops * flows_per_hop);
    for f in 0..hops * flows_per_hop {
        let h = f / flows_per_hop;
        let src = t.add_host();
        t.add_link(
            src,
            routers[h],
            base.client_bandwidth_bps,
            base.client_delay,
            access,
        )?;
        t.add_link(
            routers[h],
            src,
            base.client_bandwidth_bps,
            base.client_delay,
            access,
        )?;
        flows.push(FlowEndpoints { src, dst: sink });
    }
    t.compute_routes();
    let network = t.into_network();
    Ok(BuiltTopology {
        flows,
        bottleneck: chain[hops - 1],
        impair_link: chain[impair_idx],
        probe_node: routers[hops - 1],
        cross_src: routers[impair_idx],
        cross_dst: drain,
        hops: chain,
        network,
    })
}

fn build_incast(base: &DumbbellConfig, fanin: usize) -> Result<BuiltTopology, TopologyError> {
    let access = QueueSpec::DropTail {
        capacity: base.access_queue_capacity,
    };
    let mut t = Topology::new(base.seed);
    let switch = t.add_router();
    let receiver = t.add_host();
    let bottleneck = t.add_link(
        switch,
        receiver,
        base.bottleneck_bandwidth_bps,
        base.bottleneck_delay,
        base.gateway_queue,
    )?;
    t.add_link(
        receiver,
        switch,
        base.bottleneck_bandwidth_bps,
        base.bottleneck_delay,
        access,
    )?;
    let mut flows = Vec::with_capacity(fanin);
    for _ in 0..fanin {
        let s = t.add_host();
        // Sender access links run at bottleneck speed: the fan-in itself
        // is what overflows the switch queue, not a slow edge.
        t.add_link(
            s,
            switch,
            base.bottleneck_bandwidth_bps,
            base.client_delay,
            access,
        )?;
        t.add_link(
            switch,
            s,
            base.bottleneck_bandwidth_bps,
            base.client_delay,
            access,
        )?;
        flows.push(FlowEndpoints {
            src: s,
            dst: receiver,
        });
    }
    t.compute_routes();
    Ok(BuiltTopology {
        network: t.into_network(),
        flows,
        hops: vec![bottleneck],
        bottleneck,
        impair_link: bottleneck,
        probe_node: switch,
        cross_src: switch,
        cross_dst: receiver,
    })
}

fn build_waxman(
    base: &DumbbellConfig,
    nodes: usize,
    alpha: f64,
    beta: f64,
) -> Result<BuiltTopology, TopologyError> {
    let access = QueueSpec::DropTail {
        capacity: base.access_queue_capacity,
    };
    let mut rng = SimRng::derive(base.seed, WAXMAN_STREAM);
    // Site placement in the unit square; √2 is the diameter.
    let xy: Vec<(f64, f64)> = (0..nodes).map(|_| (rng.uniform(), rng.uniform())).collect();
    let diameter = std::f64::consts::SQRT_2;
    let dist = |i: usize, j: usize| -> f64 {
        let (xi, yi) = xy[i];
        let (xj, yj) = xy[j];
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    };

    let mut t = Topology::new(base.seed);
    let routers: Vec<NodeId> = (0..nodes).map(|_| t.add_router()).collect();
    let hosts: Vec<NodeId> = (0..nodes).map(|_| t.add_host()).collect();

    // Union-find over sites, for the connectivity repair below.
    let mut parent: Vec<usize> = (0..nodes).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut at = x;
        while parent[at] != root {
            let next = parent[at];
            parent[at] = root;
            at = next;
        }
        root
    }

    // A site pair's cable is two simplex links sharing the distance-scaled
    // delay (floored so co-located sites still take time to talk).
    let cable = |t: &mut Topology, i: usize, j: usize| -> Result<(), TopologyError> {
        let scale = (dist(i, j) / diameter).max(0.05);
        let delay = SimDuration::from_secs_f64(base.bottleneck_delay.as_secs_f64() * scale);
        t.add_link(
            routers[i],
            routers[j],
            base.bottleneck_bandwidth_bps,
            delay,
            base.gateway_queue,
        )?;
        t.add_link(
            routers[j],
            routers[i],
            base.bottleneck_bandwidth_bps,
            delay,
            base.gateway_queue,
        )?;
        Ok(())
    };

    for i in 0..nodes {
        for j in (i + 1)..nodes {
            let p = alpha * (-dist(i, j) / (beta * diameter)).exp();
            if rng.chance(p) {
                cable(&mut t, i, j)?;
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri.max(rj)] = ri.min(rj);
            }
        }
    }
    // Deterministic connectivity repair: star any stray component onto
    // site 0, in ascending site order.
    for i in 1..nodes {
        if find(&mut parent, i) != find(&mut parent, 0) {
            cable(&mut t, 0, i)?;
            let (ri, r0) = (find(&mut parent, i), find(&mut parent, 0));
            parent[ri.max(r0)] = ri.min(r0);
        }
    }
    // Access links: one attached host per site.
    for i in 0..nodes {
        t.add_link(
            hosts[i],
            routers[i],
            base.client_bandwidth_bps,
            base.client_delay,
            access,
        )?;
        t.add_link(
            routers[i],
            hosts[i],
            base.client_bandwidth_bps,
            base.client_delay,
            access,
        )?;
    }
    // One flow per site toward a seeded random other site.
    let mut flows = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let off = 1 + rng.below(nodes as u64 - 1) as usize;
        flows.push(FlowEndpoints {
            src: hosts[i],
            dst: hosts[(i + off) % nodes],
        });
    }
    t.compute_routes();
    let network = t.into_network();

    // The bottleneck is the router-router link the flows' computed routes
    // traverse most often (lowest id on ties). Every flow crosses at least
    // one such link (its endpoints sit at distinct sites), so some
    // transit link always carries traffic.
    let mut load = vec![0u64; network.link_count()];
    for f in &flows {
        let mut at = f.src;
        let mut steps = 0usize;
        while at != f.dst {
            let via = match network.route(at, f.dst) {
                Some(via) => via,
                None => {
                    return Err(TopologyError::Unreachable {
                        src: f.src,
                        dst: f.dst,
                    })
                }
            };
            load[via.0 as usize] += 1;
            at = network.link(via).to();
            steps += 1;
            if steps > network.node_count() {
                return Err(TopologyError::Unreachable {
                    src: f.src,
                    dst: f.dst,
                });
            }
        }
    }
    let is_site = |n: NodeId| (n.0 as usize) < nodes;
    let mut best: Option<(u64, u32)> = None;
    for (id, &count) in load.iter().enumerate() {
        let link = network.link(LinkId(id as u32));
        if count == 0 || !is_site(link.from()) || !is_site(link.to()) {
            continue;
        }
        if best.map_or(true, |(c, _)| count > c) {
            best = Some((count, id as u32));
        }
    }
    let bottleneck = match best {
        Some((_, id)) => LinkId(id),
        // All flows one transit hop apart with zero shared links is
        // impossible once nodes >= 2, but fail typed rather than panic.
        None => {
            return Err(TopologyError::InvalidParam {
                what: "waxman graph",
                reason: "no transit link carries any flow".into(),
            })
        }
    };
    let bn = network.link(bottleneck);
    let (probe_node, exit_site) = (bn.from(), bn.to().0 as usize);
    Ok(BuiltTopology {
        flows,
        hops: vec![bottleneck],
        bottleneck,
        impair_link: bottleneck,
        probe_node,
        cross_src: probe_node,
        cross_dst: hosts[exit_site],
        network,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Delivered, NetEvent};
    use crate::packet::{Ecn, FlowId, Packet, PacketKind};
    use tcpburst_des::{Scheduler, SimTime};

    /// Injects `pkt` and pumps the scheduler until the network drains,
    /// returning the host that finally received it (if any). Shared by the
    /// dumbbell reachability test and the generic-topology tests below.
    fn drive_to_host(net: &mut Network, pkt: Packet) -> Option<NodeId> {
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        net.inject(pkt, &mut sched);
        let mut reached = None;
        while let Some((_, ev)) = sched.pop() {
            match ev {
                NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, &mut sched),
                NetEvent::Delivery { link, epoch, packet } => {
                    if let Delivered::ToHost { node, .. } =
                        net.on_delivery(link, epoch, packet, &mut sched)
                    {
                        reached = Some(node);
                    }
                }
            }
        }
        reached
    }

    fn datagram(flow: u32, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            flow: FlowId(flow),
            kind: PacketKind::Datagram,
            size_bytes: 1000,
            src,
            dst,
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        }
    }

    fn ack(flow: u32, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            flow: FlowId(flow),
            kind: PacketKind::TcpAck {
                ack: crate::SeqNo(1),
                ece: false,
                sack: crate::SackBlocks::EMPTY,
            },
            size_bytes: 40,
            src,
            dst,
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        }
    }

    #[test]
    fn paper_config_matches_reconstruction() {
        let cfg = DumbbellConfig::paper(10);
        assert_eq!(cfg.client_bandwidth_bps, 100_000_000);
        assert_eq!(cfg.bottleneck_bandwidth_bps, 50_000_000);
        assert_eq!(cfg.rtprop(), SimDuration::from_millis(44));
        assert_eq!(cfg.gateway_queue, QueueSpec::DropTail { capacity: 50 });
        match DumbbellConfig::paper_red(10).gateway_queue {
            QueueSpec::Red(p) => {
                assert_eq!(p.min_th, 10.0);
                assert_eq!(p.max_th, 40.0);
            }
            other => panic!("expected RED, got {other:?}"),
        }
    }

    #[test]
    fn every_client_reaches_server_and_back() {
        let db = Dumbbell::build(&DumbbellConfig::paper(5));
        let mut net = db.network;
        for (i, &c) in db.clients.iter().enumerate() {
            assert_eq!(
                drive_to_host(&mut net, datagram(i as u32, c, db.server)),
                Some(db.server),
                "client {i} cannot reach the server"
            );
            assert_eq!(
                drive_to_host(&mut net, ack(i as u32, db.server, c)),
                Some(c),
                "server cannot reach client {i}"
            );
        }
    }

    #[test]
    fn bottleneck_queue_is_the_configured_one() {
        let db = Dumbbell::build(&DumbbellConfig::paper(2));
        // DropTail with capacity 50: fill it and watch the 51st drop.
        let mut net = db.network;
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        let make = |i: u32| datagram(i, db.gateway, db.server);
        // First packet goes straight into service, then 50 fit in the buffer.
        for i in 0..51 {
            assert!(!net.send_on(db.bottleneck, make(i), &mut sched).is_drop());
        }
        assert!(net.send_on(db.bottleneck, make(51), &mut sched).is_drop());
    }

    #[test]
    fn zero_clients_is_a_typed_error() {
        assert_eq!(
            Dumbbell::try_build(&DumbbellConfig::paper(0)).err(),
            Some(TopologyError::NoFlows)
        );
    }

    #[test]
    fn negative_spread_is_a_typed_error() {
        let mut cfg = DumbbellConfig::paper(5);
        cfg.client_delay_spread = -0.5;
        assert_eq!(cfg.validate(), Err(TopologyError::InvalidSpread));
        assert_eq!(
            Dumbbell::try_build(&cfg).err(),
            Some(TopologyError::InvalidSpread)
        );
        // The accessor no longer panics; it falls back to the base delay.
        assert_eq!(cfg.client_delay_of(1), cfg.client_delay);
    }

    #[test]
    #[should_panic(expected = "invalid dumbbell config")]
    fn panicking_wrapper_still_panics() {
        Dumbbell::build(&DumbbellConfig::paper(0));
    }

    #[test]
    fn delay_spread_interpolates_linearly() {
        let mut cfg = DumbbellConfig::paper(5);
        assert_eq!(cfg.client_delay_of(0), cfg.client_delay);
        assert_eq!(cfg.client_delay_of(4), cfg.client_delay);
        cfg.client_delay_spread = 1.0;
        assert_eq!(cfg.client_delay_of(0), SimDuration::from_millis(2));
        assert_eq!(cfg.client_delay_of(4), SimDuration::from_millis(4));
        assert_eq!(cfg.client_delay_of(2), SimDuration::from_millis(3));
        // The built topology uses the per-client delays.
        let db = Dumbbell::build(&cfg);
        assert_eq!(
            db.network.link(db.uplinks[4]).delay(),
            SimDuration::from_millis(4)
        );
    }

    #[test]
    fn computed_routes_match_the_manual_dumbbell_tables() {
        let db = Dumbbell::build(&DumbbellConfig::paper(3));
        let net = &db.network;
        for (i, &c) in db.clients.iter().enumerate() {
            assert_eq!(net.route(c, db.server), Some(db.uplinks[i]));
            assert_eq!(net.route(db.gateway, c), Some(db.downlinks[i]));
            assert_eq!(net.route(db.server, c), Some(db.reverse));
        }
        assert_eq!(net.route(db.gateway, db.server), Some(db.bottleneck));
    }

    #[test]
    fn dumbbell_spec_exposes_paper_handles() {
        let spec = TopologySpec::Dumbbell(DumbbellConfig::paper(4));
        assert_eq!(spec.num_flows(), 4);
        let built = spec.build().expect("paper dumbbell builds");
        assert_eq!(built.flows.len(), 4);
        assert_eq!(built.hops, vec![built.bottleneck]);
        assert_eq!(built.impair_link, built.bottleneck);
        // Probe sits at the gateway (node 0), cross traffic drains at the
        // server (node 1), exactly as the hand-built dumbbell wired it.
        assert_eq!(built.probe_node, NodeId(0));
        assert_eq!(built.cross_dst, NodeId(1));
    }

    #[test]
    fn parking_lot_flows_reach_the_sink_over_the_chain() {
        let spec = TopologySpec::ParkingLot {
            base: DumbbellConfig::paper(1),
            hops: 3,
            flows_per_hop: 2,
        };
        assert_eq!(spec.num_flows(), 6);
        let built = spec.build().expect("parking lot builds");
        assert_eq!(built.hops.len(), 3);
        assert_eq!(built.bottleneck, built.hops[2]);
        assert_eq!(built.impair_link, built.hops[1]); // mid-chain
        let mut net = built.network;
        for (i, f) in built.flows.iter().enumerate() {
            assert_eq!(
                drive_to_host(&mut net, datagram(i as u32, f.src, f.dst)),
                Some(f.dst),
                "flow {i} cannot reach the sink"
            );
            assert_eq!(
                drive_to_host(&mut net, ack(i as u32, f.dst, f.src)),
                Some(f.src),
                "sink cannot ack flow {i}"
            );
        }
        // Group h enters at router h: flow 0 rides all 3 hops, flow 5
        // (group 2) only the last one.
        assert_eq!(route_path_len(&net, built.flows[0].src, built.flows[0].dst), Some(5));
        assert_eq!(route_path_len(&net, built.flows[5].src, built.flows[5].dst), Some(3));
    }

    #[test]
    fn incast_converges_on_one_receiver() {
        let spec = TopologySpec::Incast {
            base: DumbbellConfig::paper(1),
            fanin: 8,
        };
        let built = spec.build().expect("incast builds");
        assert_eq!(built.flows.len(), 8);
        let receiver = built.flows[0].dst;
        assert!(built.flows.iter().all(|f| f.dst == receiver));
        let mut net = built.network;
        for (i, f) in built.flows.iter().enumerate() {
            assert_eq!(
                drive_to_host(&mut net, datagram(i as u32, f.src, f.dst)),
                Some(receiver)
            );
        }
    }

    #[test]
    fn waxman_is_seed_deterministic_and_connected() {
        let spec = |seed| {
            let mut base = DumbbellConfig::paper(1);
            base.seed = seed;
            TopologySpec::Waxman {
                base,
                nodes: 8,
                alpha: 0.6,
                beta: 0.4,
            }
        };
        let a = spec(7).build().expect("waxman builds");
        let b = spec(7).build().expect("waxman builds");
        assert_eq!(a.network.link_count(), b.network.link_count());
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.bottleneck, b.bottleneck);
        // Repair guarantees all-pairs host reachability via the routes.
        for f in &a.flows {
            assert!(route_path_len(&a.network, f.src, f.dst).is_some());
            assert!(route_path_len(&a.network, f.dst, f.src).is_some());
        }
    }

    #[test]
    fn spec_validation_rejects_bad_shapes() {
        let base = DumbbellConfig::paper(1);
        assert!(TopologySpec::ParkingLot { base, hops: 0, flows_per_hop: 1 }
            .validate()
            .is_err());
        assert_eq!(
            TopologySpec::ParkingLot { base, hops: 2, flows_per_hop: 0 }.validate(),
            Err(TopologyError::NoFlows)
        );
        assert_eq!(
            TopologySpec::Incast { base, fanin: 0 }.validate(),
            Err(TopologyError::NoFlows)
        );
        assert!(TopologySpec::Waxman { base, nodes: 1, alpha: 0.5, beta: 0.5 }
            .validate()
            .is_err());
        assert!(TopologySpec::Waxman { base, nodes: 4, alpha: 1.5, beta: 0.5 }
            .validate()
            .is_err());
        assert!(TopologySpec::Waxman { base, nodes: 4, alpha: 0.5, beta: 0.0 }
            .validate()
            .is_err());
        let mut zero_bw = base;
        zero_bw.client_bandwidth_bps = 0;
        assert!(TopologySpec::Incast { base: zero_bw, fanin: 2 }.validate().is_err());
    }

    #[test]
    fn route_computation_prefers_fewest_hops_then_lowest_link_id() {
        let q = QueueSpec::DropTail { capacity: 10 };
        let bw = 1_000_000;
        let d = SimDuration::from_millis(1);
        let mut t = Topology::new(0);
        let a = t.add_router();
        let b = t.add_router();
        let c = t.add_router();
        let dst = t.add_host();
        // Two-hop detour a->b->dst (links 0, 1) vs the direct a->dst
        // added later (link 2), plus an equal-cost duplicate (link 3):
        t.add_link(a, b, bw, d, q).expect("a->b");
        t.add_link(b, dst, bw, d, q).expect("b->dst");
        let direct = t.add_link(a, dst, bw, d, q).expect("a->dst");
        t.add_link(a, dst, bw, d, q).expect("a->dst dup");
        // c is isolated on purpose: no route entry may be invented for it.
        t.compute_routes();
        let net = t.into_network();
        assert_eq!(net.route(a, dst), Some(direct));
        assert_eq!(net.route(c, dst), None);
        assert_eq!(route_path_len(&net, a, dst), Some(1));
    }
}
