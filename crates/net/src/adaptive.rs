//! Self-configuring RED (Feng, Kandlur, Saha & Shin, INFOCOM '99 — the
//! paper's reference [5]).
//!
//! Fixed RED parameters are only right for one traffic load; the
//! self-configuring variant watches where the average queue sits and scales
//! `max_p` to keep it inside the `[min_th, max_th]` band: when the average
//! falls below `min_th` RED is being too aggressive, so `max_p` is divided
//! by `alpha`; when it rises above `max_th` RED is too permissive, so
//! `max_p` is multiplied by `beta`.

use tcpburst_des::{SimDuration, SimTime};

use crate::packet::Packet;
use crate::queue::{EnqueueOutcome, Occupancy, Queue, QueueStats, RedParams, RedQueue};

/// Adaptation knobs for [`SelfConfiguringRed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveRedParams {
    /// Division factor applied to `max_p` when the average queue is below
    /// `min_th` (the original paper uses 3).
    pub alpha: f64,
    /// Multiplication factor applied when the average exceeds `max_th` (the
    /// original paper uses 2).
    pub beta: f64,
    /// Lower clamp on `max_p`.
    pub min_max_p: f64,
    /// Upper clamp on `max_p`.
    pub max_max_p: f64,
    /// Minimum time between adjustments (roughly one RTT).
    pub interval: SimDuration,
}

impl Default for AdaptiveRedParams {
    fn default() -> Self {
        AdaptiveRedParams {
            alpha: 3.0,
            beta: 2.0,
            min_max_p: 0.01,
            max_max_p: 0.5,
            interval: SimDuration::from_millis(50),
        }
    }
}

impl AdaptiveRedParams {
    fn validate(&self) {
        assert!(self.alpha > 1.0, "alpha must exceed 1");
        assert!(self.beta > 1.0, "beta must exceed 1");
        assert!(
            0.0 < self.min_max_p && self.min_max_p <= self.max_max_p && self.max_max_p <= 1.0,
            "max_p clamps must satisfy 0 < min <= max <= 1"
        );
        assert!(!self.interval.is_zero(), "interval must be positive");
    }
}

/// A RED gateway that re-tunes its own `max_p` to the offered load.
///
/// # Example
///
/// ```
/// use tcpburst_net::{AdaptiveRedParams, Queue, RedParams, SelfConfiguringRed};
///
/// let q = SelfConfiguringRed::new(
///     RedParams::paper_defaults(),
///     AdaptiveRedParams::default(),
///     7,
/// );
/// assert_eq!(q.current_max_p(), 0.1); // starts at the configured value
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct SelfConfiguringRed {
    inner: RedQueue,
    adapt: AdaptiveRedParams,
    max_p: f64,
    last_adjust: SimTime,
    adjustments: u64,
}

impl SelfConfiguringRed {
    /// Creates a self-configuring RED queue starting from `red`'s `max_p`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter set is invalid.
    pub fn new(red: RedParams, adapt: AdaptiveRedParams, seed: u64) -> Self {
        adapt.validate();
        let max_p = red.max_p;
        SelfConfiguringRed {
            inner: RedQueue::new(red, seed),
            adapt,
            max_p,
            last_adjust: SimTime::ZERO,
            adjustments: 0,
        }
    }

    /// The current (adapted) maximum drop probability.
    pub fn current_max_p(&self) -> f64 {
        self.max_p
    }

    /// Number of `max_p` adjustments made so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The inner RED queue's average-queue estimate.
    pub fn average(&self) -> f64 {
        self.inner.average()
    }

    fn maybe_adapt(&mut self, now: SimTime) {
        if now.saturating_since(self.last_adjust) < self.adapt.interval {
            return;
        }
        self.last_adjust = now;
        let avg = self.inner.average();
        let p = self.inner.params();
        let new_p = if avg < p.min_th {
            self.max_p / self.adapt.alpha
        } else if avg > p.max_th {
            self.max_p * self.adapt.beta
        } else {
            return;
        };
        let new_p = new_p.clamp(self.adapt.min_max_p, self.adapt.max_max_p);
        if (new_p - self.max_p).abs() > f64::EPSILON {
            self.max_p = new_p;
            self.inner.set_max_p(new_p);
            self.adjustments += 1;
        }
    }
}

impl Queue for SelfConfiguringRed {
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> EnqueueOutcome {
        let outcome = self.inner.enqueue(pkt, now);
        self.maybe_adapt(now);
        outcome
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn stats(&self) -> QueueStats {
        self.inner.stats()
    }

    fn occupancy(&self) -> Occupancy {
        self.inner.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId, NodeId, PacketKind};

    fn pkt() -> Packet {
        Packet {
            flow: FlowId(0),
            kind: PacketKind::Datagram,
            size_bytes: 1500,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        }
    }

    fn queue(weight: f64) -> SelfConfiguringRed {
        SelfConfiguringRed::new(
            RedParams {
                min_th: 5.0,
                max_th: 15.0,
                max_p: 0.1,
                weight,
                capacity: 100,
                mean_pkt_time_secs: 0.001,
                ecn_marking: false,
            },
            AdaptiveRedParams::default(),
            3,
        )
    }

    #[test]
    fn light_load_relaxes_max_p() {
        let mut q = queue(0.5);
        // Queue stays empty-ish: average < min_th, max_p shrinks.
        for i in 0..200u64 {
            let now = SimTime::from_millis(i * 60); // beyond each interval
            q.enqueue(pkt(), now);
            q.dequeue(now);
        }
        assert!(q.current_max_p() < 0.1, "max_p {} did not relax", q.current_max_p());
        assert!(q.current_max_p() >= 0.01, "clamped at min");
        assert!(q.adjustments() > 0);
    }

    #[test]
    fn overload_tightens_max_p() {
        let mut q = queue(0.9);
        // Fill hard without draining: the average climbs past max_th.
        for i in 0..500u64 {
            let now = SimTime::from_millis(i * 60);
            q.enqueue(pkt(), now);
            if q.len() > 30 {
                q.dequeue(now);
            }
        }
        assert!(
            q.current_max_p() > 0.1,
            "max_p {} did not tighten under overload",
            q.current_max_p()
        );
        assert!(q.current_max_p() <= 0.5, "clamped at max");
    }

    #[test]
    fn adjustments_respect_the_interval() {
        let mut q = queue(0.5);
        // Two arrivals within one interval: at most one adjustment.
        q.enqueue(pkt(), SimTime::from_millis(60));
        q.enqueue(pkt(), SimTime::from_millis(61));
        assert!(q.adjustments() <= 1);
    }

    #[test]
    fn in_band_average_leaves_max_p_alone() {
        let mut q = queue(1.0); // avg tracks the instantaneous length exactly
        // Ramp to 10 packets inside the first adaptation interval (no
        // adjustment can fire yet), then hold between min_th 5 and max_th 15.
        for _ in 0..10 {
            q.enqueue(pkt(), SimTime::from_millis(1));
        }
        for i in 1..100u64 {
            let now = SimTime::from_millis(i * 60);
            q.enqueue(pkt(), now);
            if q.len() > 10 {
                q.dequeue(now);
            }
        }
        assert_eq!(q.current_max_p(), 0.1);
        assert_eq!(q.adjustments(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn invalid_adaptation_panics() {
        SelfConfiguringRed::new(
            RedParams::paper_defaults(),
            AdaptiveRedParams {
                alpha: 0.5,
                ..AdaptiveRedParams::default()
            },
            0,
        );
    }
}
