//! Network substrate: packets, links, queues, routers and topologies.
//!
//! This crate models the data path of the paper's Figure 1 — `N` clients,
//! one gateway, one server — at the same abstraction level as the *ns*
//! simulator the original study used:
//!
//! * [`Packet`] — fixed-size data segments, ACKs and datagrams with
//!   packet-granularity sequence numbers,
//! * [`Queue`] implementations — [`DropTailQueue`] (FIFO) and [`RedQueue`]
//!   (Floyd–Jacobson random early detection),
//! * [`Link`] — simplex store-and-forward pipes with a serialization rate and
//!   a propagation delay; a full-duplex cable is a pair of these,
//! * [`Network`] — the arena of nodes and links plus static routing,
//! * [`Topology`] — a graph builder with computed minimum-hop routing,
//! * [`TopologySpec`] — buildable shapes: the paper's [`Dumbbell`],
//!   parking-lot chains, incast fan-in, and seeded Waxman random graphs.
//!
//! The crate is purely mechanical: it moves packets and counts drops.
//! Protocol behaviour lives in `tcpburst-transport`; instrumentation policy
//! (what to probe, when) lives in `tcpburst-core`.
//!
//! Fault injection is described by [`Impairments`] (see [`impair`]) and
//! executed by the [`Network`]'s link state machine: links can go down
//! (dropping in-flight packets), change rate or delay mid-run, and corrupt
//! packets on the wire — all deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
pub mod impair;
mod link;
mod network;
mod packet;
mod queue;
mod topology;

pub use adaptive::{AdaptiveRedParams, SelfConfiguringRed};
pub use impair::{
    CapacityVariation, CrossTraffic, DelayVariation, Impairments, LinkFlap, CROSS_TRAFFIC_FLOW,
};
pub use link::{Link, LinkStats};
pub use network::{Delivered, NetEvent, Network, WireLoss};
pub use packet::{
    Ecn, FlowId, LinkId, NodeId, Packet, PacketArena, PacketId, PacketKind, SackBlocks, SeqNo,
};
pub use queue::{
    AnyQueue, DropTailQueue, EnqueueOutcome, Occupancy, Queue, QueueStats, RedParams, RedQueue,
};
pub use topology::{
    route_path_len, BuiltTopology, Dumbbell, DumbbellConfig, FlowEndpoints, QueueSpec, Topology,
    TopologyError, TopologySpec,
};
