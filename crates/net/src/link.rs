//! Simplex store-and-forward links.

use tcpburst_des::{SimDuration, SimTime};

use crate::packet::{NodeId, Packet};
use crate::queue::AnyQueue;

/// Transmission accounting for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets fully serialized onto the wire.
    pub packets_tx: u64,
    /// Bytes fully serialized onto the wire.
    pub bytes_tx: u64,
    /// Packets lost because the link went down while they were in flight
    /// (being serialized or propagating).
    pub lost_in_flight: u64,
    /// Packets lost to random wire corruption.
    pub corrupted: u64,
    /// Packets that survived the wire and reached the far end.
    ///
    /// Together these counters close the wire's conservation identity —
    /// `packets_tx = arrived + lost_in_flight + corrupted + in_flight` —
    /// which the invariant auditor checks at end of run (the residual
    /// `in_flight` must be non-negative).
    pub arrived: u64,
}

/// A one-directional link: a queue, a serialization rate and a propagation
/// delay.
///
/// A packet leaving the queue occupies the transmitter for
/// `size_bits / bandwidth` and arrives at the far end one propagation delay
/// after serialization completes — the classic store-and-forward model. A
/// full-duplex cable (as in the paper's topology) is modelled as two
/// independent `Link`s, so ACKs never contend with data.
#[derive(Debug)]
pub struct Link {
    from: NodeId,
    to: NodeId,
    bandwidth_bps: u64,
    delay: SimDuration,
    /// Admission discipline, stored as the closed [`AnyQueue`] enum: the
    /// per-packet enqueue/dequeue pair is the hottest call in the simulator
    /// and must not go through a vtable.
    queue: AnyQueue,
    busy: bool,
    /// False while the link is administratively down (fault injection).
    up: bool,
    /// Incremented on every down transition; events stamped with an older
    /// epoch refer to transmissions the outage invalidated.
    epoch: u32,
    /// Per-hop wire corruption probability (0 = never).
    corrupt_prob: f64,
    stats: LinkStats,
    /// One-entry `(bits, rate, nanos)` memo for [`Link::tx_time`]. A link
    /// typically carries a single packet size (data one way, ACKs the
    /// other), so this replaces a 128-bit ceiling division per transmitted
    /// packet with two compares. Keying on the rate as well as the size
    /// keeps the memo correct when fault injection retunes the bandwidth
    /// mid-run. `(0, rate, 0)` is a correct seed: zero bits serialize in
    /// zero time at any rate.
    tx_memo: std::cell::Cell<(u64, u64, u64)>,
}

impl Link {
    /// Creates a link from `from` to `to` with the given rate, propagation
    /// delay and admission queue.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn new(
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        delay: SimDuration,
        queue: impl Into<AnyQueue>,
    ) -> Self {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        Link {
            from,
            to,
            bandwidth_bps,
            delay,
            queue: queue.into(),
            busy: false,
            up: true,
            epoch: 0,
            corrupt_prob: 0.0,
            stats: LinkStats::default(),
            tx_memo: std::cell::Cell::new((0, bandwidth_bps, 0)),
        }
    }

    /// The transmitting node.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// The receiving node.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// Serialization rate in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Retunes the serialization rate (fault injection: time-varying
    /// capacity). Packets already being serialized keep the schedule they
    /// were given at the old rate — the bits on the wire cannot be
    /// re-clocked — but every subsequent transmission uses the new one.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn set_bandwidth_bps(&mut self, bandwidth_bps: u64) {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        self.bandwidth_bps = bandwidth_bps;
    }

    /// One-way propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Retunes the propagation delay (fault injection: time-varying path
    /// length). Packets already propagating keep their old arrival times.
    pub fn set_delay(&mut self, delay: SimDuration) {
        self.delay = delay;
    }

    /// True while the link is administratively up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The current up/down epoch (bumped on every down transition).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Per-hop wire corruption probability.
    pub fn corrupt_prob(&self) -> f64 {
        self.corrupt_prob
    }

    /// Sets the per-hop wire corruption probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not a probability.
    pub fn set_corrupt_prob(&mut self, prob: f64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "corruption probability must be in [0, 1], got {prob}"
        );
        self.corrupt_prob = prob;
    }

    /// Marks the link up or down (managed by [`Network`](crate::Network)).
    ///
    /// A down transition bumps the epoch, invalidating every in-flight
    /// transmission, and idles the transmitter.
    pub(crate) fn set_up(&mut self, up: bool) {
        if self.up && !up {
            self.epoch = self.epoch.wrapping_add(1);
            self.busy = false;
        }
        self.up = up;
    }

    pub(crate) fn note_lost_in_flight(&mut self) {
        self.stats.lost_in_flight += 1;
    }

    pub(crate) fn note_corrupted(&mut self) {
        self.stats.corrupted += 1;
    }

    pub(crate) fn note_arrived(&mut self) {
        self.stats.arrived += 1;
    }

    /// Time to clock `bits` onto the wire at this link's rate.
    pub fn tx_time(&self, bits: u64) -> SimDuration {
        let (memo_bits, memo_rate, memo_ns) = self.tx_memo.get();
        if bits == memo_bits && self.bandwidth_bps == memo_rate {
            return SimDuration::from_nanos(memo_ns);
        }
        // ceil(bits * 1e9 / bandwidth) nanoseconds, in u128 to avoid overflow.
        let ns = (u128::from(bits) * 1_000_000_000u128).div_ceil(u128::from(self.bandwidth_bps));
        let ns = ns.min(u128::from(u64::MAX)) as u64;
        self.tx_memo.set((bits, self.bandwidth_bps, ns));
        SimDuration::from_nanos(ns)
    }

    /// The admission queue.
    pub fn queue(&self) -> &AnyQueue {
        &self.queue
    }

    /// The admission queue, mutably.
    pub fn queue_mut(&mut self) -> &mut AnyQueue {
        &mut self.queue
    }

    /// True while a packet is being serialized.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Marks the transmitter busy/idle (managed by [`Network`](crate::Network)).
    pub(crate) fn set_busy(&mut self, busy: bool) {
        self.busy = busy;
    }

    pub(crate) fn note_tx(&mut self, pkt: &Packet) {
        self.stats.packets_tx += 1;
        self.stats.bytes_tx += u64::from(pkt.size_bytes);
    }

    /// Transmission counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Completion and delivery instants for a packet whose serialization
    /// starts at `now`: `(tx_complete, delivery)`.
    pub fn schedule_times(&self, pkt: &Packet, now: SimTime) -> (SimTime, SimTime) {
        let done = now + self.tx_time(pkt.size_bits());
        (done, done + self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId, PacketKind};
    use crate::queue::DropTailQueue;

    fn link(bps: u64, delay_ms: u64) -> Link {
        Link::new(
            NodeId(0),
            NodeId(1),
            bps,
            SimDuration::from_millis(delay_ms),
            DropTailQueue::new(10),
        )
    }

    fn pkt(bytes: u32) -> Packet {
        Packet {
            flow: FlowId(0),
            kind: PacketKind::Datagram,
            size_bytes: bytes,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        }
    }

    #[test]
    fn tx_time_matches_rate() {
        let l = link(1_000_000, 0); // 1 Mbps
        assert_eq!(l.tx_time(8_000), SimDuration::from_millis(8));
        // 3 Mbps, 1000-byte packet: 8000/3e6 s = 2.666… ms, rounded up.
        let bottleneck = link(3_000_000, 0);
        let t = bottleneck.tx_time(8_000);
        assert_eq!(t.as_nanos(), 2_666_667);
    }

    #[test]
    fn schedule_times_add_propagation() {
        let l = link(1_000_000, 20);
        let (done, arrive) = l.schedule_times(&pkt(1000), SimTime::from_millis(5));
        assert_eq!(done, SimTime::from_millis(13)); // 5 + 8 ms serialization
        assert_eq!(arrive, SimTime::from_millis(33)); // + 20 ms propagation
    }

    #[test]
    fn tx_time_handles_large_packets_without_overflow() {
        // 10^12 bits at 1 kbps = 10^9 seconds, exactly representable.
        let l = link(1_000, 0);
        assert_eq!(l.tx_time(1_000_000_000_000), SimDuration::from_secs(1_000_000_000));
        // Pathological sizes saturate instead of wrapping.
        let slow = link(1, 0);
        assert_eq!(slow.tx_time(u64::MAX), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        link(0, 1);
    }

    #[test]
    fn tx_time_memo_invalidates_on_rate_change() {
        let mut l = link(1_000_000, 0);
        assert_eq!(l.tx_time(8_000), SimDuration::from_millis(8));
        // Same size, half the rate: the memo must not serve the stale time.
        l.set_bandwidth_bps(500_000);
        assert_eq!(l.tx_time(8_000), SimDuration::from_millis(16));
        l.set_bandwidth_bps(1_000_000);
        assert_eq!(l.tx_time(8_000), SimDuration::from_millis(8));
    }

    #[test]
    fn set_delay_changes_schedule_times() {
        let mut l = link(1_000_000, 20);
        l.set_delay(SimDuration::from_millis(5));
        let (done, arrive) = l.schedule_times(&pkt(1000), SimTime::ZERO);
        assert_eq!(done, SimTime::from_millis(8));
        assert_eq!(arrive, SimTime::from_millis(13));
    }

    #[test]
    fn down_transition_bumps_epoch_and_idles() {
        let mut l = link(1_000_000, 0);
        assert!(l.is_up());
        assert_eq!(l.epoch(), 0);
        l.set_busy(true);
        l.set_up(false);
        assert!(!l.is_up());
        assert!(!l.is_busy());
        assert_eq!(l.epoch(), 1);
        // Coming back up does not bump the epoch again.
        l.set_up(true);
        assert_eq!(l.epoch(), 1);
        // A redundant down-while-down is a no-op.
        l.set_up(false);
        l.set_up(false);
        assert_eq!(l.epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn corruption_probability_is_validated() {
        link(1_000, 0).set_corrupt_prob(1.5);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = link(1_000_000, 0);
        l.note_tx(&pkt(1000));
        l.note_tx(&pkt(40));
        assert_eq!(l.stats().packets_tx, 2);
        assert_eq!(l.stats().bytes_tx, 1040);
    }
}
