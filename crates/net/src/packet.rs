//! Packets and the identifier newtypes used across the workspace.

use std::fmt;

use tcpburst_des::SimTime;

/// Identifies a node (host or router) within a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a simplex link within a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Identifies one end-to-end flow (one client's connection to the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// A packet-granularity sequence number.
///
/// The simulation works in whole segments (the paper's clients submit
/// fixed-size 1000-byte packets), so sequence numbers count packets rather
/// than bytes — the same simplification the *ns* TCP agents make.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The first sequence number of a connection.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The following sequence number.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// Number of packets in `[self, later)`, saturating at zero.
    pub fn distance_to(self, later: SeqNo) -> u64 {
        later.0.saturating_sub(self.0)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The ECN codepoint carried in a packet's (virtual) IP header.
///
/// Simplified RFC 3168 model: an ECN-capable packet traversing a marking
/// RED gateway is re-marked [`Ecn::CongestionExperienced`] instead of being
/// early-dropped; the receiver echoes the mark back to the sender, which
/// halves its window without any packet having been lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ecn {
    /// The flow did not negotiate ECN; congestion is signalled by drops.
    #[default]
    NotCapable,
    /// ECN-capable transport (ECT): may be marked instead of dropped.
    Capable,
    /// Congestion experienced (CE): a gateway marked this packet.
    CongestionExperienced,
}

impl Ecn {
    /// True if a marking gateway may set CE on this packet.
    pub fn is_markable(self) -> bool {
        matches!(self, Ecn::Capable)
    }

    /// True if a gateway marked this packet.
    pub fn is_ce(self) -> bool {
        matches!(self, Ecn::CongestionExperienced)
    }
}

/// Up to three selective-acknowledgment ranges `[start, end)`, newest
/// first — the RFC 2018 option, sized like the common three-block case.
///
/// # Example
///
/// ```
/// use tcpburst_net::{SackBlocks, SeqNo};
///
/// let sack = SackBlocks::from_ranges(&[(SeqNo(7), SeqNo(9)), (SeqNo(3), SeqNo(4))]);
/// assert!(sack.contains(SeqNo(8)));
/// assert!(!sack.contains(SeqNo(5)));
/// assert_eq!(sack.iter().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SackBlocks {
    // Flat ranges plus a length instead of `[Option<(SeqNo, SeqNo)>; 3]`:
    // `u64` pairs have no niche, so the `Option` layout costs 24 bytes per
    // slot (72 total) against 56 here. The packet is copied several times
    // per hop on the hottest path, so every cacheline matters. Unused
    // slots stay zeroed so the derived `Eq`/`Hash` see a canonical form.
    blocks: [(SeqNo, SeqNo); 3],
    len: u8,
}

impl SackBlocks {
    /// No blocks.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(SeqNo(0), SeqNo(0)); 3],
        len: 0,
    };

    /// Builds from up to the first three `[start, end)` ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or inverted.
    pub fn from_ranges(ranges: &[(SeqNo, SeqNo)]) -> Self {
        let mut out = SackBlocks::EMPTY;
        for (slot, &(s, e)) in out.blocks.iter_mut().zip(ranges) {
            assert!(s < e, "SACK range [{s}, {e}) is empty or inverted");
            *slot = (s, e);
            out.len += 1;
        }
        out
    }

    /// The populated ranges.
    pub fn iter(&self) -> impl Iterator<Item = (SeqNo, SeqNo)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }

    /// True if `seq` falls inside any block.
    pub fn contains(&self, seq: SeqNo) -> bool {
        self.iter().any(|(s, e)| s <= seq && seq < e)
    }

    /// True if no block is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A TCP data segment carrying the packet with sequence number `seq`.
    TcpData {
        /// Sequence number of the carried segment.
        seq: SeqNo,
        /// True if this is a retransmission (lets probes separate first
        /// transmissions from recovery traffic).
        retransmit: bool,
    },
    /// A cumulative TCP acknowledgment: the receiver has everything below
    /// `ack` and expects `ack` next.
    TcpAck {
        /// Next expected sequence number.
        ack: SeqNo,
        /// ECN echo: the receiver saw a congestion-experienced mark.
        ece: bool,
        /// Selective-acknowledgment ranges above the cumulative point.
        sack: SackBlocks,
    },
    /// A UDP datagram (no transport feedback at all).
    Datagram,
}

impl PacketKind {
    /// True for payload-bearing kinds (TCP data and datagrams).
    pub fn is_data(&self) -> bool {
        matches!(self, PacketKind::TcpData { .. } | PacketKind::Datagram)
    }

    /// True for acknowledgments.
    pub fn is_ack(&self) -> bool {
        matches!(self, PacketKind::TcpAck { .. })
    }
}

/// A packet in flight.
///
/// # Example
///
/// ```
/// use tcpburst_des::SimTime;
/// use tcpburst_net::{FlowId, NodeId, Packet, PacketKind, SeqNo};
///
/// let pkt = Packet {
///     flow: FlowId(3),
///     kind: PacketKind::TcpData { seq: SeqNo(7), retransmit: false },
///     size_bytes: 1000,
///     src: NodeId(3),
///     dst: NodeId(99),
///     created_at: SimTime::from_millis(12),
///     ecn: tcpburst_net::Ecn::NotCapable,
/// };
/// assert!(pkt.kind.is_data());
/// assert_eq!(pkt.size_bits(), 8000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// The end-to-end flow this packet belongs to.
    pub flow: FlowId,
    /// Payload classification and transport header fields.
    pub kind: PacketKind,
    /// Wire size in bytes (drives serialization delay).
    pub size_bytes: u32,
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// When the packet was handed to the network (for delay accounting).
    pub created_at: SimTime,
    /// ECN codepoint (gateways may rewrite it to CE).
    pub ecn: Ecn,
}

impl Packet {
    /// Wire size in bits.
    pub fn size_bits(&self) -> u64 {
        u64::from(self.size_bytes) * 8
    }
}

/// Handle to a packet parked in a [`PacketArena`] while it propagates along
/// a link.
///
/// A [`Packet`] is ~120 bytes (the SACK option dominates); carrying it by
/// value inside every `Delivery` event would make the event queue's entries
/// an order of magnitude larger than they need to be. The arena keeps the
/// payload in one slab and the event carries this 8-byte ticket instead.
///
/// The handle is generational: each slot remembers how many times it has
/// been reused, and redeeming a stale ticket (the slot was freed and
/// recycled since) panics instead of silently returning someone else's
/// packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId {
    idx: u32,
    gen: u32,
}

#[derive(Debug, Clone)]
struct ArenaSlot {
    gen: u32,
    pkt: Option<Packet>,
}

/// A generational slab holding packets while they are in flight on a link
/// (from the start of serialization until delivery).
///
/// Slots are recycled LIFO, so steady-state traffic churns through a small,
/// cache-hot prefix of the slab regardless of how many packets have ever
/// existed.
///
/// # Example
///
/// ```
/// use tcpburst_des::SimTime;
/// use tcpburst_net::{FlowId, NodeId, Packet, PacketArena, PacketKind, SeqNo};
///
/// let pkt = Packet {
///     flow: FlowId(0),
///     kind: PacketKind::Datagram,
///     size_bytes: 1000,
///     src: NodeId(0),
///     dst: NodeId(1),
///     created_at: SimTime::ZERO,
///     ecn: tcpburst_net::Ecn::NotCapable,
/// };
/// let mut arena = PacketArena::new();
/// let id = arena.insert(pkt);
/// assert_eq!(arena.get(id).size_bytes, 1000);
/// assert_eq!(arena.take(id), pkt);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    slots: Vec<ArenaSlot>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Parks a packet and returns its ticket.
    pub fn insert(&mut self, pkt: Packet) -> PacketId {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.pkt.is_none());
                slot.pkt = Some(pkt);
                PacketId { idx, gen: slot.gen }
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("packet arena overflow");
                self.slots.push(ArenaSlot { gen: 0, pkt: Some(pkt) });
                PacketId { idx, gen: 0 }
            }
        }
    }

    /// Looks at a parked packet without redeeming the ticket.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or was never issued.
    pub fn get(&self, id: PacketId) -> &Packet {
        let slot = &self.slots[id.idx as usize];
        assert_eq!(slot.gen, id.gen, "stale packet ticket {id:?}");
        slot.pkt.as_ref().expect("packet ticket redeemed twice")
    }

    /// Redeems a ticket, freeing the slot and returning the packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or was already redeemed.
    pub fn take(&mut self, id: PacketId) -> Packet {
        let slot = &mut self.slots[id.idx as usize];
        assert_eq!(slot.gen, id.gen, "stale packet ticket {id:?}");
        let pkt = slot.pkt.take().expect("packet ticket redeemed twice");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
        pkt
    }

    /// Number of packets currently parked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of slots ever allocated (the slab's high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_ordering_and_distance() {
        assert!(SeqNo(1) < SeqNo(2));
        assert_eq!(SeqNo(5).next(), SeqNo(6));
        assert_eq!(SeqNo(3).distance_to(SeqNo(10)), 7);
        assert_eq!(SeqNo(10).distance_to(SeqNo(3)), 0);
        assert_eq!(SeqNo::ZERO.to_string(), "#0");
    }

    #[test]
    fn kind_classification() {
        let data = PacketKind::TcpData {
            seq: SeqNo(1),
            retransmit: false,
        };
        let ack = PacketKind::TcpAck { ack: SeqNo(2), ece: false, sack: SackBlocks::EMPTY };
        assert!(data.is_data() && !data.is_ack());
        assert!(ack.is_ack() && !ack.is_data());
        assert!(PacketKind::Datagram.is_data());
    }

    fn dg(size_bytes: u32) -> Packet {
        Packet {
            flow: FlowId(0),
            kind: PacketKind::Datagram,
            size_bytes,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        }
    }

    #[test]
    fn arena_recycles_slots_lifo() {
        let mut arena = PacketArena::new();
        let a = arena.insert(dg(1));
        let b = arena.insert(dg(2));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.take(b).size_bytes, 2);
        // The freed slot is reused immediately; the slab does not grow.
        let c = arena.insert(dg(3));
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena.get(c).size_bytes, 3);
        assert_eq!(arena.take(a).size_bytes, 1);
        assert_eq!(arena.take(c).size_bytes, 3);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    #[should_panic(expected = "stale packet ticket")]
    fn arena_rejects_stale_ticket() {
        let mut arena = PacketArena::new();
        let a = arena.insert(dg(1));
        arena.take(a);
        let _b = arena.insert(dg(2)); // reuses the slot, bumps generation
        arena.get(a);
    }

    #[test]
    #[should_panic(expected = "stale packet ticket")]
    fn arena_rejects_double_free() {
        // Freeing bumps the generation, so a double free reads as stale.
        let mut arena = PacketArena::new();
        let a = arena.insert(dg(1));
        arena.take(a);
        arena.take(a);
    }

    #[test]
    fn size_in_bits() {
        let pkt = Packet {
            flow: FlowId(0),
            kind: PacketKind::Datagram,
            size_bytes: 40,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        };
        assert_eq!(pkt.size_bits(), 320);
    }
}
