//! Gateway queueing disciplines: drop-tail FIFO and RED.

use std::collections::VecDeque;

use tcpburst_des::{SimRng, SimTime};

use crate::adaptive::SelfConfiguringRed;
use crate::packet::Packet;

/// Why an arriving packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet was queued.
    Accepted,
    /// The buffer was physically full (drop-tail, or RED overflow).
    DroppedFull,
    /// RED dropped the packet probabilistically (average queue between the
    /// thresholds).
    DroppedEarly,
    /// RED dropped the packet because the average queue exceeded `max_th`.
    DroppedForced,
}

impl EnqueueOutcome {
    /// True if the packet was not queued.
    pub fn is_drop(self) -> bool {
        !matches!(self, EnqueueOutcome::Accepted)
    }
}

/// Arrival/drop accounting for one queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets offered to the queue.
    pub arrivals: u64,
    /// Packets dropped because the physical buffer was full.
    pub drops_full: u64,
    /// Packets dropped early by RED (probabilistic region).
    pub drops_early: u64,
    /// Packets dropped by RED's forced region (average above `max_th`).
    pub drops_forced: u64,
    /// Packets handed to the link for transmission.
    pub departures: u64,
    /// Largest instantaneous backlog seen, in packets.
    pub peak_len: usize,
    /// Packets CE-marked instead of dropped (ECN-enabled RED only).
    pub ecn_marks: u64,
}

impl QueueStats {
    /// All drops combined.
    pub fn drops_total(&self) -> u64 {
        self.drops_full + self.drops_early + self.drops_forced
    }

    /// Fraction of offered packets that were dropped, in `[0, 1]`.
    /// Zero when nothing arrived.
    pub fn loss_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.drops_total() as f64 / self.arrivals as f64
        }
    }
}

/// Time-integral of queue occupancy, for time-weighted average backlog.
///
/// Call [`Occupancy::advance`] with the *pre-change* length every time the
/// queue's length is about to change; query the running average with
/// [`Occupancy::average`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Occupancy {
    last_update: SimTime,
    pkt_seconds: f64,
}

impl Occupancy {
    /// Accumulates `len` packets held since the last update.
    pub fn advance(&mut self, now: SimTime, len: usize) {
        self.pkt_seconds += len as f64 * now.saturating_since(self.last_update).as_secs_f64();
        self.last_update = now;
    }

    /// Time-weighted mean backlog over `[0, end]`, given the current length.
    pub fn average(&self, end: SimTime, current_len: usize) -> f64 {
        let total = end.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let tail = end.saturating_since(self.last_update).as_secs_f64();
        (self.pkt_seconds + current_len as f64 * tail) / total
    }
}

/// A packet buffer feeding a link.
///
/// Implementations decide *admission* (drop-tail vs RED); service order is
/// FIFO for both, matching the paper's gateway.
pub trait Queue: std::fmt::Debug {
    /// Offers `pkt` to the queue at time `now`.
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> EnqueueOutcome;

    /// Removes the head-of-line packet for transmission.
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Instantaneous backlog in packets.
    fn len(&self) -> usize;

    /// True if no packet is waiting.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arrival/drop counters.
    fn stats(&self) -> QueueStats;

    /// The occupancy integral (time-weighted backlog).
    fn occupancy(&self) -> Occupancy;
}

/// A bounded FIFO queue that drops arrivals when full (the paper's plain
/// gateway).
///
/// # Example
///
/// ```
/// use tcpburst_des::SimTime;
/// use tcpburst_net::{DropTailQueue, EnqueueOutcome, Queue};
/// # use tcpburst_net::{FlowId, NodeId, Packet, PacketKind};
/// # fn pkt() -> Packet {
/// #     Packet { flow: FlowId(0), kind: PacketKind::Datagram, size_bytes: 1000,
/// #              src: NodeId(0), dst: NodeId(1), created_at: SimTime::ZERO,
/// #              ecn: tcpburst_net::Ecn::NotCapable }
/// # }
///
/// let mut q = DropTailQueue::new(2);
/// assert_eq!(q.enqueue(pkt(), SimTime::ZERO), EnqueueOutcome::Accepted);
/// assert_eq!(q.enqueue(pkt(), SimTime::ZERO), EnqueueOutcome::Accepted);
/// assert_eq!(q.enqueue(pkt(), SimTime::ZERO), EnqueueOutcome::DroppedFull);
/// assert_eq!(q.len(), 2);
/// ```
#[derive(Debug)]
pub struct DropTailQueue {
    buf: VecDeque<Packet>,
    capacity: usize,
    stats: QueueStats,
    occupancy: Occupancy,
}

impl DropTailQueue {
    /// Creates a queue holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DropTailQueue {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats::default(),
            occupancy: Occupancy::default(),
        }
    }

    /// The configured capacity in packets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Queue for DropTailQueue {
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> EnqueueOutcome {
        self.stats.arrivals += 1;
        if self.buf.len() >= self.capacity {
            self.stats.drops_full += 1;
            return EnqueueOutcome::DroppedFull;
        }
        self.occupancy.advance(now, self.buf.len());
        self.buf.push_back(pkt);
        self.stats.peak_len = self.stats.peak_len.max(self.buf.len());
        EnqueueOutcome::Accepted
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.occupancy.advance(now, self.buf.len());
        let pkt = self.buf.pop_front()?;
        self.stats.departures += 1;
        Some(pkt)
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }

    fn occupancy(&self) -> Occupancy {
        self.occupancy
    }
}

/// Parameters of a RED gateway (Floyd & Jacobson 1993).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedParams {
    /// Minimum average-queue threshold (packets); below it nothing drops.
    pub min_th: f64,
    /// Maximum average-queue threshold (packets); above it everything drops.
    pub max_th: f64,
    /// Maximum early-drop probability, reached as the average approaches
    /// `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue length.
    pub weight: f64,
    /// Physical buffer limit in packets (the gateway still has finite
    /// memory).
    pub capacity: usize,
    /// Typical packet transmission time on the outgoing link, used to decay
    /// the average across idle periods.
    pub mean_pkt_time_secs: f64,
    /// Mark ECN-capable packets with CE instead of early-dropping them
    /// (packets are still dropped in the forced region above `max_th` and at
    /// the physical buffer limit).
    pub ecn_marking: bool,
}

impl RedParams {
    /// The paper's RED configuration: thresholds (10, 40) on a 50-packet
    /// buffer, with the classic ns defaults for `w_q` and `max_p`, on the
    /// 50 Mbps bottleneck (1500-byte packets serialize in 240 µs).
    pub fn paper_defaults() -> Self {
        RedParams {
            min_th: 10.0,
            max_th: 40.0,
            max_p: 0.1,
            weight: 0.002,
            capacity: 50,
            mean_pkt_time_secs: 12_000.0 / 50_000_000.0,
            ecn_marking: false,
        }
    }

    fn validate(&self) {
        assert!(
            self.min_th >= 0.0 && self.min_th < self.max_th,
            "RED thresholds must satisfy 0 <= min_th < max_th"
        );
        assert!(
            (0.0..=1.0).contains(&self.max_p) && self.max_p > 0.0,
            "max_p must be in (0, 1]"
        );
        assert!(
            self.weight > 0.0 && self.weight <= 1.0,
            "EWMA weight must be in (0, 1]"
        );
        assert!(self.capacity > 0, "capacity must be positive");
        assert!(
            self.mean_pkt_time_secs > 0.0,
            "mean packet time must be positive"
        );
    }
}

/// A RED (random early detection) gateway queue.
///
/// Maintains an exponentially weighted moving average of the queue length;
/// between `min_th` and `max_th` arrivals are dropped with a probability that
/// grows with the average (and with the count of packets admitted since the
/// last drop, per the original paper's uniformization), and above `max_th`
/// every arrival is dropped — the behaviour the ICDCS paper describes.
#[derive(Debug)]
pub struct RedQueue {
    buf: VecDeque<Packet>,
    params: RedParams,
    avg: f64,
    /// Packets admitted since the last early drop (−1 ⇔ below `min_th`).
    count: i64,
    /// When the queue last went idle, for average decay.
    idle_since: Option<SimTime>,
    rng: SimRng,
    stats: QueueStats,
    occupancy: Occupancy,
}

impl RedQueue {
    /// Creates a RED queue with the given parameters and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see [`RedParams`] fields).
    pub fn new(params: RedParams, seed: u64) -> Self {
        params.validate();
        RedQueue {
            buf: VecDeque::with_capacity(params.capacity),
            params,
            avg: 0.0,
            count: -1,
            idle_since: Some(SimTime::ZERO),
            rng: SimRng::derive(seed, 0xD20E), // fixed stream tag for RED draws
            stats: QueueStats::default(),
            occupancy: Occupancy::default(),
        }
    }

    /// The current average queue estimate, in packets.
    pub fn average(&self) -> f64 {
        self.avg
    }

    /// The configured parameters.
    pub fn params(&self) -> &RedParams {
        &self.params
    }

    /// Overrides the maximum early-drop probability (used by the
    /// self-configuring RED wrapper).
    ///
    /// # Panics
    ///
    /// Panics if `max_p` is outside `(0, 1]`.
    pub fn set_max_p(&mut self, max_p: f64) {
        assert!(
            max_p > 0.0 && max_p <= 1.0,
            "max_p must be in (0, 1], got {max_p}"
        );
        self.params.max_p = max_p;
    }

    fn update_average(&mut self, now: SimTime) {
        if let Some(idle_since) = self.idle_since {
            // Queue has been empty: decay the average as if `m` small
            // packets had been transmitted during the idle period.
            let idle = now.saturating_since(idle_since).as_secs_f64();
            let m = idle / self.params.mean_pkt_time_secs;
            self.avg *= (1.0 - self.params.weight).powf(m);
        } else {
            self.avg += self.params.weight * (self.buf.len() as f64 - self.avg);
        }
    }
}

impl Queue for RedQueue {
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> EnqueueOutcome {
        self.stats.arrivals += 1;
        self.update_average(now);

        let p = &self.params;
        if self.avg >= p.max_th {
            self.count = 0;
            self.stats.drops_forced += 1;
            return EnqueueOutcome::DroppedForced;
        }
        let mut pkt = pkt;
        if self.avg >= p.min_th {
            self.count += 1;
            let p_b = p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th);
            let denom = 1.0 - self.count as f64 * p_b;
            let p_a = if denom <= 0.0 { 1.0 } else { (p_b / denom).min(1.0) };
            if self.rng.chance(p_a) {
                self.count = 0;
                if p.ecn_marking && pkt.ecn.is_markable() {
                    // Signal congestion without losing the packet.
                    pkt.ecn = crate::packet::Ecn::CongestionExperienced;
                    self.stats.ecn_marks += 1;
                } else {
                    self.stats.drops_early += 1;
                    return EnqueueOutcome::DroppedEarly;
                }
            }
        } else {
            self.count = -1;
        }

        if self.buf.len() >= p.capacity {
            self.stats.drops_full += 1;
            return EnqueueOutcome::DroppedFull;
        }
        self.occupancy.advance(now, self.buf.len());
        self.buf.push_back(pkt);
        self.idle_since = None;
        self.stats.peak_len = self.stats.peak_len.max(self.buf.len());
        EnqueueOutcome::Accepted
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.occupancy.advance(now, self.buf.len());
        let pkt = self.buf.pop_front()?;
        self.stats.departures += 1;
        if self.buf.is_empty() {
            self.idle_since = Some(now);
        }
        Some(pkt)
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }

    fn occupancy(&self) -> Occupancy {
        self.occupancy
    }
}

/// Any of the built-in queueing disciplines, dispatched statically.
///
/// Every packet crossing a link pays one `enqueue` and one `dequeue`, which
/// makes the admission path the hottest per-packet code in the simulator.
/// A `Box<dyn Queue>` per link costs a pointer chase and a vtable call on
/// each of those operations and defeats inlining of the (tiny) drop-tail
/// fast path; the discipline set is closed, so each [`Link`](crate::Link)
/// stores this enum instead and the dispatch compiles to one branch.
///
/// `AnyQueue` also implements [`Queue`], so code written against the trait
/// (stats readers, property tests) keeps working unchanged.
#[derive(Debug)]
pub enum AnyQueue {
    /// Bounded FIFO that drops arrivals when full.
    DropTail(DropTailQueue),
    /// Random early detection (Floyd & Jacobson).
    Red(RedQueue),
    /// RED that re-tunes its own `max_p` (Feng et al.).
    AdaptiveRed(SelfConfiguringRed),
}

impl AnyQueue {
    /// Offers `pkt` to the queue at time `now`.
    #[inline]
    pub fn enqueue(&mut self, pkt: Packet, now: SimTime) -> EnqueueOutcome {
        match self {
            AnyQueue::DropTail(q) => Queue::enqueue(q, pkt, now),
            AnyQueue::Red(q) => Queue::enqueue(q, pkt, now),
            AnyQueue::AdaptiveRed(q) => Queue::enqueue(q, pkt, now),
        }
    }

    /// Removes the head-of-line packet for transmission.
    #[inline]
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        match self {
            AnyQueue::DropTail(q) => Queue::dequeue(q, now),
            AnyQueue::Red(q) => Queue::dequeue(q, now),
            AnyQueue::AdaptiveRed(q) => Queue::dequeue(q, now),
        }
    }

    /// Instantaneous backlog in packets.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            AnyQueue::DropTail(q) => Queue::len(q),
            AnyQueue::Red(q) => Queue::len(q),
            AnyQueue::AdaptiveRed(q) => Queue::len(q),
        }
    }

    /// True if no packet is waiting.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arrival/drop counters.
    pub fn stats(&self) -> QueueStats {
        match self {
            AnyQueue::DropTail(q) => Queue::stats(q),
            AnyQueue::Red(q) => Queue::stats(q),
            AnyQueue::AdaptiveRed(q) => Queue::stats(q),
        }
    }

    /// The occupancy integral (time-weighted backlog).
    pub fn occupancy(&self) -> Occupancy {
        match self {
            AnyQueue::DropTail(q) => Queue::occupancy(q),
            AnyQueue::Red(q) => Queue::occupancy(q),
            AnyQueue::AdaptiveRed(q) => Queue::occupancy(q),
        }
    }
}

impl Queue for AnyQueue {
    #[inline]
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> EnqueueOutcome {
        AnyQueue::enqueue(self, pkt, now)
    }

    #[inline]
    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        AnyQueue::dequeue(self, now)
    }

    #[inline]
    fn len(&self) -> usize {
        AnyQueue::len(self)
    }

    fn stats(&self) -> QueueStats {
        AnyQueue::stats(self)
    }

    fn occupancy(&self) -> Occupancy {
        AnyQueue::occupancy(self)
    }
}

impl From<DropTailQueue> for AnyQueue {
    fn from(q: DropTailQueue) -> Self {
        AnyQueue::DropTail(q)
    }
}

impl From<RedQueue> for AnyQueue {
    fn from(q: RedQueue) -> Self {
        AnyQueue::Red(q)
    }
}

impl From<SelfConfiguringRed> for AnyQueue {
    fn from(q: SelfConfiguringRed) -> Self {
        AnyQueue::AdaptiveRed(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId, NodeId, PacketKind};
    use tcpburst_des::SimDuration;

    fn pkt() -> Packet {
        Packet {
            flow: FlowId(0),
            kind: PacketKind::Datagram,
            size_bytes: 1000,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        }
    }

    fn red(min: f64, max: f64) -> RedQueue {
        RedQueue::new(
            RedParams {
                min_th: min,
                max_th: max,
                max_p: 0.1,
                weight: 0.5, // fast-tracking average for unit tests
                capacity: 100,
                mean_pkt_time_secs: 0.001,
                ecn_marking: false,
            },
            7,
        )
    }

    #[test]
    fn droptail_is_fifo() {
        let mut q = DropTailQueue::new(10);
        for i in 0..3u32 {
            let mut p = pkt();
            p.size_bytes = i + 1;
            q.enqueue(p, SimTime::ZERO);
        }
        let sizes: Vec<u32> = std::iter::from_fn(|| q.dequeue(SimTime::ZERO))
            .map(|p| p.size_bytes)
            .collect();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(q.stats().departures, 3);
    }

    #[test]
    fn droptail_drops_when_full_and_counts() {
        let mut q = DropTailQueue::new(2);
        assert!(!q.enqueue(pkt(), SimTime::ZERO).is_drop());
        assert!(!q.enqueue(pkt(), SimTime::ZERO).is_drop());
        assert!(q.enqueue(pkt(), SimTime::ZERO).is_drop());
        let s = q.stats();
        assert_eq!(s.arrivals, 3);
        assert_eq!(s.drops_full, 1);
        assert_eq!(s.peak_len, 2);
        assert!((s.loss_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn droptail_recovers_capacity_after_dequeue() {
        let mut q = DropTailQueue::new(1);
        q.enqueue(pkt(), SimTime::ZERO);
        assert!(q.enqueue(pkt(), SimTime::ZERO).is_drop());
        q.dequeue(SimTime::ZERO);
        assert_eq!(q.enqueue(pkt(), SimTime::ZERO), EnqueueOutcome::Accepted);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        DropTailQueue::new(0);
    }

    #[test]
    fn red_below_min_threshold_never_drops() {
        let mut q = red(5.0, 15.0);
        // Keep instantaneous queue at 0-1 packets: average stays below min.
        for i in 0..100u64 {
            let now = SimTime::from_millis(i);
            assert_eq!(q.enqueue(pkt(), now), EnqueueOutcome::Accepted);
            q.dequeue(now);
        }
        assert_eq!(q.stats().drops_total(), 0);
    }

    #[test]
    fn red_forced_drops_above_max_threshold() {
        let mut q = red(1.0, 5.0);
        // Fill without draining: the (fast) average climbs past max_th and
        // arrivals become forced drops.
        let mut saw_forced = false;
        for _ in 0..100 {
            if q.enqueue(pkt(), SimTime::from_secs(1)) == EnqueueOutcome::DroppedForced {
                saw_forced = true;
                break;
            }
        }
        assert!(saw_forced, "average never crossed max_th");
        assert!(q.average() >= 5.0);
    }

    #[test]
    fn red_early_drops_between_thresholds() {
        let mut q = red(2.0, 50.0);
        let mut early = 0;
        // Hold the queue around 10 packets: average sits in the RED band.
        for i in 0..2000u64 {
            let now = SimTime::from_millis(i);
            if q.len() > 10 {
                q.dequeue(now);
            }
            if q.enqueue(pkt(), now) == EnqueueOutcome::DroppedEarly {
                early += 1;
            }
        }
        assert!(early > 0, "no early drops in the RED band");
        assert_eq!(q.stats().drops_early, early);
    }

    #[test]
    fn red_average_decays_while_idle() {
        let mut q = red(5.0, 15.0);
        for _ in 0..20 {
            q.enqueue(pkt(), SimTime::ZERO);
        }
        let before = q.average();
        while q.dequeue(SimTime::from_millis(1)).is_some() {}
        // A long idle period then one arrival: the average must have decayed.
        q.enqueue(pkt(), SimTime::from_secs(10));
        assert!(q.average() < before * 0.1, "avg {} -> {}", before, q.average());
    }

    #[test]
    fn red_respects_physical_capacity() {
        let mut q = RedQueue::new(
            RedParams {
                min_th: 90.0,
                max_th: 95.0,
                max_p: 0.1,
                weight: 1e-9, // average stays ~0 so RED never fires
                capacity: 3,
                mean_pkt_time_secs: 0.001,
                ecn_marking: false,
            },
            1,
        );
        for _ in 0..3 {
            assert_eq!(q.enqueue(pkt(), SimTime::ZERO), EnqueueOutcome::Accepted);
        }
        assert_eq!(q.enqueue(pkt(), SimTime::ZERO), EnqueueOutcome::DroppedFull);
    }

    #[test]
    fn red_same_seed_is_deterministic() {
        let run = || {
            let mut q = red(2.0, 20.0);
            let mut outcomes = Vec::new();
            for i in 0..500u64 {
                let now = SimTime::ZERO + SimDuration::from_millis(i);
                if q.len() > 8 {
                    q.dequeue(now);
                }
                outcomes.push(q.enqueue(pkt(), now));
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "min_th < max_th")]
    fn red_inverted_thresholds_panic() {
        RedQueue::new(
            RedParams {
                min_th: 40.0,
                max_th: 10.0,
                ..RedParams::paper_defaults()
            },
            0,
        );
    }

    #[test]
    fn paper_defaults_match_design_doc() {
        let p = RedParams::paper_defaults();
        assert_eq!(p.min_th, 10.0);
        assert_eq!(p.max_th, 40.0);
        assert_eq!(p.capacity, 50);
        assert!(!p.ecn_marking);
    }

    fn ecn_pkt() -> Packet {
        Packet {
            ecn: Ecn::Capable,
            ..pkt()
        }
    }

    #[test]
    fn red_marks_ecn_capable_packets_instead_of_dropping() {
        let mut q = RedQueue::new(
            RedParams {
                min_th: 2.0,
                max_th: 50.0,
                max_p: 0.1,
                weight: 0.5,
                capacity: 100,
                mean_pkt_time_secs: 0.001,
                ecn_marking: true,
            },
            7,
        );
        for i in 0..2000u64 {
            let now = SimTime::from_millis(i);
            if q.len() > 10 {
                q.dequeue(now);
            }
            // ECN-capable packets are never early-dropped, only marked.
            assert_ne!(q.enqueue(ecn_pkt(), now), EnqueueOutcome::DroppedEarly);
        }
        let s = q.stats();
        assert!(s.ecn_marks > 0, "no CE marks in the RED band");
        assert_eq!(s.drops_early, 0);
        // Marked packets come out with the CE codepoint set.
        let mut saw_ce = false;
        while let Some(p) = q.dequeue(SimTime::from_secs(10)) {
            saw_ce |= p.ecn.is_ce();
        }
        assert!(saw_ce, "marked packets must carry CE");
    }

    #[test]
    fn red_marking_does_not_touch_non_capable_packets() {
        let mut q = RedQueue::new(
            RedParams {
                min_th: 2.0,
                max_th: 50.0,
                max_p: 0.1,
                weight: 0.5,
                capacity: 100,
                mean_pkt_time_secs: 0.001,
                ecn_marking: true,
            },
            7,
        );
        let mut early = 0;
        for i in 0..2000u64 {
            let now = SimTime::from_millis(i);
            if q.len() > 10 {
                q.dequeue(now);
            }
            if q.enqueue(pkt(), now) == EnqueueOutcome::DroppedEarly {
                early += 1;
            }
        }
        assert!(early > 0, "non-capable packets must still early-drop");
        assert_eq!(q.stats().ecn_marks, 0);
    }

    #[test]
    fn occupancy_tracks_time_weighted_average() {
        let mut q = DropTailQueue::new(10);
        // 2 packets held from t=0 to t=10s, then 1 packet to t=20s.
        q.enqueue(pkt(), SimTime::ZERO);
        q.enqueue(pkt(), SimTime::ZERO);
        q.dequeue(SimTime::from_secs(10));
        let avg = q.occupancy().average(SimTime::from_secs(20), q.len());
        assert!((avg - 1.5).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn occupancy_of_empty_queue_is_zero() {
        let q = DropTailQueue::new(10);
        assert_eq!(q.occupancy().average(SimTime::from_secs(5), 0), 0.0);
        assert_eq!(q.occupancy().average(SimTime::ZERO, 0), 0.0);
    }

    #[test]
    fn red_set_max_p_applies() {
        let mut q = red(2.0, 20.0);
        q.set_max_p(0.5);
        assert_eq!(q.params().max_p, 0.5);
    }

    #[test]
    #[should_panic(expected = "max_p must be in")]
    fn red_set_max_p_rejects_zero() {
        red(2.0, 20.0).set_max_p(0.0);
    }
}
