//! Deterministic fault-injection specifications.
//!
//! An [`Impairments`] value describes *what* to perturb — link flaps,
//! capacity and delay variation, wire corruption, background cross-traffic —
//! while the scenario layer above schedules the perturbations as ordinary
//! simulation events. Everything is seed-driven and executes in the event
//! queue's deterministic `(time, seq)` order, so impaired runs stay
//! bit-identical across worker counts and queue backends.
//!
//! The compact spec grammar (used by the `--impair` CLI flag) is a
//! comma-separated list of clauses:
//!
//! ```text
//! flap:3s/10s          down 3 s, then up 10 s, repeating (first outage
//!                      after one up interval)
//! cap:0.5/5s           bottleneck bandwidth toggles nominal <-> 0.5x
//!                      every 5 s
//! delay:2/5s           bottleneck propagation delay toggles nominal <-> 2x
//!                      every 5 s
//! corrupt:1e-5         per-hop wire corruption probability
//! cross:500/1500       background datagrams into the bottleneck queue:
//!                      Poisson 500 pkt/s of 1500-byte packets (bytes
//!                      optional, default 1500)
//! ```

use std::fmt;

use tcpburst_des::SimDuration;

use crate::packet::FlowId;

/// Flow id reserved for injected background cross-traffic. Never collides
/// with client flows, which are numbered from zero.
pub const CROSS_TRAFFIC_FLOW: FlowId = FlowId(u32::MAX);

/// A repeating link outage: `down` seconds dark, `up` seconds lit.
///
/// The link starts up; the first outage begins after one `up` interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// Length of each outage.
    pub down: SimDuration,
    /// Length of each lit interval between outages.
    pub up: SimDuration,
}

/// Periodic bottleneck-capacity variation: the rate toggles between nominal
/// and `nominal * factor` every `period`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityVariation {
    /// Multiplier applied during the degraded half-cycle (must be positive).
    pub factor: f64,
    /// Half-cycle length.
    pub period: SimDuration,
}

/// Periodic propagation-delay variation: the delay toggles between nominal
/// and `nominal * factor` every `period`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayVariation {
    /// Multiplier applied during the perturbed half-cycle (must be
    /// non-negative).
    pub factor: f64,
    /// Half-cycle length.
    pub period: SimDuration,
}

/// Background cross-traffic injected straight into the bottleneck queue:
/// Poisson datagram arrivals that compete with the measured flows for
/// buffer and bandwidth but carry no transport feedback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossTraffic {
    /// Mean arrival rate in packets per second (must be positive).
    pub rate_pps: f64,
    /// Size of each injected datagram.
    pub packet_bytes: u32,
}

/// A complete impairment schedule for one scenario.
///
/// The default ([`Impairments::NONE`]) disables everything; the scenario
/// layer schedules no impairment events at all for it, keeping the healthy
/// path zero-overhead.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Impairments {
    /// Repeating bottleneck outages.
    pub flap: Option<LinkFlap>,
    /// Periodic bottleneck-capacity variation.
    pub capacity: Option<CapacityVariation>,
    /// Periodic bottleneck-delay variation.
    pub delay: Option<DelayVariation>,
    /// Per-hop wire corruption probability on every link (0 = never).
    pub corrupt_prob: f64,
    /// Background cross-traffic at the bottleneck.
    pub cross: Option<CrossTraffic>,
}

impl Impairments {
    /// No impairments at all.
    pub const NONE: Impairments = Impairments {
        flap: None,
        capacity: None,
        delay: None,
        corrupt_prob: 0.0,
        cross: None,
    };

    /// True when nothing is impaired (the zero-overhead path).
    pub fn is_none(&self) -> bool {
        self.flap.is_none()
            && self.capacity.is_none()
            && self.delay.is_none()
            && self.corrupt_prob == 0.0
            && self.cross.is_none()
    }

    /// Parses the compact spec grammar (see the module docs), merging the
    /// clauses into a fresh schedule.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<Impairments, String> {
        let mut out = Impairments::NONE;
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once(':')
                .ok_or_else(|| format!("impairment clause `{clause}` needs `key:value`"))?;
            match key {
                "flap" => {
                    let (down, up) = split_pair(value, "flap")?;
                    out.flap = Some(LinkFlap {
                        down: parse_duration(down)?,
                        up: parse_duration(up)?,
                    });
                }
                "cap" => {
                    let (factor, period) = split_pair(value, "cap")?;
                    out.capacity = Some(CapacityVariation {
                        factor: parse_factor(factor)?,
                        period: parse_duration(period)?,
                    });
                }
                "delay" => {
                    let (factor, period) = split_pair(value, "delay")?;
                    out.delay = Some(DelayVariation {
                        factor: parse_factor(factor)?,
                        period: parse_duration(period)?,
                    });
                }
                "corrupt" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("corrupt probability `{value}` is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("corrupt probability {p} must be in [0, 1]"));
                    }
                    out.corrupt_prob = p;
                }
                "cross" => {
                    let (rate, bytes) = match value.split_once('/') {
                        Some((r, b)) => (r, Some(b)),
                        None => (value, None),
                    };
                    let rate_pps: f64 = rate
                        .parse()
                        .map_err(|_| format!("cross rate `{rate}` is not a number"))?;
                    if !(rate_pps > 0.0 && rate_pps.is_finite()) {
                        return Err(format!("cross rate {rate_pps} must be positive"));
                    }
                    let packet_bytes = match bytes {
                        Some(b) => b
                            .parse()
                            .map_err(|_| format!("cross packet size `{b}` is not an integer"))?,
                        None => 1500,
                    };
                    if packet_bytes == 0 {
                        return Err("cross packet size must be positive".into());
                    }
                    out.cross = Some(CrossTraffic { rate_pps, packet_bytes });
                }
                other => {
                    return Err(format!(
                        "unknown impairment `{other}` (expected flap, cap, delay, corrupt, cross)"
                    ))
                }
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// Checks the schedule for values the simulation cannot honor.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(f) = self.flap {
            if f.down.is_zero() || f.up.is_zero() {
                return Err("flap intervals must be positive".into());
            }
        }
        if let Some(c) = self.capacity {
            if !(c.factor > 0.0 && c.factor.is_finite()) {
                return Err(format!("capacity factor {} must be positive", c.factor));
            }
            if c.period.is_zero() {
                return Err("capacity period must be positive".into());
            }
        }
        if let Some(d) = self.delay {
            if !(d.factor >= 0.0 && d.factor.is_finite()) {
                return Err(format!("delay factor {} must be non-negative", d.factor));
            }
            if d.period.is_zero() {
                return Err("delay period must be positive".into());
            }
        }
        if !(0.0..=1.0).contains(&self.corrupt_prob) {
            return Err(format!(
                "corrupt probability {} must be in [0, 1]",
                self.corrupt_prob
            ));
        }
        if let Some(x) = self.cross {
            if !(x.rate_pps > 0.0 && x.rate_pps.is_finite()) {
                return Err(format!("cross rate {} must be positive", x.rate_pps));
            }
            if x.packet_bytes == 0 {
                return Err("cross packet size must be positive".into());
            }
        }
        Ok(())
    }
}

impl fmt::Display for Impairments {
    /// Round-trips through [`Impairments::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(flap) = self.flap {
            write!(
                f,
                "flap:{}/{}",
                fmt_duration(flap.down),
                fmt_duration(flap.up)
            )?;
            sep = ",";
        }
        if let Some(c) = self.capacity {
            write!(f, "{sep}cap:{}/{}", c.factor, fmt_duration(c.period))?;
            sep = ",";
        }
        if let Some(d) = self.delay {
            write!(f, "{sep}delay:{}/{}", d.factor, fmt_duration(d.period))?;
            sep = ",";
        }
        if self.corrupt_prob > 0.0 {
            write!(f, "{sep}corrupt:{}", self.corrupt_prob)?;
            sep = ",";
        }
        if let Some(x) = self.cross {
            write!(f, "{sep}cross:{}/{}", x.rate_pps, x.packet_bytes)?;
        }
        Ok(())
    }
}

fn split_pair<'a>(value: &'a str, key: &str) -> Result<(&'a str, &'a str), String> {
    value
        .split_once('/')
        .ok_or_else(|| format!("{key} clause needs `a/b`, got `{value}`"))
}

fn parse_factor(s: &str) -> Result<f64, String> {
    s.parse()
        .map_err(|_| format!("factor `{s}` is not a number"))
}

/// Parses `3s`, `250ms`, `1.5s`, `800us`, `44ns`.
fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let (number, scale_ns) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!("duration `{s}` needs a unit (ns, us, ms, s)"));
    };
    let v: f64 = number
        .parse()
        .map_err(|_| format!("duration `{s}` is not a number"))?;
    if !(v >= 0.0 && v.is_finite()) {
        return Err(format!("duration `{s}` must be non-negative and finite"));
    }
    Ok(SimDuration::from_nanos((v * scale_ns).round() as u64))
}

fn fmt_duration(d: SimDuration) -> String {
    let ns = d.as_nanos();
    if ns % 1_000_000_000 == 0 {
        format!("{}s", ns / 1_000_000_000)
    } else if ns % 1_000_000 == 0 {
        format!("{}ms", ns / 1_000_000)
    } else if ns % 1_000 == 0 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_none() {
        let i = Impairments::parse("").unwrap();
        assert!(i.is_none());
        assert_eq!(i, Impairments::NONE);
        assert_eq!(Impairments::default(), Impairments::NONE);
    }

    #[test]
    fn full_spec_parses() {
        let i = Impairments::parse("flap:3s/10s,corrupt:1e-5,cap:0.5/5s,delay:2/250ms,cross:500")
            .unwrap();
        assert_eq!(
            i.flap,
            Some(LinkFlap {
                down: SimDuration::from_secs(3),
                up: SimDuration::from_secs(10),
            })
        );
        assert_eq!(i.corrupt_prob, 1e-5);
        let cap = i.capacity.unwrap();
        assert_eq!(cap.factor, 0.5);
        assert_eq!(cap.period, SimDuration::from_secs(5));
        let delay = i.delay.unwrap();
        assert_eq!(delay.factor, 2.0);
        assert_eq!(delay.period, SimDuration::from_millis(250));
        let cross = i.cross.unwrap();
        assert_eq!(cross.rate_pps, 500.0);
        assert_eq!(cross.packet_bytes, 1500);
        assert!(!i.is_none());
    }

    #[test]
    fn fractional_and_small_durations() {
        let i = Impairments::parse("flap:1.5s/500ms").unwrap();
        let f = i.flap.unwrap();
        assert_eq!(f.down, SimDuration::from_millis(1500));
        assert_eq!(f.up, SimDuration::from_millis(500));
    }

    #[test]
    fn cross_takes_optional_packet_size() {
        let i = Impairments::parse("cross:100/576").unwrap();
        assert_eq!(i.cross.unwrap().packet_bytes, 576);
    }

    #[test]
    fn display_round_trips() {
        let spec = "flap:3s/10s,cap:0.5/5s,delay:2/5s,corrupt:0.00001,cross:500/1500";
        let i = Impairments::parse(spec).unwrap();
        let again = Impairments::parse(&i.to_string()).unwrap();
        assert_eq!(i, again);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(Impairments::parse("flap:3s").is_err());
        assert!(Impairments::parse("flap:0s/1s").is_err());
        assert!(Impairments::parse("corrupt:2.0").is_err());
        assert!(Impairments::parse("corrupt:x").is_err());
        assert!(Impairments::parse("cap:-1/5s").is_err());
        assert!(Impairments::parse("cross:0").is_err());
        assert!(Impairments::parse("warp:9").is_err());
        assert!(Impairments::parse("flap:3m/1s").is_err()); // no minutes unit
        assert!(Impairments::parse("flap").is_err());
    }

    #[test]
    fn cross_flow_never_collides_with_clients() {
        assert_eq!(CROSS_TRAFFIC_FLOW, FlowId(u32::MAX));
    }
}
