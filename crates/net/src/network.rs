//! The node/link arena, static routing, and packet forwarding.

use tcpburst_des::{Scheduler, SimDuration, SimRng};

use crate::link::Link;
use crate::packet::{LinkId, NodeId, Packet, PacketArena, PacketId};
use crate::queue::{AnyQueue, EnqueueOutcome};

/// Events the network schedules on the simulation loop.
///
/// The driving loop (in `tcpburst-core`) embeds these in its own event enum
/// via `From`; the network's methods are generic over that enum.
///
/// Both variants carry the link's up/down `epoch` at the instant
/// serialization started. A link going down bumps its epoch, so events
/// stamped before the outage arrive stale and the network discards them —
/// that is how "in-flight packets on a downed link are dropped" is
/// expressed without deleting interior queue entries (which the binary-heap
/// backend cannot do; lazy invalidation keeps both backends bit-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetEvent {
    /// A link finished serializing its current packet and may start the next.
    TxComplete {
        /// The transmitting link.
        link: LinkId,
        /// The link's epoch when serialization started.
        epoch: u32,
    },
    /// A packet reached the far end of a link.
    Delivery {
        /// The link the packet travelled on.
        link: LinkId,
        /// The link's epoch when serialization started.
        epoch: u32,
        /// Ticket for the in-flight packet, parked in the network's
        /// [`PacketArena`]. An 8-byte handle instead of the ~120-byte
        /// packet keeps event-queue entries small — the single biggest
        /// lever on calendar insert/pop cost. [`Network::on_delivery`]
        /// redeems it; [`Network::packet`] peeks without redeeming.
        packet: PacketId,
    },
}

/// Why a packet died on the wire rather than in a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireLoss {
    /// The link went down while the packet was in flight.
    LinkDown,
    /// Random wire corruption (the receiver discards the frame).
    Corrupted,
}

/// What became of a delivered packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivered {
    /// The packet reached its destination host; hand it to the transport
    /// layer.
    ToHost {
        /// The destination node.
        node: NodeId,
        /// The delivered packet.
        packet: Packet,
    },
    /// The packet hit a router and was offered to the next hop's queue
    /// (`outcome` says whether it was admitted or dropped there).
    Forwarded {
        /// The router that forwarded it.
        node: NodeId,
        /// The next-hop link it was offered to.
        via: LinkId,
        /// Queue admission result at the next hop.
        outcome: EnqueueOutcome,
    },
    /// The packet never made it across the link (fault injection).
    LostOnWire {
        /// The link it died on.
        link: LinkId,
        /// The lost packet.
        packet: Packet,
        /// What killed it.
        cause: WireLoss,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Host,
    Router,
}

/// Marks "no route" in the flat routing tables.
const NO_ROUTE: u32 = u32::MAX;

/// A static network: nodes, simplex links and per-node routing tables.
///
/// The network is deliberately mechanical — it admits packets to queues,
/// serializes them onto links, propagates them, and forwards at routers.
/// Everything protocol- or measurement-shaped lives above it.
///
/// # Example
///
/// ```
/// use tcpburst_des::{Scheduler, SimDuration, SimTime};
/// use tcpburst_net::{
///     Delivered, DropTailQueue, FlowId, NetEvent, Network, Packet, PacketKind,
/// };
///
/// let mut net = Network::new();
/// let a = net.add_host();
/// let b = net.add_host();
/// let ab = net.add_link(a, b, 1_000_000, SimDuration::from_millis(10),
///                       DropTailQueue::new(10));
/// net.set_route(a, b, ab);
///
/// let mut sched: Scheduler<NetEvent> = Scheduler::new();
/// let pkt = Packet { flow: FlowId(0), kind: PacketKind::Datagram, size_bytes: 1000,
///                    src: a, dst: b, created_at: SimTime::ZERO,
///                    ecn: tcpburst_net::Ecn::NotCapable };
/// net.inject(pkt, &mut sched);
///
/// let mut delivered = None;
/// while let Some((_, ev)) = sched.pop() {
///     match ev {
///         NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, &mut sched),
///         NetEvent::Delivery { link, epoch, packet } => {
///             delivered = Some(net.on_delivery(link, epoch, packet, &mut sched));
///         }
///     }
/// }
/// assert!(matches!(delivered, Some(Delivered::ToHost { node, .. }) if node == b));
/// // 8 ms serialization + 10 ms propagation:
/// assert_eq!(sched.now(), SimTime::from_millis(18));
/// ```
#[derive(Debug)]
pub struct Network {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    /// `routes[node][dst]` is the outgoing link id (or [`NO_ROUTE`]). A flat
    /// table instead of per-node hash maps: the lookup sits on the
    /// per-packet forwarding path, where array indexing beats hashing by an
    /// order of magnitude.
    routes: Vec<Vec<u32>>,
    /// Stream for wire-corruption draws, consumed in delivery order — the
    /// event queue's `(time, seq)` total order is identical on every
    /// backend, so the draws (and therefore the losses) are deterministic.
    wire_rng: SimRng,
    /// Packets in flight on some link, parked between `start_tx` and
    /// `on_delivery` so the `Delivery` event only carries a ticket.
    in_flight: PacketArena,
}

impl Default for Network {
    fn default() -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            routes: Vec::new(),
            wire_rng: SimRng::seed_from_u64(0),
            in_flight: PacketArena::new(),
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Reseeds the wire-corruption stream (call once at build time when any
    /// link has a nonzero corruption probability).
    pub fn set_wire_seed(&mut self, seed: u64) {
        self.wire_rng = SimRng::seed_from_u64(seed);
    }

    /// Takes `link` up or down.
    ///
    /// Going **down** bumps the link's epoch: the packet being serialized
    /// and every packet still propagating are lost (their events arrive
    /// stale and are discarded), while packets waiting in the admission
    /// queue survive the outage. Going **up** restarts the transmitter if
    /// anything is queued. Returns `true` if the state actually changed.
    pub fn set_link_up<E: From<NetEvent>>(
        &mut self,
        link: LinkId,
        up: bool,
        sched: &mut Scheduler<E>,
    ) -> bool {
        let l = &mut self.links[link.0 as usize];
        if l.is_up() == up {
            return false;
        }
        l.set_up(up);
        if up {
            self.start_tx(link, sched);
        }
        true
    }

    /// Adds an end host (packets addressed to it are delivered upward).
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    /// Adds a router (packets addressed elsewhere are forwarded).
    pub fn add_router(&mut self) -> NodeId {
        self.add_node(NodeKind::Router)
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.routes.push(Vec::new());
        id
    }

    /// Adds a simplex link and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or `bandwidth_bps` is zero.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        delay: SimDuration,
        queue: impl Into<AnyQueue>,
    ) -> LinkId {
        assert!((from.0 as usize) < self.nodes.len(), "unknown node {from:?}");
        assert!((to.0 as usize) < self.nodes.len(), "unknown node {to:?}");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(from, to, bandwidth_bps, delay, queue));
        id
    }

    /// Installs a route: at `node`, packets for `dst` leave via `via`.
    ///
    /// # Panics
    ///
    /// Panics if `via` does not originate at `node`.
    pub fn set_route(&mut self, node: NodeId, dst: NodeId, via: LinkId) {
        assert_eq!(
            self.link(via).from(),
            node,
            "route at {node:?} must use a link leaving it"
        );
        let table = &mut self.routes[node.0 as usize];
        if table.len() <= dst.0 as usize {
            table.resize(dst.0 as usize + 1, NO_ROUTE);
        }
        table[dst.0 as usize] = via.0;
    }

    /// Looks at a link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Looks at a link mutably (e.g. to read queue statistics).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of simplex links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Looks at an in-flight packet without consuming its ticket — for
    /// probes that classify a delivery before [`Network::on_delivery`]
    /// redeems it.
    ///
    /// # Panics
    ///
    /// Panics if the ticket is stale.
    #[inline]
    pub fn packet(&self, id: PacketId) -> &Packet {
        self.in_flight.get(id)
    }

    /// Number of packets currently in flight on links.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.live()
    }

    /// The outgoing link `node` uses to reach `dst`, if routed.
    #[inline]
    pub fn route(&self, node: NodeId, dst: NodeId) -> Option<LinkId> {
        match self.routes[node.0 as usize].get(dst.0 as usize) {
            Some(&via) if via != NO_ROUTE => Some(LinkId(via)),
            _ => None,
        }
    }

    /// Injects a locally generated packet at its source node, offering it to
    /// the first-hop queue.
    ///
    /// # Panics
    ///
    /// Panics if the source has no route to the destination — a mis-built
    /// topology is a programming error, not a runtime condition.
    pub fn inject<E: From<NetEvent>>(
        &mut self,
        packet: Packet,
        sched: &mut Scheduler<E>,
    ) -> EnqueueOutcome {
        let via = self
            .route(packet.src, packet.dst)
            .unwrap_or_else(|| panic!("no route from {:?} to {:?}", packet.src, packet.dst));
        self.send_on(via, packet, sched)
    }

    /// Offers `packet` to `link`'s queue and starts the transmitter if idle.
    pub fn send_on<E: From<NetEvent>>(
        &mut self,
        link: LinkId,
        packet: Packet,
        sched: &mut Scheduler<E>,
    ) -> EnqueueOutcome {
        let now = sched.now();
        let l = &mut self.links[link.0 as usize];
        let outcome = l.queue_mut().enqueue(packet, now);
        if outcome == EnqueueOutcome::Accepted && !l.is_busy() {
            self.start_tx(link, sched);
        }
        outcome
    }

    fn start_tx<E: From<NetEvent>>(&mut self, link: LinkId, sched: &mut Scheduler<E>) {
        let now = sched.now();
        let l = &mut self.links[link.0 as usize];
        if !l.is_up() {
            // A downed transmitter holds its queue; the link-up transition
            // restarts it.
            return;
        }
        match l.queue_mut().dequeue(now) {
            Some(pkt) => {
                l.set_busy(true);
                l.note_tx(&pkt);
                let epoch = l.epoch();
                let (done, arrive) = l.schedule_times(&pkt, now);
                let packet = self.in_flight.insert(pkt);
                sched.schedule_at(done, NetEvent::TxComplete { link, epoch }.into());
                sched.schedule_at(arrive, NetEvent::Delivery { link, epoch, packet }.into());
            }
            None => l.set_busy(false),
        }
    }

    /// Handles a [`NetEvent::TxComplete`]: the link pulls the next queued
    /// packet, if any. A stale `epoch` (the link went down after this
    /// serialization started) is ignored — the outage already idled the
    /// transmitter, and the up transition restarts it.
    pub fn on_tx_complete<E: From<NetEvent>>(
        &mut self,
        link: LinkId,
        epoch: u32,
        sched: &mut Scheduler<E>,
    ) {
        let l = &mut self.links[link.0 as usize];
        if epoch != l.epoch() {
            return;
        }
        l.set_busy(false);
        self.start_tx(link, sched);
    }

    /// Handles a [`NetEvent::Delivery`]: delivers to a host or forwards at a
    /// router.
    ///
    /// A stale `epoch` means the link went down while the packet was in
    /// flight: it is reported [`Delivered::LostOnWire`] with
    /// [`WireLoss::LinkDown`]. A link with a nonzero corruption probability
    /// then rolls the wire die; a corrupted packet is reported with
    /// [`WireLoss::Corrupted`].
    ///
    /// # Panics
    ///
    /// Panics if a router has no route for the packet's destination, or if
    /// the ticket is stale (every delivery — including losses — must redeem
    /// its ticket exactly once, or the arena would leak).
    pub fn on_delivery<E: From<NetEvent>>(
        &mut self,
        link: LinkId,
        epoch: u32,
        packet: PacketId,
        sched: &mut Scheduler<E>,
    ) -> Delivered {
        // Redeem unconditionally: even a stale-epoch or corrupted delivery
        // frees its arena slot, so the slab never leaks across outages.
        let packet = self.in_flight.take(packet);
        let l = &mut self.links[link.0 as usize];
        if epoch != l.epoch() {
            l.note_lost_in_flight();
            return Delivered::LostOnWire {
                link,
                packet,
                cause: WireLoss::LinkDown,
            };
        }
        let corrupt_prob = l.corrupt_prob();
        if corrupt_prob > 0.0 && self.wire_rng.uniform() < corrupt_prob {
            self.links[link.0 as usize].note_corrupted();
            return Delivered::LostOnWire {
                link,
                packet,
                cause: WireLoss::Corrupted,
            };
        }
        let l = &mut self.links[link.0 as usize];
        l.note_arrived();
        let node = l.to();
        match self.nodes[node.0 as usize] {
            NodeKind::Host => Delivered::ToHost { node, packet },
            NodeKind::Router => {
                let via = self.route(node, packet.dst).unwrap_or_else(|| {
                    panic!("router {node:?} has no route to {:?}", packet.dst)
                });
                let outcome = self.send_on(via, packet, sched);
                Delivered::Forwarded { node, via, outcome }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId, PacketKind};
    use crate::queue::DropTailQueue;
    use tcpburst_des::SimTime;

    fn pkt(src: NodeId, dst: NodeId) -> Packet {
        Packet {
            flow: FlowId(0),
            kind: PacketKind::Datagram,
            size_bytes: 1000,
            src,
            dst,
            created_at: SimTime::ZERO,
            ecn: Ecn::default(),
        }
    }

    fn dt(cap: usize) -> DropTailQueue {
        DropTailQueue::new(cap)
    }

    /// host A -> router R -> host B, both hops 1 Mbps / 1 ms.
    fn two_hop() -> (Network, NodeId, NodeId, LinkId, LinkId) {
        let mut net = Network::new();
        let a = net.add_host();
        let r = net.add_router();
        let b = net.add_host();
        let ar = net.add_link(a, r, 1_000_000, SimDuration::from_millis(1), dt(10));
        let rb = net.add_link(r, b, 1_000_000, SimDuration::from_millis(1), dt(10));
        net.set_route(a, b, ar);
        net.set_route(r, b, rb);
        (net, a, b, ar, rb)
    }

    fn drain(net: &mut Network, sched: &mut Scheduler<NetEvent>) -> Vec<(SimTime, Delivered)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = sched.pop() {
            match ev {
                NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, sched),
                NetEvent::Delivery { link, epoch, packet } => {
                    let d = net.on_delivery(link, epoch, packet, sched);
                    if matches!(d, Delivered::ToHost { .. }) {
                        out.push((t, d));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn packet_crosses_two_hops_with_correct_latency() {
        let (mut net, a, b, _, _) = two_hop();
        let mut sched = Scheduler::new();
        net.inject(pkt(a, b), &mut sched);
        let deliveries = drain(&mut net, &mut sched);
        assert_eq!(deliveries.len(), 1);
        // Each hop: 8 ms serialization + 1 ms propagation = 9 ms; two hops.
        assert_eq!(deliveries[0].0, SimTime::from_millis(18));
        match deliveries[0].1 {
            Delivered::ToHost { node, packet } => {
                assert_eq!(node, b);
                assert_eq!(packet.dst, b);
            }
            _ => panic!("expected host delivery"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize_not_parallelize() {
        let (mut net, a, b, _, _) = two_hop();
        let mut sched = Scheduler::new();
        for _ in 0..3 {
            net.inject(pkt(a, b), &mut sched);
        }
        let deliveries = drain(&mut net, &mut sched);
        let times: Vec<SimTime> = deliveries.iter().map(|&(t, _)| t).collect();
        // The pipe is rate-limited: arrivals are spaced by one serialization
        // time (8 ms), not delivered simultaneously.
        assert_eq!(
            times,
            vec![
                SimTime::from_millis(18),
                SimTime::from_millis(26),
                SimTime::from_millis(34)
            ]
        );
    }

    #[test]
    fn router_queue_drops_surface_in_outcome() {
        let mut net = Network::new();
        let a = net.add_host();
        let r = net.add_router();
        let b = net.add_host();
        // Fast ingress (so the burst lands at R together), slow egress with a
        // 1-packet queue.
        let ar = net.add_link(a, r, 100_000_000, SimDuration::from_millis(1), dt(100));
        let rb = net.add_link(r, b, 1_000_000, SimDuration::from_millis(1), dt(1));
        net.set_route(a, b, ar);
        net.set_route(r, b, rb);

        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        for _ in 0..5 {
            net.inject(pkt(a, b), &mut sched);
        }
        let mut drops = 0;
        let mut host_rx = 0;
        while let Some((_, ev)) = sched.pop() {
            match ev {
                NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, &mut sched),
                NetEvent::Delivery { link, epoch, packet } => {
                    match net.on_delivery(link, epoch, packet, &mut sched) {
                        Delivered::Forwarded { outcome, .. } if outcome.is_drop() => drops += 1,
                        Delivered::ToHost { .. } => host_rx += 1,
                        _ => {}
                    }
                }
            }
        }
        // 1 in service + 1 queued survive the burst; the rest drop.
        assert_eq!(host_rx, 2);
        assert_eq!(drops, 3);
        assert_eq!(net.link(rb).queue().stats().drops_full, 3);
    }

    #[test]
    fn full_duplex_directions_do_not_contend() {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(a, b, 1_000_000, SimDuration::from_millis(1), dt(10));
        let ba = net.add_link(b, a, 1_000_000, SimDuration::from_millis(1), dt(10));
        net.set_route(a, b, ab);
        net.set_route(b, a, ba);
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        net.inject(pkt(a, b), &mut sched);
        net.inject(pkt(b, a), &mut sched);
        let deliveries = drain(&mut net, &mut sched);
        // Both arrive at 9 ms: opposite directions are independent pipes.
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|&(t, _)| t == SimTime::from_millis(9)));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        net.inject(pkt(a, b), &mut sched);
    }

    #[test]
    #[should_panic(expected = "must use a link leaving it")]
    fn route_via_foreign_link_panics() {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let c = net.add_host();
        let bc = net.add_link(b, c, 1_000_000, SimDuration::from_millis(1), dt(1));
        net.set_route(a, c, bc);
    }

    /// Flap driver: the up/down transitions ride the same event queue as
    /// the network events, exactly as `tcpburst-core` schedules them.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum FlapEv {
        Net(NetEvent),
        Down,
        Up,
    }

    impl From<NetEvent> for FlapEv {
        fn from(ev: NetEvent) -> Self {
            FlapEv::Net(ev)
        }
    }

    #[test]
    fn downed_link_drops_in_flight_but_keeps_queued() {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        // 1 Mbps: a 1000-byte packet serializes in 8 ms.
        let ab = net.add_link(a, b, 1_000_000, SimDuration::from_millis(1), dt(10));
        net.set_route(a, b, ab);
        let mut sched: Scheduler<FlapEv> = Scheduler::new();
        // Three packets: one in service, two queued.
        for _ in 0..3 {
            net.inject(pkt(a, b), &mut sched);
        }
        // Down at 4 ms (mid-serialization of the first), up at 20 ms.
        sched.schedule_at(SimTime::from_millis(4), FlapEv::Down);
        sched.schedule_at(SimTime::from_millis(20), FlapEv::Up);
        let mut lost = Vec::new();
        let mut arrived = Vec::new();
        while let Some((t, ev)) = sched.pop() {
            match ev {
                FlapEv::Down => {
                    assert!(net.set_link_up(ab, false, &mut sched));
                }
                FlapEv::Up => {
                    assert!(net.set_link_up(ab, true, &mut sched));
                }
                FlapEv::Net(NetEvent::TxComplete { link, epoch }) => {
                    net.on_tx_complete(link, epoch, &mut sched)
                }
                FlapEv::Net(NetEvent::Delivery { link, epoch, packet }) => {
                    match net.on_delivery(link, epoch, packet, &mut sched) {
                        Delivered::ToHost { .. } => arrived.push(t),
                        Delivered::LostOnWire { cause, .. } => lost.push(cause),
                        Delivered::Forwarded { .. } => unreachable!("no routers here"),
                    }
                }
            }
        }
        // The in-service packet is lost; the two queued ones survive the
        // outage and go out back-to-back after the link returns.
        assert_eq!(lost, vec![WireLoss::LinkDown]);
        assert_eq!(net.link(ab).stats().lost_in_flight, 1);
        // up at 20 ms + 8 ms serialization + 1 ms propagation = 29 ms.
        assert_eq!(
            arrived,
            vec![SimTime::from_millis(29), SimTime::from_millis(37)]
        );
    }

    #[test]
    fn downed_link_queues_new_arrivals_without_transmitting() {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(a, b, 1_000_000, SimDuration::from_millis(1), dt(10));
        net.set_route(a, b, ab);
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        net.set_link_up(ab, false, &mut sched);
        net.inject(pkt(a, b), &mut sched);
        // Nothing scheduled: the transmitter is down, the packet waits.
        assert_eq!(sched.pending(), 0);
        assert_eq!(net.link(ab).queue().len(), 1);
        net.set_link_up(ab, true, &mut sched);
        let deliveries = drain(&mut net, &mut sched);
        assert_eq!(deliveries.len(), 1);
    }

    #[test]
    fn corruption_probability_one_kills_every_packet() {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(a, b, 1_000_000, SimDuration::from_millis(1), dt(10));
        net.set_route(a, b, ab);
        net.link_mut(ab).set_corrupt_prob(1.0);
        net.set_wire_seed(7);
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        for _ in 0..5 {
            net.inject(pkt(a, b), &mut sched);
        }
        let mut corrupted = 0;
        while let Some((_, ev)) = sched.pop() {
            match ev {
                NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, &mut sched),
                NetEvent::Delivery { link, epoch, packet } => {
                    match net.on_delivery(link, epoch, packet, &mut sched) {
                        Delivered::LostOnWire { cause: WireLoss::Corrupted, .. } => corrupted += 1,
                        other => panic!("expected corruption, got {other:?}"),
                    }
                }
            }
        }
        assert_eq!(corrupted, 5);
        assert_eq!(net.link(ab).stats().corrupted, 5);
        // Corrupted frames never count as arrived; the wire identity
        // tx = arrived + corrupted + lost_in_flight still closes.
        assert_eq!(net.link(ab).stats().arrived, 0);
        assert_eq!(net.link(ab).stats().packets_tx, 5);
    }

    #[test]
    fn link_stats_count_transmissions() {
        let (mut net, a, b, ar, rb) = two_hop();
        let mut sched = Scheduler::new();
        net.inject(pkt(a, b), &mut sched);
        drain(&mut net, &mut sched);
        assert_eq!(net.link(ar).stats().packets_tx, 1);
        assert_eq!(net.link(rb).stats().packets_tx, 1);
        assert_eq!(net.link(rb).stats().bytes_tx, 1000);
        assert_eq!(net.link(ar).stats().arrived, 1);
        assert_eq!(net.link(rb).stats().arrived, 1);
    }

    #[test]
    fn arena_drains_even_through_outages_and_corruption() {
        // Every delivery path — clean, stale-epoch, corrupted — must redeem
        // its ticket, so a drained scheduler leaves zero packets in flight.
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(a, b, 1_000_000, SimDuration::from_millis(1), dt(10));
        net.set_route(a, b, ab);
        net.link_mut(ab).set_corrupt_prob(0.5);
        net.set_wire_seed(11);
        let mut sched: Scheduler<FlapEv> = Scheduler::new();
        for _ in 0..6 {
            net.inject(pkt(a, b), &mut sched);
        }
        sched.schedule_at(SimTime::from_millis(4), FlapEv::Down);
        sched.schedule_at(SimTime::from_millis(20), FlapEv::Up);
        while let Some((_, ev)) = sched.pop() {
            match ev {
                FlapEv::Down => {
                    net.set_link_up(ab, false, &mut sched);
                }
                FlapEv::Up => {
                    net.set_link_up(ab, true, &mut sched);
                }
                FlapEv::Net(NetEvent::TxComplete { link, epoch }) => {
                    net.on_tx_complete(link, epoch, &mut sched)
                }
                FlapEv::Net(NetEvent::Delivery { link, epoch, packet }) => {
                    net.on_delivery(link, epoch, packet, &mut sched);
                }
            }
        }
        assert_eq!(net.in_flight_count(), 0);
        // One slot for normal stop-and-wait flight, plus one while the
        // casualty's stale ticket overlaps the post-recovery transmission.
        assert_eq!(net.in_flight.capacity(), 2);
    }
}
