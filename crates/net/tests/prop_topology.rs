//! Property tests of the generic topology layer: every generated
//! [`TopologySpec`] yields mutually reachable flow endpoints and loop-free
//! route tables (walks bounded by the node count).

use proptest::prelude::*;
use tcpburst_net::{route_path_len, BuiltTopology, DumbbellConfig, QueueSpec, TopologySpec};

/// Builds one spec from a flat parameter draw; `shape` selects the family,
/// the in-tree proptest subset has no tuple strategies to compose with.
#[allow(clippy::too_many_arguments)]
fn spec_from(
    shape: usize,
    seed: u64,
    buf: usize,
    n: usize,
    spread: f64,
    hops: usize,
    flows_per_hop: usize,
    fanin: usize,
    nodes: usize,
    alpha: f64,
    beta: f64,
) -> TopologySpec {
    let base = DumbbellConfig {
        gateway_queue: QueueSpec::DropTail { capacity: buf },
        seed,
        ..DumbbellConfig::paper(4)
    };
    match shape {
        0 => {
            let mut b = base;
            b.num_clients = n;
            b.client_delay_spread = spread;
            TopologySpec::Dumbbell(b)
        }
        1 => TopologySpec::ParkingLot { base, hops, flows_per_hop },
        2 => TopologySpec::Incast { base, fanin },
        _ => TopologySpec::Waxman { base, nodes, alpha, beta },
    }
}

/// Walk bound: a loop-free route visits each node at most once.
fn assert_routable(built: &BuiltTopology) {
    let bound = built.network.node_count();
    for ep in &built.flows {
        let fwd = route_path_len(&built.network, ep.src, ep.dst);
        let back = route_path_len(&built.network, ep.dst, ep.src);
        assert!(
            fwd.is_some_and(|h| h <= bound),
            "no loop-free forward path {:?} -> {:?} (got {fwd:?})",
            ep.src,
            ep.dst
        );
        assert!(
            back.is_some_and(|h| h <= bound),
            "no loop-free return path {:?} -> {:?} (got {back:?})",
            ep.dst,
            ep.src
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every flow the spec declares is mutually reachable over the computed
    /// route tables, with loop-free paths bounded by the node count; the
    /// spec's instrumented handles point at real links and the
    /// cross-traffic pair is routable too.
    #[test]
    fn flows_are_mutually_reachable_and_loop_free(
        shape in 0usize..4,
        seed in any::<u64>(),
        buf in 4usize..200,
        n in 1usize..30,
        spread in 0.0f64..0.9,
        hops in 1usize..8,
        flows_per_hop in 1usize..6,
        fanin in 1usize..40,
        nodes in 2usize..16,
        alpha in 0.1f64..1.0,
        beta in 0.1f64..1.0,
    ) {
        let spec = spec_from(
            shape, seed, buf, n, spread, hops, flows_per_hop, fanin, nodes, alpha, beta,
        );
        let built = spec.build().expect("generated spec builds");
        prop_assert_eq!(built.flows.len(), spec.num_flows());
        assert_routable(&built);

        let links = built.network.link_count() as u32;
        for &hop in &built.hops {
            prop_assert!(hop.0 < links, "hop {:?} out of range", hop);
        }
        prop_assert!(built.bottleneck.0 < links);
        prop_assert!(built.impair_link.0 < links);
        let cross = route_path_len(&built.network, built.cross_src, built.cross_dst);
        prop_assert!(cross.is_some(), "cross-traffic path missing");
    }

    /// Building the same spec twice yields identical wiring: same node and
    /// link counts, flows and instrumented path (seeded determinism).
    #[test]
    fn builds_are_deterministic(
        shape in 0usize..4,
        seed in any::<u64>(),
        buf in 4usize..200,
        n in 1usize..30,
        spread in 0.0f64..0.9,
        hops in 1usize..8,
        flows_per_hop in 1usize..6,
        fanin in 1usize..40,
        nodes in 2usize..16,
        alpha in 0.1f64..1.0,
        beta in 0.1f64..1.0,
    ) {
        let spec = spec_from(
            shape, seed, buf, n, spread, hops, flows_per_hop, fanin, nodes, alpha, beta,
        );
        let a = spec.build().expect("builds");
        let b = spec.build().expect("builds again");
        prop_assert_eq!(a.network.node_count(), b.network.node_count());
        prop_assert_eq!(a.network.link_count(), b.network.link_count());
        prop_assert_eq!(a.flows, b.flows);
        prop_assert_eq!(a.hops, b.hops);
        prop_assert_eq!(a.bottleneck, b.bottleneck);
    }
}
