//! Property tests of the network substrate: arbitrary dumbbells stay
//! routable, link timing is exact, and queues conserve packets.

use proptest::prelude::*;
use tcpburst_des::{Scheduler, SimDuration, SimTime};
use tcpburst_net::{
    Delivered, DropTailQueue, Dumbbell, DumbbellConfig, Ecn, FlowId, NetEvent, Packet,
    PacketKind, Queue, QueueSpec, RedParams, RedQueue,
};

fn pkt(src: tcpburst_net::NodeId, dst: tcpburst_net::NodeId, bytes: u32) -> Packet {
    Packet {
        flow: FlowId(0),
        kind: PacketKind::Datagram,
        size_bytes: bytes,
        src,
        dst,
        created_at: SimTime::ZERO,
        ecn: Ecn::NotCapable,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any dumbbell: every client can reach the server and the packet's
    /// arrival time equals the analytic two-hop store-and-forward latency.
    #[test]
    fn dumbbell_latency_matches_analysis(
        clients in 1usize..20,
        client_mbps in 1u64..200,
        bottleneck_mbps in 1u64..200,
        client_delay_us in 100u64..10_000,
        bottleneck_delay_us in 100u64..50_000,
        bytes in 40u32..9_000,
    ) {
        let cfg = DumbbellConfig {
            num_clients: clients,
            client_bandwidth_bps: client_mbps * 1_000_000,
            client_delay: SimDuration::from_micros(client_delay_us),
            client_delay_spread: 0.0,
            bottleneck_bandwidth_bps: bottleneck_mbps * 1_000_000,
            bottleneck_delay: SimDuration::from_micros(bottleneck_delay_us),
            gateway_queue: QueueSpec::DropTail { capacity: 50 },
            access_queue_capacity: 100,
            seed: 0,
        };
        let db = Dumbbell::build(&cfg);
        let mut net = db.network;
        let mut sched: Scheduler<NetEvent> = Scheduler::new();
        let p = pkt(db.clients[0], db.server, bytes);
        net.inject(p, &mut sched);
        let mut arrival = None;
        while let Some((t, ev)) = sched.pop() {
            match ev {
                NetEvent::TxComplete { link, epoch } => net.on_tx_complete(link, epoch, &mut sched),
                NetEvent::Delivery { link, epoch, packet } => {
                    if let Delivered::ToHost { node, .. } =
                        net.on_delivery(link, epoch, packet, &mut sched)
                    {
                        prop_assert_eq!(node, db.server);
                        arrival = Some(t);
                    }
                }
            }
        }
        let arrival = arrival.expect("packet reached the server");
        let bits = u64::from(bytes) * 8;
        let tx1 = net.link(db.uplinks[0]).tx_time(bits);
        let tx2 = net.link(db.bottleneck).tx_time(bits);
        let expected = SimTime::ZERO + tx1 + cfg.client_delay + tx2 + cfg.bottleneck_delay;
        prop_assert_eq!(arrival, expected);
    }

    /// Drop-tail conservation: arrivals = departures + drops + residue, and
    /// the residue never exceeds capacity.
    #[test]
    fn droptail_conserves_packets(
        capacity in 1usize..64,
        ops in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let mut q = DropTailQueue::new(capacity);
        let a = tcpburst_net::NodeId(0);
        let b = tcpburst_net::NodeId(1);
        for (i, &enq) in ops.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            if enq {
                q.enqueue(pkt(a, b, 1000), now);
            } else {
                q.dequeue(now);
            }
            prop_assert!(q.len() <= capacity);
        }
        let s = q.stats();
        prop_assert_eq!(s.arrivals, s.departures + s.drops_total() + q.len() as u64);
        prop_assert!(s.peak_len <= capacity);
    }

    /// RED conservation under arbitrary interleavings, plus: the average
    /// queue estimate stays within [0, capacity].
    #[test]
    fn red_conserves_packets_and_bounds_average(
        ops in proptest::collection::vec(any::<bool>(), 1..500),
        seed in any::<u64>(),
    ) {
        let mut q = RedQueue::new(RedParams {
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            weight: 0.02,
            capacity: 30,
            mean_pkt_time_secs: 0.001,
            ecn_marking: false,
        }, seed);
        let a = tcpburst_net::NodeId(0);
        let b = tcpburst_net::NodeId(1);
        for (i, &enq) in ops.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            if enq {
                q.enqueue(pkt(a, b, 1000), now);
            } else {
                q.dequeue(now);
            }
            prop_assert!(q.len() <= 30);
            prop_assert!(q.average() >= 0.0);
            prop_assert!(q.average() <= 30.0 + 1e-9, "avg {}", q.average());
        }
        let s = q.stats();
        prop_assert_eq!(s.arrivals, s.departures + s.drops_total() + q.len() as u64);
    }

    /// FIFO service order survives arbitrary enqueue/dequeue interleaving.
    #[test]
    fn droptail_is_fifo_under_interleaving(
        ops in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut q = DropTailQueue::new(1000); // no drops: pure order check
        let a = tcpburst_net::NodeId(0);
        let b = tcpburst_net::NodeId(1);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        for (i, &enq) in ops.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            if enq {
                let mut p = pkt(a, b, 1000);
                p.size_bytes = next_in + 1; // tag with insertion index
                q.enqueue(p, now);
                next_in += 1;
            } else if let Some(p) = q.dequeue(now) {
                prop_assert_eq!(p.size_bytes, next_out + 1, "service out of order");
                next_out += 1;
            }
        }
    }
}
