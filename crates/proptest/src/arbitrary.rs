//! `any::<T>()` for the primitive types the workspace tests draw.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain generation strategy.
pub trait Arbitrary {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy covering the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::from_seed(3);
        let s = any::<u64>();
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_seed(4);
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.sample(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
