//! A minimal, dependency-free subset of the `proptest` API.
//!
//! This crate lets the workspace's property tests compile and run without
//! registry access. It keeps the *call-site* syntax of the real proptest —
//! `proptest! { #[test] fn f(x in 0u64..10) { prop_assert!(...) } }` — but
//! replaces the engine with a deterministic xoshiro256++ case generator and
//! drops shrinking. See `README.md` for the exact supported surface and the
//! differences from the real crate.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property test usually imports.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, OneOf, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fails the current test case with a formatted message unless `cond` holds.
///
/// Expands to an early `return Err(TestCaseError)` inside the case closure,
/// mirroring the real proptest's control flow (so `prop_assert!` works in
/// helper functions returning `Result<(), TestCaseError>` too).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            "assertion failed: {} at {}:{}",
            stringify!($cond),
            file!(),
            line!()
        )
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`) at {}:{}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            file!(),
            line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: left `{:?}` != right `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Skips the current case (counted as a rejection) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks one of several strategies (all yielding the same value type) with
/// equal probability. Weighted variants of the real macro are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(...)]` header followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items (doc comments and
/// extra attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&$config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
