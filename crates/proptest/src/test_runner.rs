//! The case generator and runner behind the `proptest!` macro.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default seed for the deterministic case stream. Override with the
/// `PROPTEST_SHIM_SEED` environment variable to explore other streams.
const DEFAULT_SEED: u64 = 0x1CDC_2000_D5E5_7E57;

/// Why a test case did not pass: a genuine failure or a rejected assumption.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case violated an assertion.
    Fail(String),
    /// The case did not meet a `prop_assume!` precondition; it is skipped
    /// rather than counted as a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail<M: Into<String>>(reason: M) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject<M: Into<String>>(reason: M) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration. Only the knobs this workspace uses are modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic random source strategies draw from: xoshiro256++
/// seeded through SplitMix64 (the generator family's recommended
/// initialization).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// An RNG whose stream is fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        TestRng {
            s: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// An unbiased uniform draw in `[0, n)` (Lemire's multiply-shift with
    /// rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SHIM_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SHIM_SEED must be a u64, got {v:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// FNV-1a over the test name, so every test gets its own case stream even
/// under one base seed.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives `case` for the configured number of cases, panicking (like a
/// normal failed `#[test]`) on the first failing case with enough context
/// to reproduce it.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = base_seed() ^ name_hash(name);
    let mut rng = TestRng::from_seed(seed);
    let mut rejected: u32 = 0;
    let mut index: u32 = 0;
    while index < config.cases {
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => index += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(16).max(1024),
                    "proptest shim: {name} rejected too many cases ({rejected})"
                );
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!(
                    "proptest shim: {name} failed at case {index}/{} (base seed {seed:#x}): \
                     {reason}",
                    config.cases
                );
            }
            Err(panic_payload) => {
                eprintln!(
                    "proptest shim: {name} panicked at case {index}/{} (base seed {seed:#x})",
                    config.cases
                );
                resume_unwind(panic_payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..128 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::from_seed(1);
        for n in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn run_cases_completes_on_success() {
        let mut count = 0;
        run_cases(&ProptestConfig::with_cases(10), "ok", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_cases_reports_failures() {
        run_cases(&ProptestConfig::with_cases(3), "boom_test", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejections_do_not_fail_but_are_bounded() {
        let mut flip = false;
        run_cases(&ProptestConfig::with_cases(5), "rejecting", |_| {
            flip = !flip;
            if flip {
                Err(TestCaseError::reject("skip"))
            } else {
                Ok(())
            }
        });
    }
}
