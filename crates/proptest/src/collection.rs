//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let len = self.len.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for vectors whose length is drawn from `len` and whose
/// elements are drawn from `element`.
///
/// # Panics
///
/// Panics at sampling time if `len` is empty.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(Just(1u8), 2..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn empty_vectors_are_reachable() {
        let mut rng = TestRng::from_seed(6);
        let s = vec(Just(0u8), 0..3);
        assert!((0..500).any(|_| s.sample(&mut rng).is_empty()));
    }
}
