//! Value-generation strategies: ranges, constants, mapping, unions.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for every generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

trait SampleDyn<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> SampleDyn<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn SampleDyn<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// An equal-probability union of strategies (built by `prop_oneof!`).
#[derive(Debug)]
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut r);
            assert!((10..20).contains(&v));
            let w = (-5i32..5).sample(&mut r);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_ends() {
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(0u8..=2).sample(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (-1.5f64..2.5).sample(&mut r);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn just_and_map_compose() {
        let mut r = rng();
        let s = Just(7u64).prop_map(|x| x * 2);
        assert_eq!(s.sample(&mut r), 14);
    }

    #[test]
    fn oneof_uses_every_option() {
        let mut r = rng();
        let union = OneOf::new(vec![Just(0u8).boxed(), Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[union.sample(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
