//! The per-RTT arrival-count probe.

use tcpburst_des::{SimDuration, SimTime};

use crate::running::RunningStats;

/// Counts events in consecutive fixed-width virtual-time bins.
///
/// This is the paper's measurement instrument: it sits at the gateway and
/// counts data-packet arrivals in bins one round-trip propagation delay wide;
/// the coefficient of variation of those counts is the burstiness metric of
/// Figure 2. Bins with zero arrivals count — an idle RTT is a real
/// observation, and skipping it would bias the c.o.v. down.
///
/// Events must be recorded in non-decreasing time order (they come from a
/// discrete-event loop, so they are).
///
/// # Example
///
/// ```
/// use tcpburst_des::{SimDuration, SimTime};
/// use tcpburst_stats::BinnedCounter;
///
/// let mut probe = BinnedCounter::new(SimDuration::from_millis(44));
/// probe.record(SimTime::from_millis(10));   // bin 0
/// probe.record(SimTime::from_millis(50));   // bin 1
/// probe.record(SimTime::from_millis(60));   // bin 1
/// let counts = probe.finish(SimTime::from_millis(132)); // 3 full bins
/// assert_eq!(counts.counts(), &[1, 2, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct BinnedCounter {
    bin: SimDuration,
    origin: SimTime,
    current_bin: u64,
    current_count: u64,
    counts: Vec<u64>,
    total: u64,
}

/// The finished observation series produced by [`BinnedCounter::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct BinCounts {
    counts: Vec<u64>,
    bin: SimDuration,
}

impl BinnedCounter {
    /// Creates a counter with bins of width `bin`, starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: SimDuration) -> Self {
        Self::starting_at(SimTime::ZERO, bin)
    }

    /// Creates a counter whose first bin begins at `origin` (events before
    /// `origin` — e.g. a warm-up interval — are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn starting_at(origin: SimTime, bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "bin width must be positive");
        BinnedCounter {
            bin,
            origin,
            current_bin: 0,
            current_count: 0,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Total events recorded (including those still in the open bin).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one event at time `t`.
    ///
    /// Events earlier than the origin are ignored; events earlier than the
    /// currently open bin are counted into it (cannot happen when fed from a
    /// monotonic event loop, but is tolerated rather than panicking).
    pub fn record(&mut self, t: SimTime) {
        let Some(since) = t.checked_since(self.origin) else {
            return;
        };
        let idx = since / self.bin;
        if idx > self.current_bin {
            self.flush_through(idx);
        }
        self.current_count += 1;
        self.total += 1;
    }

    fn flush_through(&mut self, idx: u64) {
        self.counts.push(self.current_count);
        self.current_count = 0;
        // Empty bins between the last event and this one are observations too.
        for _ in (self.current_bin + 1)..idx {
            self.counts.push(0);
        }
        self.current_bin = idx;
    }

    /// Closes the series at `end`, returning counts for every *complete* bin
    /// in `[origin, end)`. The final partial bin, if any, is discarded so a
    /// short tail does not read as a spuriously quiet RTT.
    pub fn finish(mut self, end: SimTime) -> BinCounts {
        let complete = end.saturating_since(self.origin) / self.bin;
        if complete > self.current_bin {
            self.flush_through(complete);
        }
        self.counts.truncate(complete as usize);
        BinCounts {
            counts: self.counts,
            bin: self.bin,
        }
    }
}

impl BinCounts {
    /// Reassembles a finished series from its raw parts — the inverse of
    /// [`BinCounts::counts`] + [`BinCounts::bin_width`], used when a series
    /// is reloaded from a persisted result-store entry.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn from_raw(counts: Vec<u64>, bin: SimDuration) -> BinCounts {
        assert!(!bin.is_zero(), "bin width must be positive");
        BinCounts { counts, bin }
    }

    /// The per-bin event counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of complete bins observed.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no complete bin was observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The bin width the counts were taken with.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Streaming moments of the counts.
    pub fn stats(&self) -> RunningStats {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Coefficient of variation of the per-bin counts — the paper's
    /// burstiness metric.
    pub fn cov(&self) -> f64 {
        self.stats().cov()
    }

    /// The counts as `f64`s, for the Hurst estimators.
    pub fn to_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(ms: u64) -> BinnedCounter {
        BinnedCounter::new(SimDuration::from_millis(ms))
    }

    #[test]
    fn counts_land_in_correct_bins() {
        let mut p = probe(10);
        for &ms in &[0u64, 5, 9, 10, 25, 25, 39] {
            p.record(SimTime::from_millis(ms));
        }
        let c = p.finish(SimTime::from_millis(40));
        assert_eq!(c.counts(), &[3, 1, 2, 1]);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn empty_bins_are_observations() {
        let mut p = probe(10);
        p.record(SimTime::from_millis(1));
        p.record(SimTime::from_millis(45));
        let c = p.finish(SimTime::from_millis(50));
        assert_eq!(c.counts(), &[1, 0, 0, 0, 1]);
    }

    #[test]
    fn partial_final_bin_is_discarded() {
        let mut p = probe(10);
        p.record(SimTime::from_millis(1));
        p.record(SimTime::from_millis(12));
        // End mid-way through bin 1: only bin 0 is complete.
        let c = p.finish(SimTime::from_millis(15));
        assert_eq!(c.counts(), &[1]);
    }

    #[test]
    fn events_before_origin_are_warmup() {
        let mut p = BinnedCounter::starting_at(
            SimTime::from_millis(100),
            SimDuration::from_millis(10),
        );
        p.record(SimTime::from_millis(50)); // warm-up, ignored
        p.record(SimTime::from_millis(105));
        let c = p.finish(SimTime::from_millis(120));
        assert_eq!(c.counts(), &[1, 0]);
        assert_eq!(c.stats().count(), 2);
    }

    #[test]
    fn deterministic_arrivals_have_zero_cov() {
        let mut p = probe(10);
        for bin in 0..100u64 {
            for k in 0..5u64 {
                p.record(SimTime::from_millis(bin * 10 + k));
            }
        }
        let c = p.finish(SimTime::from_millis(1000));
        assert_eq!(c.cov(), 0.0);
        assert_eq!(c.stats().mean(), 5.0);
    }

    #[test]
    fn bursty_arrivals_have_higher_cov_than_smooth() {
        // Same total packets, two shapes: all in every 10th bin vs uniform.
        let mut bursty = probe(10);
        let mut smooth = probe(10);
        for bin in 0..100u64 {
            if bin % 10 == 0 {
                for k in 0..10u64 {
                    bursty.record(SimTime::from_millis(bin * 10 + k.min(9)));
                }
            }
            smooth.record(SimTime::from_millis(bin * 10));
        }
        let end = SimTime::from_millis(1000);
        assert!(bursty.finish(end).cov() > smooth.finish(end).cov());
    }

    #[test]
    fn no_events_yields_zero_bins_before_end() {
        let p = probe(10);
        let c = p.finish(SimTime::from_millis(35));
        assert_eq!(c.counts(), &[0, 0, 0]);
        assert_eq!(c.cov(), 0.0);
    }

    #[test]
    fn total_tracks_all_recorded() {
        let mut p = probe(10);
        for ms in 0..25u64 {
            p.record(SimTime::from_millis(ms));
        }
        assert_eq!(p.total(), 25);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        BinnedCounter::new(SimDuration::ZERO);
    }
}
