//! Second-order structure of arrival-count series: autocorrelation and the
//! index of dispersion for counts.
//!
//! The paper's companion work ("A New Statistical Model for Characterizing
//! Aggregate Network Traffic", Feng et al.) characterizes TCP-modulated
//! traffic through exactly these quantities: a Poisson stream has IDC = 1
//! and no lag correlation, while TCP's feedback loop introduces strong
//! positive correlation at round-trip lags.

/// Sample autocorrelation of `xs` at lags `0..=max_lag`.
///
/// Uses the standard biased estimator (normalizing by the lag-0
/// autocovariance), which is guaranteed to lie in `[-1, 1]`.
///
/// Returns an empty vector when the series is shorter than 2 points or has
/// zero variance; otherwise `result[0] == 1.0`.
///
/// # Example
///
/// ```
/// use tcpburst_stats::autocorrelation;
///
/// // A strictly alternating series is perfectly anti-correlated at lag 1.
/// let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let ac = autocorrelation(&xs, 2);
/// assert!((ac[0] - 1.0).abs() < 1e-12);
/// assert!(ac[1] < -0.9);
/// assert!(ac[2] > 0.9);
/// ```
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let c0: f64 = xs.iter().map(|&x| (x - mean) * (x - mean)).sum();
    if c0 == 0.0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    (0..=max_lag)
        .map(|lag| {
            let c: f64 = (0..n - lag)
                .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
                .sum();
            c / c0
        })
        .collect()
}

/// Index of dispersion for counts (IDC): variance over mean of a count
/// series.
///
/// IDC = 1 for Poisson counts; IDC > 1 signals burstiness (over-dispersion)
/// at the series' time scale. Returns `0.0` when the mean is zero.
///
/// # Example
///
/// ```
/// use tcpburst_stats::index_of_dispersion;
///
/// let constant = vec![4.0; 100];
/// assert_eq!(index_of_dispersion(&constant), 0.0); // under-dispersed
/// ```
pub fn index_of_dispersion(counts: &[f64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts.iter().map(|&c| (c - mean) * (c - mean)).sum::<f64>() / n;
    var / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpburst_des::SimRng;

    #[test]
    fn lag_zero_is_one() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let ac = autocorrelation(&xs, 3);
        assert!((ac[0] - 1.0).abs() < 1e-12);
        assert_eq!(ac.len(), 4);
    }

    #[test]
    fn iid_series_has_no_lag_correlation() {
        let mut rng = SimRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.uniform()).collect();
        let ac = autocorrelation(&xs, 5);
        for (lag, &r) in ac.iter().enumerate().skip(1) {
            assert!(r.abs() < 0.05, "lag {lag} correlation {r} too strong");
        }
    }

    #[test]
    fn smoothed_series_has_positive_lag_correlation() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut level = 0.0;
        let xs: Vec<f64> = (0..10_000)
            .map(|_| {
                level = 0.9 * level + rng.uniform();
                level
            })
            .collect();
        let ac = autocorrelation(&xs, 1);
        assert!(ac[1] > 0.7, "lag-1 correlation {} too weak", ac[1]);
    }

    #[test]
    fn degenerate_series_yield_empty() {
        assert!(autocorrelation(&[], 3).is_empty());
        assert!(autocorrelation(&[1.0], 3).is_empty());
        assert!(autocorrelation(&[2.0; 50], 3).is_empty());
    }

    #[test]
    fn max_lag_is_clamped_to_series_length() {
        let ac = autocorrelation(&[1.0, 2.0, 3.0], 100);
        assert_eq!(ac.len(), 3); // lags 0, 1, 2
    }

    #[test]
    fn poisson_counts_have_idc_near_one() {
        // Generate Poisson(4) counts by thinning uniform draws.
        let mut rng = SimRng::seed_from_u64(7);
        let counts: Vec<f64> = (0..50_000)
            .map(|_| {
                // Knuth's algorithm for small lambda.
                let l = (-4.0f64).exp();
                let mut k = 0u32;
                let mut p = 1.0;
                loop {
                    p *= rng.uniform();
                    if p <= l {
                        break;
                    }
                    k += 1;
                }
                f64::from(k)
            })
            .collect();
        let idc = index_of_dispersion(&counts);
        assert!((idc - 1.0).abs() < 0.05, "IDC {idc}");
    }

    #[test]
    fn bursty_counts_have_idc_above_one() {
        // Half the windows empty, half at 8: mean 4, var 16, IDC 4.
        let counts: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 8.0 } else { 0.0 }).collect();
        let idc = index_of_dispersion(&counts);
        assert!((idc - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_mean_are_zero() {
        assert_eq!(index_of_dispersion(&[]), 0.0);
        assert_eq!(index_of_dispersion(&[0.0; 10]), 0.0);
    }
}
