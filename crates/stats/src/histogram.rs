//! Fixed-width histograms with quantile queries.

/// A histogram over `[low, high)` with equal-width buckets plus underflow and
/// overflow counters.
///
/// Used for queue-length and RTT distributions in the examples and ablation
/// benches.
///
/// # Example
///
/// ```
/// use tcpburst_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 50.0, 50); // queue length 0..50, unit buckets
/// for q in [1.0, 1.2, 3.0, 48.0, 60.0] {
///     h.record(q);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.overflow(), 1);
/// assert!(h.quantile(0.5).unwrap() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `buckets` equal buckets.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`, either bound is not finite, or `buckets` is 0.
    pub fn new(low: f64, high: f64, buckets: usize) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "invalid histogram range [{low}, {high})"
        );
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            low,
            high,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Width of each bucket.
    pub fn bucket_width(&self) -> f64 {
        (self.high - self.low) / self.buckets.len() as f64
    }

    /// Records one observation. Non-finite values are counted as overflow.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x >= self.high {
            self.overflow += 1;
        } else if x < self.low {
            self.underflow += 1;
        } else {
            let idx = ((x - self.low) / self.bucket_width()) as usize;
            // Guard the top edge against FP rounding.
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound (or non-finite).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`), as the upper edge of the
    /// bucket where the cumulative count crosses `q·total`. Underflow counts
    /// toward the lowest bucket; returns the range top if the quantile lands
    /// in overflow. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.low);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.low + (i as f64 + 1.0) * self.bucket_width());
            }
        }
        Some(self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_expected_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.5);
        h.record(9.999);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.5);
        h.record(1.0); // upper bound is exclusive
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn quantiles_bracket_the_median() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median), "median {median}");
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_quantile_panics() {
        Histogram::new(0.0, 1.0, 2).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 2);
    }
}
