//! `(time, value)` trace recording, used for congestion-window evolution
//! plots (the paper's Figures 5–12).

use tcpburst_des::{SimDuration, SimTime};

/// An append-only series of `(time, value)` samples.
///
/// Values are recorded on change (event-driven), and the series can be
/// resampled onto a fixed grid for plotting with sample-and-hold semantics —
/// exactly how a congestion window behaves between updates.
///
/// # Example
///
/// ```
/// use tcpburst_des::{SimDuration, SimTime};
/// use tcpburst_stats::TimeSeries;
///
/// let mut cwnd = TimeSeries::new();
/// cwnd.record(SimTime::ZERO, 1.0);
/// cwnd.record(SimTime::from_millis(30), 2.0);
/// cwnd.record(SimTime::from_millis(90), 4.0);
///
/// let grid = cwnd.sample_hold(SimDuration::from_millis(40), SimTime::from_millis(120));
/// assert_eq!(grid, vec![1.0, 2.0, 2.0]); // values at t = 0, 40, 80 ms
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded sample (traces come
    /// from a monotonic event loop).
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "time series must be recorded in order");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The raw samples, in recording order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last recorded value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// The value in effect at time `t` (sample-and-hold): the most recent
    /// sample at or before `t`, or `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.times.partition_point(|&s| s <= t) {
            0 => None,
            i => Some(self.values[i - 1]),
        }
    }

    /// Resamples onto the grid `t = 0, step, 2·step, …` up to (excluding)
    /// `end`, holding the previous value between samples. Grid points before
    /// the first sample read as `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn sample_hold(&self, step: SimDuration, end: SimTime) -> Vec<f64> {
        assert!(!step.is_zero(), "sampling step must be positive");
        let n = end.saturating_since(SimTime::ZERO) / step;
        let mut out = Vec::with_capacity(n as usize);
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            out.push(self.value_at(t).unwrap_or(0.0));
            t += step;
        }
        out
    }

    /// Mean of the recorded values weighted by how long each was held,
    /// evaluated over `[first sample, end]`. Returns `None` when empty or
    /// when `end` precedes the first sample.
    pub fn time_weighted_mean(&self, end: SimTime) -> Option<f64> {
        let first = *self.times.first()?;
        let span = end.checked_since(first)?;
        if span.is_zero() {
            return Some(self.values[0]);
        }
        let mut acc = 0.0;
        for i in 0..self.len() {
            let start = self.times[i];
            if start >= end {
                break;
            }
            let stop = self.times.get(i + 1).copied().unwrap_or(end).min(end);
            acc += self.values[i] * (stop - start).as_secs_f64();
        }
        Some(acc / span.as_secs_f64())
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.record(t, v);
        }
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        ts.extend(iter);
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn value_at_holds_previous_sample() {
        let ts: TimeSeries = [(ms(10), 1.0), (ms(20), 5.0)].into_iter().collect();
        assert_eq!(ts.value_at(ms(5)), None);
        assert_eq!(ts.value_at(ms(10)), Some(1.0));
        assert_eq!(ts.value_at(ms(15)), Some(1.0));
        assert_eq!(ts.value_at(ms(20)), Some(5.0));
        assert_eq!(ts.value_at(ms(99)), Some(5.0));
    }

    #[test]
    fn sample_hold_grid() {
        let ts: TimeSeries = [(ms(0), 2.0), (ms(35), 7.0)].into_iter().collect();
        let grid = ts.sample_hold(SimDuration::from_millis(10), ms(60));
        assert_eq!(grid, vec![2.0, 2.0, 2.0, 2.0, 7.0, 7.0]);
    }

    #[test]
    fn sample_hold_before_first_sample_is_zero() {
        let ts: TimeSeries = [(ms(25), 3.0)].into_iter().collect();
        let grid = ts.sample_hold(SimDuration::from_millis(10), ms(40));
        assert_eq!(grid, vec![0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_recording_panics() {
        let mut ts = TimeSeries::new();
        ts.record(ms(10), 1.0);
        ts.record(ms(5), 2.0);
    }

    #[test]
    fn time_weighted_mean_weights_by_hold_time() {
        // 1.0 held for 10 ms, then 3.0 for 30 ms: mean = (10+90)/40 = 2.5.
        let ts: TimeSeries = [(ms(0), 1.0), (ms(10), 3.0)].into_iter().collect();
        let m = ts.time_weighted_mean(ms(40)).unwrap();
        assert!((m - 2.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_of_empty_is_none() {
        assert_eq!(TimeSeries::new().time_weighted_mean(ms(10)), None);
    }

    #[test]
    fn last_and_len() {
        let ts: TimeSeries = [(ms(0), 1.0), (ms(1), 2.0)].into_iter().collect();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.last(), Some((ms(1), 2.0)));
        assert!(!ts.is_empty());
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        // Two cwnd updates in the same event instant: last one wins at read.
        let ts: TimeSeries = [(ms(1), 1.0), (ms(1), 2.0)].into_iter().collect();
        assert_eq!(ts.value_at(ms(1)), Some(2.0));
    }
}
