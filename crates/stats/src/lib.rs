//! Streaming statistics for the `tcpburst` workspace.
//!
//! The paper's headline metric is the **coefficient of variation (c.o.v.)**
//! of the number of packets arriving at the gateway per round-trip
//! propagation delay. This crate provides that probe ([`BinnedCounter`]) and
//! the supporting toolkit:
//!
//! * [`RunningStats`] — numerically stable streaming moments (Welford),
//! * [`BinnedCounter`] — fixed-width virtual-time bins of event counts,
//! * [`TimeSeries`] — a `(time, value)` recorder for congestion-window traces,
//! * [`poisson_cov`] — the analytic c.o.v. of the un-modulated aggregate
//!   Poisson arrival process, the paper's reference curve in Figure 2,
//! * [`hurst`] — variance–time and rescaled-range (R/S) Hurst estimators,
//!   used by the ablation that contrasts the paper's c.o.v. metric with the
//!   self-similarity literature's Hurst parameter,
//! * [`jain_fairness`] — Jain's fairness index for per-flow goodput,
//! * [`Histogram`] — fixed-width histogram with quantile queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binned;
mod correlation;
mod fairness;
mod histogram;
pub mod hurst;
mod running;
mod timeseries;

pub use binned::{BinCounts, BinnedCounter};
pub use correlation::{autocorrelation, index_of_dispersion};
pub use fairness::jain_fairness;
pub use histogram::Histogram;
pub use running::RunningStats;
pub use timeseries::TimeSeries;

/// The analytic coefficient of variation of `n` aggregated Poisson sources.
///
/// Each source emits at rate `lambda` (packets per second) and arrivals are
/// counted in bins of `bin_secs`. The aggregate count per bin is Poisson with
/// mean `lambda * bin_secs * n`, whose c.o.v. is `1 / sqrt(lambda * bin_secs * n)`
/// — the smooth reference curve of the paper's Figure 2.
///
/// # Panics
///
/// Panics if any argument is not strictly positive.
///
/// # Example
///
/// ```
/// use tcpburst_stats::poisson_cov;
///
/// // 10 pkt/s per client, 44 ms bins, 25 clients.
/// let cov = poisson_cov(10.0, 0.044, 25);
/// assert!((cov - 1.0 / (0.044f64 * 10.0 * 25.0).sqrt()).abs() < 1e-12);
/// ```
pub fn poisson_cov(lambda: f64, bin_secs: f64, n: usize) -> f64 {
    assert!(lambda > 0.0, "rate must be positive, got {lambda}");
    assert!(bin_secs > 0.0, "bin width must be positive, got {bin_secs}");
    assert!(n > 0, "need at least one source");
    1.0 / (lambda * bin_secs * n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::poisson_cov;

    #[test]
    fn poisson_cov_decreases_with_aggregation() {
        let one = poisson_cov(10.0, 0.044, 1);
        let many = poisson_cov(10.0, 0.044, 60);
        assert!(many < one);
        // sqrt scaling: 4x the sources halves the c.o.v.
        let four = poisson_cov(10.0, 0.044, 4);
        assert!((four - one / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_panics() {
        poisson_cov(10.0, 0.044, 0);
    }
}
