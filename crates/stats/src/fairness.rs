//! Bandwidth-sharing fairness.

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// Ranges from `1/n` (one flow takes everything) to `1.0` (perfectly equal
/// shares). The paper observes (Figures 10–12) that TCP Vegas shares the
/// bottleneck more fairly than Reno; the fairness example and the cwnd bench
/// quantify that with this index over per-flow goodput.
///
/// Returns `1.0` for an empty slice (vacuously fair) and `0.0` when all
/// allocations are zero.
///
/// # Panics
///
/// Panics if any allocation is negative.
///
/// # Example
///
/// ```
/// use tcpburst_stats::jain_fairness;
///
/// assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
/// let skewed = jain_fairness(&[30.0, 0.0, 0.0]);
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_fairness(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    assert!(
        allocations.iter().all(|&x| x >= 0.0),
        "allocations must be non-negative"
    );
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (allocations.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        assert!((jain_fairness(&[7.0; 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_gives_one_over_n() {
        let mut alloc = vec![0.0; 8];
        alloc[3] = 42.0;
        assert!((jain_fairness(&alloc) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = jain_fairness(&[1.0, 2.0, 3.0]);
        let b = jain_fairness(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_zero_edge_cases() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_allocation_panics() {
        jain_fairness(&[1.0, -1.0]);
    }

    proptest! {
        #[test]
        fn prop_index_bounded(xs in proptest::collection::vec(0.0f64..1e6, 1..50)) {
            let j = jain_fairness(&xs);
            prop_assert!(j <= 1.0 + 1e-12);
            if xs.iter().any(|&x| x > 0.0) {
                prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
            }
        }
    }
}
