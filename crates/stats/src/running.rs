//! Numerically stable streaming moments.

use std::fmt;

/// Streaming mean/variance accumulator (Welford's online algorithm).
///
/// Tracks count, mean, variance (sample and population), min and max in O(1)
/// space with good numerical behaviour even for long runs of similar values.
/// Two accumulators can be [merged](RunningStats::merge) (Chan et al.'s
/// parallel formula), which the experiment harness uses to combine per-seed
/// replications.
///
/// # Example
///
/// ```
/// use tcpburst_stats::RunningStats;
///
/// let stats: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(stats.count(), 8);
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// assert!((stats.population_std_dev() - 2.0).abs() < 1e-12);
/// assert!((stats.cov() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no observations were pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `n`); `0.0` with fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by `n-1`); `0.0` with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation: population standard deviation over mean.
    ///
    /// This is the paper's burstiness metric. Returns `0.0` when the mean is
    /// zero (an all-zero series is maximally smooth, not undefined-bursty).
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.population_std_dev() / self.mean
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one, as if every observation of
    /// `other` had been pushed here.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Half-width of the normal-approximation 95% confidence interval of the
    /// mean (`1.96 * s / sqrt(n)`); `0.0` with fewer than 2 samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} cov={:.4}",
            self.count,
            self.mean(),
            self.population_std_dev(),
            self.cov()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_value_has_zero_variance() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [1.5, 2.5, 3.0, -4.0, 10.0, 0.25];
        let s: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(20);
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let all: RunningStats = xs.iter().copied().collect();
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cov_is_scale_invariant() {
        let a: RunningStats = [1.0, 2.0, 3.0].iter().copied().collect();
        let b: RunningStats = [10.0, 20.0, 30.0].iter().copied().collect();
        assert!((a.cov() - b.cov()).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Same spread around a huge offset: naive sum-of-squares would
        // catastrophically cancel.
        let base = 1e12;
        let s: RunningStats = [base + 1.0, base + 2.0, base + 3.0].iter().copied().collect();
        assert!((s.population_variance() - 2.0 / 3.0).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
            let s: RunningStats = xs.iter().copied().collect();
            prop_assert!(s.population_variance() >= 0.0);
            prop_assert!(s.sample_variance() >= 0.0);
        }

        #[test]
        fn prop_min_le_mean_le_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s: RunningStats = xs.iter().copied().collect();
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn prop_merge_any_split(xs in proptest::collection::vec(-1e3f64..1e3, 2..60), split in 0usize..60) {
            let split = split.min(xs.len());
            let (a, b) = xs.split_at(split);
            let mut m: RunningStats = a.iter().copied().collect();
            m.merge(&b.iter().copied().collect());
            let all: RunningStats = xs.iter().copied().collect();
            prop_assert!((m.mean() - all.mean()).abs() < 1e-9);
            prop_assert!((m.population_variance() - all.population_variance()).abs() < 1e-6);
        }
    }
}
