//! Hurst-parameter estimators.
//!
//! The self-similarity literature the paper argues with (Leland et al.,
//! Paxson–Floyd, Willinger et al.) characterizes burstiness with the Hurst
//! parameter `H` of the arrival-count process: `H = 0.5` for short-range
//! dependent (e.g. Poisson) traffic, `H → 1` for strongly self-similar
//! traffic. The paper instead advocates the c.o.v.; our ablation bench
//! computes both on the same gateway arrival series so the two views can be
//! compared directly. Two classic estimators are provided:
//!
//! * [`variance_time`] — slope of `log Var(X^(m))` vs `log m`, where `X^(m)`
//!   is the series aggregated in blocks of `m`: `Var ∝ m^(2H-2)`.
//! * [`rescaled_range`] — slope of `log E[R/S]` vs `log n`: `R/S ∝ n^H`.

/// Ordinary least squares fit of `y = a + b·x`, returning `(a, b)`.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than 2 points, or `x`
/// has zero variance.
///
/// # Example
///
/// ```
/// use tcpburst_stats::hurst::linear_fit;
///
/// let (a, b) = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
/// assert!((a - 1.0).abs() < 1e-12 && (b - 2.0).abs() < 1e-12);
/// ```
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points to fit a line");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|&v| (v - mx) * (v - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(&u, &v)| (u - mx) * (v - my)).sum();
    assert!(sxx > 0.0, "x values are degenerate (zero variance)");
    let b = sxy / sxx;
    (my - b * mx, b)
}

fn population_variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n
}

/// Aggregates `xs` into non-overlapping blocks of `m`, averaging each block.
/// The trailing partial block is dropped.
fn aggregate(xs: &[f64], m: usize) -> Vec<f64> {
    xs.chunks_exact(m)
        .map(|c| c.iter().sum::<f64>() / m as f64)
        .collect()
}

/// Variance–time Hurst estimate.
///
/// Aggregates the series at block sizes `m = 1, 2, 4, …` (while at least 8
/// blocks remain), fits `log10 Var(X^(m))` against `log10 m`, and returns
/// `H = 1 + slope/2`. For an i.i.d. series the slope is `-1` and `H = 0.5`.
///
/// Returns `None` when the series is too short (fewer than 16 points) or
/// degenerate (zero variance at some usable aggregation level).
pub fn variance_time(xs: &[f64]) -> Option<f64> {
    if xs.len() < 16 {
        return None;
    }
    let mut log_m = Vec::new();
    let mut log_var = Vec::new();
    let mut m = 1usize;
    while xs.len() / m >= 8 {
        let agg = aggregate(xs, m);
        let var = population_variance(&agg);
        if var <= 0.0 {
            return None;
        }
        log_m.push((m as f64).log10());
        log_var.push(var.log10());
        m *= 2;
    }
    if log_m.len() < 3 {
        return None;
    }
    let (_, slope) = linear_fit(&log_m, &log_var);
    Some(1.0 + slope / 2.0)
}

/// Rescaled-range (R/S) Hurst estimate.
///
/// For window sizes `n = 8, 16, …, len/2`, splits the series into
/// non-overlapping windows, computes the rescaled range `R/S` of each, and
/// fits `log10 mean(R/S)` against `log10 n`; the slope is `H`.
///
/// Returns `None` when the series is too short (fewer than 32 points) or
/// degenerate.
pub fn rescaled_range(xs: &[f64]) -> Option<f64> {
    if xs.len() < 32 {
        return None;
    }
    let mut log_n = Vec::new();
    let mut log_rs = Vec::new();
    let mut n = 8usize;
    while n <= xs.len() / 2 {
        let mut rs_values = Vec::new();
        for w in xs.chunks_exact(n) {
            if let Some(rs) = rs_of_window(w) {
                rs_values.push(rs);
            }
        }
        if !rs_values.is_empty() {
            let mean_rs = rs_values.iter().sum::<f64>() / rs_values.len() as f64;
            if mean_rs > 0.0 {
                log_n.push((n as f64).log10());
                log_rs.push(mean_rs.log10());
            }
        }
        n *= 2;
    }
    if log_n.len() < 3 {
        return None;
    }
    let (_, slope) = linear_fit(&log_n, &log_rs);
    Some(slope)
}

/// R/S statistic of one window: range of the mean-adjusted cumulative sum
/// divided by the window's standard deviation. `None` for zero-variance
/// windows.
fn rs_of_window(w: &[f64]) -> Option<f64> {
    let n = w.len() as f64;
    let mean = w.iter().sum::<f64>() / n;
    let sd = population_variance(w).sqrt();
    if sd == 0.0 {
        return None;
    }
    let mut cum = 0.0;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in w {
        cum += x - mean;
        lo = lo.min(cum);
        hi = hi.max(cum);
    }
    Some((hi - lo) / sd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpburst_des::SimRng;

    fn iid_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| rng.uniform()).collect()
    }

    /// Fractional Gaussian-ish long-memory series via aggregated AR cascades
    /// is overkill; a simple strongly positively correlated random walk is a
    /// standard sanity target (H near 1 for the increments' partial sums
    /// trend). Here we build a persistent series by low-pass filtering noise.
    fn persistent_series(n: usize, seed: u64) -> Vec<f64> {
        let noise = iid_series(n, seed);
        let mut out = Vec::with_capacity(n);
        let mut level: f64 = 0.0;
        for x in noise {
            level = 0.97 * level + x - 0.5;
            out.push(level);
        }
        out
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 - 0.5 * v).collect();
        let (a, b) = linear_fit(&x, &y);
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b + 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn linear_fit_length_mismatch_panics() {
        linear_fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn variance_time_of_iid_is_near_half() {
        let h = variance_time(&iid_series(8192, 11)).unwrap();
        assert!((0.35..0.65).contains(&h), "H = {h}");
    }

    #[test]
    fn rescaled_range_of_iid_is_near_half() {
        let h = rescaled_range(&iid_series(8192, 12)).unwrap();
        // R/S has a well-known small-sample upward bias; allow a wide band.
        assert!((0.4..0.72).contains(&h), "H = {h}");
    }

    #[test]
    fn persistent_series_scores_higher_than_iid() {
        let h_iid = variance_time(&iid_series(8192, 13)).unwrap();
        let h_per = variance_time(&persistent_series(8192, 13)).unwrap();
        assert!(
            h_per > h_iid + 0.15,
            "persistent H {h_per} vs iid H {h_iid}"
        );
    }

    #[test]
    fn short_series_yield_none() {
        assert_eq!(variance_time(&[1.0; 8]), None);
        assert_eq!(rescaled_range(&[1.0; 16]), None);
    }

    #[test]
    fn constant_series_yields_none() {
        assert_eq!(variance_time(&vec![5.0; 1024]), None);
        assert_eq!(rescaled_range(&vec![5.0; 1024]), None);
    }

    #[test]
    fn aggregate_drops_partial_tail() {
        assert_eq!(aggregate(&[1.0, 3.0, 5.0, 7.0, 9.0], 2), vec![2.0, 6.0]);
    }
}
