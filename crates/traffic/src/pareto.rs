//! Heavy-tailed ON/OFF arrivals (Willinger et al.'s self-similarity
//! construction).

use tcpburst_des::{SimDuration, SimRng};

use crate::ArrivalProcess;

/// Parameters of a [`ParetoOnOffSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoOnOffConfig {
    /// Packet emission rate during an ON burst, in packets/second.
    pub peak_rate: f64,
    /// Mean ON-period length, in seconds.
    pub mean_on_secs: f64,
    /// Mean OFF-period length, in seconds.
    pub mean_off_secs: f64,
    /// Pareto shape for both period laws; `1 < shape <= 2` gives the
    /// infinite-variance regime that produces self-similar aggregates.
    pub shape: f64,
}

impl Default for ParetoOnOffConfig {
    /// A configuration whose *average* rate matches the paper's 10 pkt/s
    /// Poisson clients (50% duty cycle at 20 pkt/s peak), with the classic
    /// `shape = 1.5`.
    fn default() -> Self {
        ParetoOnOffConfig {
            peak_rate: 20.0,
            mean_on_secs: 0.5,
            mean_off_secs: 0.5,
            shape: 1.5,
        }
    }
}

impl ParetoOnOffConfig {
    fn validate(&self) {
        assert!(
            self.peak_rate > 0.0 && self.peak_rate.is_finite(),
            "peak rate must be positive and finite"
        );
        assert!(
            self.mean_on_secs > 0.0 && self.mean_off_secs > 0.0,
            "ON/OFF period means must be positive"
        );
        assert!(
            self.shape > 1.0,
            "shape must exceed 1 so period means are finite, got {}",
            self.shape
        );
    }

    /// The long-run average rate: `peak · on/(on + off)` packets/second.
    pub fn mean_rate(&self) -> f64 {
        self.peak_rate * self.mean_on_secs / (self.mean_on_secs + self.mean_off_secs)
    }
}

/// An ON/OFF source with Pareto-distributed period lengths.
///
/// During an ON period packets are emitted back-to-back at `peak_rate`;
/// during OFF periods the source is silent. With `1 < shape < 2` the period
/// law has infinite variance and the superposition of many such sources is
/// asymptotically self-similar — the input model of the literature the paper
/// argues should not be studied in isolation from TCP.
#[derive(Debug, Clone)]
pub struct ParetoOnOffSource {
    cfg: ParetoOnOffConfig,
    rng: SimRng,
    /// Packets left in the current ON burst.
    remaining_in_burst: u64,
}

impl ParetoOnOffSource {
    /// Creates a source; the first packet arrives after an initial OFF
    /// period, so a fleet of sources does not start synchronized.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ParetoOnOffConfig`] field docs).
    pub fn new(cfg: ParetoOnOffConfig, rng: SimRng) -> Self {
        cfg.validate();
        ParetoOnOffSource {
            cfg,
            rng,
            remaining_in_burst: 0,
        }
    }

    /// Draws a Pareto period with the configured shape and the given mean.
    /// Pareto(xm, a) has mean `a·xm/(a−1)`, so `xm = mean·(a−1)/a`.
    fn pareto_period(&mut self, mean: f64) -> f64 {
        let a = self.cfg.shape;
        let xm = mean * (a - 1.0) / a;
        self.rng.pareto(xm, a)
    }
}

impl ArrivalProcess for ParetoOnOffSource {
    fn next_gap(&mut self) -> SimDuration {
        let tx_time = 1.0 / self.cfg.peak_rate;
        if self.remaining_in_burst > 0 {
            self.remaining_in_burst -= 1;
            return SimDuration::from_secs_f64(tx_time);
        }
        // Start a new cycle: an OFF period, then an ON period whose length
        // determines the burst size.
        let off = self.pareto_period(self.cfg.mean_off_secs);
        let on = self.pareto_period(self.cfg.mean_on_secs);
        let burst = (on * self.cfg.peak_rate).round().max(1.0) as u64;
        self.remaining_in_burst = burst - 1;
        SimDuration::from_secs_f64(off + tx_time)
    }

    fn mean_rate(&self) -> f64 {
        self.cfg.mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(seed: u64) -> ParetoOnOffSource {
        ParetoOnOffSource::new(ParetoOnOffConfig::default(), SimRng::seed_from_u64(seed))
    }

    #[test]
    fn default_mean_rate_matches_paper_load() {
        assert!((ParetoOnOffConfig::default().mean_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn long_run_rate_approaches_mean_rate() {
        let mut s = source(1);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| s.next_gap().as_secs_f64()).sum();
        let rate = n as f64 / total;
        // Heavy tails converge slowly; accept a generous band.
        assert!(
            (rate - 10.0).abs() < 2.5,
            "long-run rate {rate} too far from 10"
        );
    }

    #[test]
    fn gaps_alternate_bursts_and_silences() {
        let mut s = source(2);
        let gaps: Vec<f64> = (0..10_000).map(|_| s.next_gap().as_secs_f64()).collect();
        let tx = 1.0 / 20.0;
        let in_burst = gaps.iter().filter(|&&g| (g - tx).abs() < 1e-12).count();
        let silences = gaps.len() - in_burst;
        assert!(in_burst > 0, "no back-to-back burst gaps seen");
        assert!(silences > 0, "no OFF periods seen");
        // Every OFF gap is at least the minimum Pareto period plus one
        // transmission time.
        let min_off = 0.5 * 0.5 / 1.5; // mean (a-1)/a
        assert!(gaps
            .iter()
            .filter(|&&g| (g - tx).abs() >= 1e-12)
            .all(|&g| g >= min_off + tx - 1e-9));
    }

    #[test]
    fn gap_cov_exceeds_poisson() {
        // Heavy-tailed ON/OFF gaps are burstier than exponential (c.o.v. 1).
        let mut s = source(3);
        let gaps: Vec<f64> = (0..100_000).map(|_| s.next_gap().as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cov = var.sqrt() / mean;
        assert!(cov > 1.3, "ON/OFF gap c.o.v. {cov} not heavy enough");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = source(9);
        let mut b = source(9);
        for _ in 0..100 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn shape_at_most_one_panics() {
        ParetoOnOffSource::new(
            ParetoOnOffConfig {
                shape: 1.0,
                ..ParetoOnOffConfig::default()
            },
            SimRng::seed_from_u64(0),
        );
    }
}
