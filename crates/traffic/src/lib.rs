//! Workload generators for the `tcpburst` workspace.
//!
//! The paper's clients generate **Poisson** traffic: single fixed-size
//! packets with exponentially distributed inter-generation times
//! ([`PoissonSource`]). Two more generators support the ablation studies:
//!
//! * [`CbrSource`] — deterministic constant-bit-rate arrivals (a
//!   zero-variance control),
//! * [`ParetoOnOffSource`] — heavy-tailed ON/OFF bursts, the standard
//!   construction for self-similar aggregate input in the literature the
//!   paper engages (Willinger et al.).
//!
//! Every generator implements [`ArrivalProcess`]: a stream of gaps between
//! consecutive packet submissions. The experiment harness turns gaps into
//! `Generate` events on the simulation loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tcpburst_des::{SimDuration, SimRng};

mod cbr;
mod pareto;
mod poisson;

pub use cbr::CbrSource;
pub use pareto::{ParetoOnOffConfig, ParetoOnOffSource};
pub use poisson::PoissonSource;

/// A stream of inter-arrival gaps: the time from one application packet
/// submission to the next.
///
/// Implementations are deterministic given their seed, so simulations are
/// exactly reproducible.
pub trait ArrivalProcess: std::fmt::Debug {
    /// The gap before the next packet is submitted.
    fn next_gap(&mut self) -> SimDuration;

    /// The long-run average packet rate in packets/second (used to compute
    /// the analytic reference curves).
    fn mean_rate(&self) -> f64;
}

/// Any of the three built-in generators, dispatched statically.
///
/// The simulation loop calls [`ArrivalProcess::next_gap`] once per
/// generated packet — hot enough that a `Box<dyn ArrivalProcess>` per
/// client costs a pointer chase and defeats inlining of the (tiny) draw.
/// This enum keeps the source set closed and the call devirtualized while
/// still letting a scenario hold a homogeneous `Vec<AnySource>`.
///
/// # Example
///
/// ```
/// use tcpburst_traffic::{AnySource, ArrivalProcess, CbrSource};
///
/// let mut src = AnySource::from(CbrSource::from_rate(50.0));
/// assert_eq!(src.mean_rate(), 50.0);
/// assert_eq!(src.next_gap(), tcpburst_des::SimDuration::from_millis(20));
/// ```
#[derive(Debug)]
pub enum AnySource {
    /// Exponential inter-arrival gaps.
    Poisson(PoissonSource),
    /// Deterministic constant-rate gaps.
    Cbr(CbrSource),
    /// Heavy-tailed ON/OFF bursts.
    ParetoOnOff(ParetoOnOffSource),
}

impl ArrivalProcess for AnySource {
    #[inline]
    fn next_gap(&mut self) -> SimDuration {
        match self {
            AnySource::Poisson(s) => s.next_gap(),
            AnySource::Cbr(s) => s.next_gap(),
            AnySource::ParetoOnOff(s) => s.next_gap(),
        }
    }

    fn mean_rate(&self) -> f64 {
        match self {
            AnySource::Poisson(s) => s.mean_rate(),
            AnySource::Cbr(s) => s.mean_rate(),
            AnySource::ParetoOnOff(s) => s.mean_rate(),
        }
    }
}

impl From<PoissonSource> for AnySource {
    fn from(s: PoissonSource) -> Self {
        AnySource::Poisson(s)
    }
}

impl From<CbrSource> for AnySource {
    fn from(s: CbrSource) -> Self {
        AnySource::Cbr(s)
    }
}

impl From<ParetoOnOffSource> for AnySource {
    fn from(s: ParetoOnOffSource) -> Self {
        AnySource::ParetoOnOff(s)
    }
}

/// Builds the paper's client workload: Poisson with mean inter-generation
/// time `1/lambda = 0.01` seconds, independently seeded per client.
///
/// # Example
///
/// ```
/// use tcpburst_traffic::{paper_source, ArrivalProcess};
///
/// let mut src = paper_source(/* seed */ 1, /* client */ 0);
/// assert_eq!(src.mean_rate(), 100.0); // 100 packets/s: 1/0.01 s
/// let gap = src.next_gap();
/// assert!(gap.as_secs_f64() >= 0.0);
/// ```
pub fn paper_source(seed: u64, client: u64) -> PoissonSource {
    PoissonSource::new(100.0, SimRng::derive(seed, client))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_source_rate_is_hundred_per_second() {
        assert_eq!(paper_source(0, 0).mean_rate(), 100.0);
    }

    #[test]
    fn paper_sources_are_reproducible_and_distinct() {
        let mut a1 = paper_source(7, 3);
        let mut a2 = paper_source(7, 3);
        let mut b = paper_source(7, 4);
        let ga1: Vec<_> = (0..32).map(|_| a1.next_gap()).collect();
        let ga2: Vec<_> = (0..32).map(|_| a2.next_gap()).collect();
        let gb: Vec<_> = (0..32).map(|_| b.next_gap()).collect();
        assert_eq!(ga1, ga2);
        assert_ne!(ga1, gb);
    }
}
