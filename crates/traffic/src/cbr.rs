//! Constant-bit-rate arrivals: the zero-variance control workload.

use tcpburst_des::SimDuration;

use crate::ArrivalProcess;

/// A deterministic source emitting one packet every `interval`.
///
/// Useful as a control in the source-law ablation: any burstiness measured
/// at the gateway under CBR input is introduced *entirely* by the protocol
/// stack and the network.
#[derive(Debug, Clone)]
pub struct CbrSource {
    interval: SimDuration,
}

impl CbrSource {
    /// Creates a source with the given constant gap.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "CBR interval must be positive");
        CbrSource { interval }
    }

    /// Creates a source emitting `rate` packets per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive and finite, got {rate}"
        );
        CbrSource::new(SimDuration::from_secs_f64(1.0 / rate))
    }
}

impl ArrivalProcess for CbrSource {
    fn next_gap(&mut self) -> SimDuration {
        self.interval
    }

    fn mean_rate(&self) -> f64 {
        1.0 / self.interval.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_constant() {
        let mut s = CbrSource::from_rate(10.0);
        for _ in 0..100 {
            assert_eq!(s.next_gap(), SimDuration::from_millis(100));
        }
        assert!((s.mean_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        CbrSource::new(SimDuration::ZERO);
    }
}
