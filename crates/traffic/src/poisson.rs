//! The paper's client workload: Poisson packet generation.

use tcpburst_des::{SimDuration, SimRng};

use crate::ArrivalProcess;

/// A Poisson packet source: exponentially distributed gaps with rate
/// `lambda` packets per second.
///
/// The aggregate of `n` independent Poisson sources is Poisson with rate
/// `n·lambda`, whose per-bin count c.o.v. is `1/sqrt(lambda·bin·n)` — the
/// smooth reference the paper compares every transport against.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    lambda: f64,
    rng: SimRng,
}

impl PoissonSource {
    /// Creates a source with rate `lambda` packets/second.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64, rng: SimRng) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "rate must be positive and finite, got {lambda}"
        );
        PoissonSource { lambda, rng }
    }

    /// The configured rate in packets/second.
    pub fn rate(&self) -> f64 {
        self.lambda
    }
}

impl ArrivalProcess for PoissonSource {
    fn next_gap(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.exponential(self.lambda))
    }

    fn mean_rate(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(lambda: f64, seed: u64) -> PoissonSource {
        PoissonSource::new(lambda, SimRng::seed_from_u64(seed))
    }

    #[test]
    fn mean_gap_matches_rate() {
        let mut s = source(10.0, 1);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| s.next_gap().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.1).abs() < 0.002, "mean gap {mean}");
    }

    #[test]
    fn gap_cov_is_one() {
        // Exponential distribution: std dev equals mean, c.o.v. = 1.
        let mut s = source(10.0, 2);
        let gaps: Vec<f64> = (0..100_000).map(|_| s.next_gap().as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cov = var.sqrt() / mean;
        assert!((cov - 1.0).abs() < 0.02, "c.o.v. {cov}");
    }

    #[test]
    fn counts_per_window_are_poisson_distributed() {
        // Mean ≈ variance for the per-window packet counts.
        let mut s = source(10.0, 3);
        let window = 1.0;
        let mut counts = Vec::new();
        let mut t = 0.0;
        let mut count = 0u64;
        for _ in 0..200_000 {
            t += s.next_gap().as_secs_f64();
            if t >= window {
                counts.push(count as f64);
                count = 0;
                t -= window;
                // Skip whole empty windows.
                while t >= window {
                    counts.push(0.0);
                    t -= window;
                }
            }
            count += 1;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        let ratio = var / mean;
        assert!((ratio - 1.0).abs() < 0.05, "index of dispersion {ratio}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        source(0.0, 0);
    }
}
