//! Shared plumbing for the paper-reproduction bench targets.
//!
//! Every figure/table of the paper has its own bench target under
//! `benches/`; they all run at the paper's full 200-second scale by default
//! and honour two environment variables for quicker iterations:
//!
//! * `TCPBURST_SECS` — simulated seconds per scenario (default 200),
//! * `TCPBURST_SEED` — master seed (default the crate's fixed seed).
//!
//! Full-resolution figure data (CSV) is written to
//! `target/paper_figures/`.

use std::env;
use std::fs;
use std::path::PathBuf;

use tcpburst_des::SimDuration;

/// Simulated duration per scenario, from `TCPBURST_SECS` (default: the
/// paper's 200 s).
pub fn bench_duration() -> SimDuration {
    let secs = env::var("TCPBURST_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    SimDuration::from_secs(secs)
}

/// Master seed, from `TCPBURST_SEED` (default: fixed).
pub fn bench_seed() -> u64 {
    env::var("TCPBURST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x1CDC_2000)
}

/// The client-count grid of Figure 2 (the paper plots 2–60; Figures 3, 4
/// and 13 start at 30 because "the different TCP implementations exhibit
/// nearly identical behavior for less than 30 clients").
pub fn fig2_clients() -> Vec<usize> {
    vec![2, 5, 10, 15, 20, 25, 30, 34, 38, 39, 42, 45, 50, 55, 60]
}

/// The client-count grid of Figures 3, 4 and 13.
pub fn fig3_clients() -> Vec<usize> {
    vec![30, 34, 38, 39, 42, 45, 50, 55, 60]
}

/// Directory where bench targets drop full-resolution CSVs.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("paper_figures");
    fs::create_dir_all(&dir).expect("create target/paper_figures");
    dir
}

/// Writes `contents` under [`figures_dir`] and reports where.
pub fn write_figure_csv(name: &str, contents: &str) {
    let path = figures_dir().join(name);
    fs::write(&path, contents).expect("write figure CSV");
    println!("[wrote {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sorted_and_span_the_paper_range() {
        let f2 = fig2_clients();
        assert!(f2.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*f2.first().unwrap(), 2);
        assert_eq!(*f2.last().unwrap(), 60);
        let f3 = fig3_clients();
        assert_eq!(*f3.first().unwrap(), 30);
        assert!(f3.contains(&39), "the crossover point must be sampled");
    }

    #[test]
    fn duration_default_is_paper_scale() {
        if env::var("TCPBURST_SECS").is_err() {
            assert_eq!(bench_duration(), SimDuration::from_secs(200));
        }
    }
}
