//! Figures 5–12: congestion-window evolution.
//!
//! | Figure | Protocol | Clients | Paper's observation |
//! |--------|----------|---------|---------------------|
//! | 5  | Reno  | 20 | losses concentrate in slow start (send-buffer bursts) |
//! | 6  | Reno  | 30 | congestion earlier in slow start; stabilizes late |
//! | 7  | Reno  | 38 | stabilizes only after a long transient |
//! | 8  | Reno  | 39 | never stabilizes (persistent congestion) |
//! | 9  | Reno  | 60 | synchronized window cuts across streams |
//! | 10 | Vegas | 20 | windows settle near their fair value |
//! | 11 | Vegas | 30 | same |
//! | 12 | Vegas | 60 | fair sharing under heavy load |
//!
//! Prints per-figure summary statistics (per-client window mean/sd, window
//! cut events, cross-client synchrony) and writes the full 0.1 s-sampled
//! traces as CSV for plotting.

use std::fmt::Write as _;

use tcpburst_bench::{bench_duration, bench_seed, write_figure_csv};
use tcpburst_core::experiments::{
    cwnd_evolution, paper_traced_clients, stabilization_time_units, CwndFigure,
};
use tcpburst_core::Protocol;
use tcpburst_des::{SimDuration, SimTime};
use tcpburst_stats::RunningStats;

/// Counts downward window adjustments (loss responses) in a sampled trace.
fn window_cuts(samples: &[f64]) -> usize {
    samples.windows(2).filter(|w| w[1] < w[0]).count()
}

/// Fraction of 0.1 s steps in which at least half the traced clients cut
/// their window simultaneously — a crude synchrony measure for the paper's
/// "streams halve their windows at the same time" claim.
fn synchrony(figure: &CwndFigure, end: SimTime) -> f64 {
    let step = SimDuration::from_millis(100);
    let sampled: Vec<Vec<f64>> = figure
        .traces
        .iter()
        .map(|t| t.trace.sample_hold(step, end))
        .collect();
    let steps = sampled.first().map_or(0, |s| s.len().saturating_sub(1));
    if steps == 0 {
        return 0.0;
    }
    let mut any_cut = 0usize;
    let mut joint_cut = 0usize;
    for i in 0..steps {
        let cuts = sampled.iter().filter(|s| s[i + 1] < s[i]).count();
        if cuts > 0 {
            any_cut += 1;
            if cuts * 2 >= sampled.len() {
                joint_cut += 1;
            }
        }
    }
    if any_cut == 0 {
        0.0
    } else {
        joint_cut as f64 / any_cut as f64
    }
}

fn main() {
    let duration = bench_duration();
    let end = SimTime::ZERO + duration;
    let seed = bench_seed();
    let figures: [(u32, Protocol, usize); 8] = [
        (5, Protocol::Reno, 20),
        (6, Protocol::Reno, 30),
        (7, Protocol::Reno, 38),
        (8, Protocol::Reno, 39),
        (9, Protocol::Reno, 60),
        (10, Protocol::Vegas, 20),
        (11, Protocol::Vegas, 30),
        (12, Protocol::Vegas, 60),
    ];

    println!(
        "{:>4} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "fig", "proto", "clients", "cwnd mean", "cwnd sd", "cuts/cl", "synchrony", "stable@"
    );
    for (fig_no, protocol, clients) in figures {
        let fig = cwnd_evolution(
            protocol,
            clients,
            &paper_traced_clients(clients),
            duration,
            seed,
        );
        let step = SimDuration::from_millis(100);
        let mut agg = RunningStats::new();
        let mut cuts = 0usize;
        let mut csv = String::from("t_units");
        for t in &fig.traces {
            let _ = write!(csv, ",client{}", t.client + 1);
        }
        csv.push('\n');
        let sampled: Vec<Vec<f64>> = fig
            .traces
            .iter()
            .map(|t| t.trace.sample_hold(step, end))
            .collect();
        for s in &sampled {
            cuts += window_cuts(s);
            for &w in s {
                agg.push(w);
            }
        }
        if let Some(rows) = sampled.first().map(Vec::len) {
            for i in 0..rows {
                let _ = write!(csv, "{i}");
                for s in &sampled {
                    let _ = write!(csv, ",{:.2}", s[i]);
                }
                csv.push('\n');
            }
        }
        // The paper's stabilization verdict: the latest stabilization time
        // among the traced clients, "never" if any client keeps cutting.
        let stable = fig
            .traces
            .iter()
            .map(|t| stabilization_time_units(&t.trace, duration))
            .try_fold(0u64, |acc, s| s.map(|v| acc.max(v)));
        println!(
            "{:>4} {:>6} {:>8} {:>10.2} {:>10.2} {:>10.1} {:>10.2} {:>10}",
            fig_no,
            protocol.label(),
            clients,
            agg.mean(),
            agg.population_std_dev(),
            cuts as f64 / fig.traces.len().max(1) as f64,
            synchrony(&fig, end),
            stable.map_or("never".to_string(), |t| format!("{t}")),
        );
        write_figure_csv(&format!("fig{fig_no}_cwnd.csv"), &csv);
        write_figure_csv(&format!("fig{fig_no}_cwnd.svg"), &fig.svg());
    }
    println!(
        "\n(cuts/cl = downward window moves per traced client; synchrony = fraction of\n cut instants where >=half the traced clients cut together)"
    );
}
