//! Ablation: active queue management beyond the paper — ECN marking and
//! self-configuring RED.
//!
//! The paper concludes that (fixed-parameter, dropping) RED hurts both Reno
//! and Vegas. Two of its own citations point at remedies: explicit
//! congestion notification (mark, don't drop) and the self-configuring RED
//! gateway of reference [5] (adapt `max_p` to the load). This target
//! quantifies how much of the RED pathology each remedy recovers.

use tcpburst_bench::{bench_duration, bench_seed};
use tcpburst_core::{GatewayKind, Protocol, Scenario, ScenarioBuilder};

fn main() {
    let duration = bench_duration();
    let clients = 60;
    println!("# Ablation: AQM variants, {clients} clients, {duration} per cell");
    println!(
        "{:>10} {:>16} {:>6} {:>10} {:>10} {:>12} {:>8} {:>8} {:>9}",
        "proto", "gateway", "ecn", "cov", "cov/pois", "delivered", "loss%", "marks", "ecn cuts"
    );
    for base in [Protocol::Reno, Protocol::Vegas] {
        let cells: [(GatewayKind, bool, &str); 4] = [
            (GatewayKind::Fifo, false, "FIFO"),
            (GatewayKind::Red, false, "RED"),
            (GatewayKind::Red, true, "RED"),
            (GatewayKind::AdaptiveRed, false, "AdaptiveRED"),
        ];
        for (gateway, ecn, gw_name) in cells {
            let cfg = ScenarioBuilder::paper()
                .transport(|t| t.protocol(base).ecn(ecn))
                .topology(|t| t.clients(clients).gateway(gateway))
                .instrumentation(|i| i.duration(duration).seed(bench_seed()))
                .finish();
            let r = Scenario::run(&cfg);
            println!(
                "{:>10} {:>16} {:>6} {:>10.4} {:>10.2} {:>12} {:>8.2} {:>8} {:>9}",
                base.label(),
                gw_name,
                if ecn { "on" } else { "off" },
                r.cov,
                r.cov_ratio(),
                r.delivered_packets,
                r.loss_percent,
                r.bottleneck_queue.ecn_marks,
                r.tcp_totals.ecn_window_cuts
            );
        }
    }
    println!("\n(marks = packets CE-marked instead of dropped; ecn cuts = window\n reductions taken on echo rather than on loss)");
}
