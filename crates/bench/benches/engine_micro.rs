//! Criterion microbenchmarks of the simulation engine itself: event-queue
//! throughput, RED admission cost, and end-to-end events/second for a
//! representative scenario.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};
use tcpburst_des::{EventQueue, SimDuration, SimRng, SimTime};
use tcpburst_net::{Ecn, Packet, PacketKind, Queue, RedParams, RedQueue};
use tcpburst_net::{FlowId, NodeId};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("push_pop_10k_random", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        let times: Vec<SimTime> = (0..N)
            .map(|_| SimTime::from_nanos(rng.below(1_000_000_000)))
            .collect();
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for (i, &t) in times.iter().enumerate() {
                    q.push(t, i as u64);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_red_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("red_queue");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    let pkt = Packet {
        flow: FlowId(0),
        kind: PacketKind::Datagram,
        size_bytes: 1500,
        src: NodeId(0),
        dst: NodeId(1),
        created_at: SimTime::ZERO,
        ecn: Ecn::default(),
    };
    g.bench_function("enqueue_dequeue_10k", |b| {
        b.iter_batched(
            || RedQueue::new(RedParams::paper_defaults(), 3),
            |mut q| {
                for i in 0..N {
                    let now = SimTime::from_micros(i * 200);
                    let _ = q.enqueue(pkt, now);
                    if q.len() > 20 {
                        let _ = q.dequeue(now);
                    }
                }
                q.stats().drops_total()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    for (name, protocol, clients) in [
        ("reno_39cl_5s", Protocol::Reno, 39),
        ("vegas_39cl_5s", Protocol::Vegas, 39),
        ("udp_39cl_5s", Protocol::Udp, 39),
    ] {
        let cfg = ScenarioBuilder::paper()
            .topology(|t| t.clients(clients))
            .transport(|t| t.protocol(protocol))
            .instrumentation(|i| i.duration(SimDuration::from_secs(5)))
            .finish();
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = Scenario::run(&cfg);
                criterion::black_box(r.events_processed)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_red_queue, bench_scenario);
criterion_main!(benches);
