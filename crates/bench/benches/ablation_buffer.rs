//! Ablation: gateway buffer size.
//!
//! The paper (citing Lakshman–Madhow) notes that Reno's performance "varies
//! significantly with respect to the gateway buffer size" while Vegas needs
//! only a few packets per connection. This sweep varies B around the
//! paper's 50 packets and reports burstiness, goodput and loss for both.

use tcpburst_bench::{bench_duration, bench_seed};
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};

fn main() {
    let duration = bench_duration();
    let clients = 45;
    println!(
        "# Ablation: gateway buffer size (B), {clients} clients, {duration} per cell"
    );
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>12} {:>8} {:>10}",
        "B", "proto", "cov", "cov/pois", "delivered", "loss%", "timeouts"
    );
    for buffer in [10usize, 25, 50, 100, 200, 400] {
        for p in [Protocol::Reno, Protocol::Vegas] {
            let cfg = ScenarioBuilder::paper()
                .topology(|t| t.clients(clients).buffer_pkts(buffer))
                .transport(|t| t.protocol(p))
                .instrumentation(|i| i.duration(duration).seed(bench_seed()))
                .finish();
            let r = Scenario::run(&cfg);
            println!(
                "{:>6} {:>8} {:>10.4} {:>10.2} {:>12} {:>8.2} {:>10}",
                buffer,
                p.label(),
                r.cov,
                r.cov_ratio(),
                r.delivered_packets,
                r.loss_percent,
                r.tcp_totals.timeouts
            );
        }
    }
}
