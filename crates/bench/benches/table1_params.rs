//! Table 1 + Figure 1: prints the reconstructed simulation parameters and
//! the network model, and verifies their internal consistency.

use tcpburst_core::experiments::{table1, topology_ascii};
use tcpburst_core::PaperParams;

fn main() {
    println!("{}", table1());
    println!("{}", topology_ascii());

    let p = PaperParams::default();
    println!("derived quantities:");
    println!(
        "  round-trip propagation delay (c.o.v. bin): {}",
        p.rtprop()
    );
    println!("  per-client offered load: {} pkt/s", p.lambda());
    println!(
        "  bottleneck capacity: {:.1} pkt/s  (raw congestion crossover at {:.1} clients)",
        p.bottleneck_pkts_per_sec(),
        p.bottleneck_pkts_per_sec() / p.lambda()
    );
    println!(
        "  bandwidth-delay product: {:.0} packets",
        p.bottleneck_pkts_per_sec() * p.rtprop().as_secs_f64()
    );
}
