//! Figure 13: ratio of timeouts to duplicate-ACK (fast) retransmissions vs
//! number of clients.
//!
//! Expected shape (paper): the Reno family resolves a large fraction of its
//! losses by (synchronizing) retransmission timeouts; Vegas's fine-grained
//! duplicate-ACK retransmission keeps its ratio far lower.

use tcpburst_bench::{bench_duration, bench_seed, fig3_clients, write_figure_csv};
use tcpburst_core::experiments::Sweep;
use tcpburst_core::Protocol;

fn main() {
    let duration = bench_duration();
    let clients = fig3_clients();
    eprintln!(
        "fig13: {} protocols x {} client counts, {} each",
        Protocol::PAPER_TCP_SET.len(),
        clients.len(),
        duration
    );
    let sweep = Sweep::run(&Protocol::PAPER_TCP_SET, &clients, duration, bench_seed());
    println!("{}", sweep.fig13_timeout_ratio_table());
    write_figure_csv("fig13_timeout_ratio.csv", &sweep.to_csv());
    write_figure_csv("fig13_timeout_ratio.svg", &sweep.fig13_timeout_ratio_svg());
}
