//! Ablation: Vegas (alpha, beta) thresholds.
//!
//! The paper's Section 3.5 explains Vegas/RED's pathology through the
//! aggregate queue Vegas tries to hold at the gateway (between alpha and
//! beta packets *per stream*). This sweep varies the band and reports the
//! burstiness/loss trade-off, on both FIFO and RED gateways.

use tcpburst_bench::{bench_duration, bench_seed};
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};
use tcpburst_transport::VegasParams;

fn main() {
    let duration = bench_duration();
    let clients = 45;
    println!(
        "# Ablation: Vegas (alpha, beta), {clients} clients, {duration} per cell"
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>12} {:>8} {:>10}",
        "(a, b)", "gateway", "cov", "cov/pois", "delivered", "loss%", "peak q"
    );
    for (alpha, beta) in [(0.5, 1.5), (1.0, 3.0), (2.0, 4.0), (4.0, 8.0)] {
        for p in [Protocol::Vegas, Protocol::VegasRed] {
            let cfg = ScenarioBuilder::paper()
                .topology(|t| t.clients(clients))
                .transport(|t| {
                    t.protocol(p).vegas(VegasParams {
                        alpha,
                        beta,
                        gamma: 1.0,
                    })
                })
                .instrumentation(|i| i.duration(duration).seed(bench_seed()))
                .finish();
            let r = Scenario::run(&cfg);
            println!(
                "{:>12} {:>10} {:>10.4} {:>10.2} {:>12} {:>8.2} {:>10}",
                format!("({alpha}, {beta})"),
                if p == Protocol::Vegas { "FIFO" } else { "RED" },
                r.cov,
                r.cov_ratio(),
                r.delivered_packets,
                r.loss_percent,
                r.bottleneck_queue.peak_len
            );
        }
    }
    println!(
        "\n(With ~45 streams, aggregate target queue = 45*[alpha, beta] packets; once\n 45*alpha exceeds RED's max_th = 40 the RED gateway drops every arrival —\n the paper's Vegas/RED failure mode.)"
    );
}
