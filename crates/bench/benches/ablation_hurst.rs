//! Ablation: c.o.v. versus the Hurst parameter.
//!
//! The paper argues the c.o.v. "better reflects the burstiness of the
//! incoming traffic" than the Hurst parameter used throughout the
//! self-similarity literature. This target computes both on the *same*
//! gateway arrival series (variance-time and R/S Hurst estimates alongside
//! the c.o.v.) so the two views can be compared directly.

use tcpburst_bench::{bench_duration, bench_seed};
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};
use tcpburst_des::SimDuration;
use tcpburst_stats::{autocorrelation, hurst, index_of_dispersion};

fn main() {
    let duration = bench_duration();
    println!("# Ablation: c.o.v. vs Hurst/IDC/autocorrelation on the same arrival series, {duration} per cell");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "clients", "proto", "cov", "cov/pois", "H(var-t)", "H(R/S)", "IDC", "ac(1)"
    );
    for clients in [20usize, 39, 60] {
        for p in [Protocol::Udp, Protocol::Reno, Protocol::Vegas] {
            let cfg = ScenarioBuilder::paper()
                .topology(|t| t.clients(clients))
                .transport(|t| t.protocol(p))
                // Finer bins give the Hurst estimators more points to aggregate.
                .instrumentation(|i| {
                    i.duration(duration)
                        .seed(bench_seed())
                        .cov_bin(Some(SimDuration::from_millis(11)))
                })
                .finish();
            let r = Scenario::run(&cfg);
            let series = r.bins.to_f64();
            let h_vt = hurst::variance_time(&series);
            let h_rs = hurst::rescaled_range(&series);
            let idc = index_of_dispersion(&series);
            let ac = autocorrelation(&series, 1);
            let lag1 = ac.get(1).copied();
            let fmt = |h: Option<f64>| h.map_or("-".to_string(), |v| format!("{v:.3}"));
            println!(
                "{:>8} {:>8} {:>10.4} {:>10.2} {:>10} {:>10} {:>8.2} {:>8}",
                clients,
                p.label(),
                r.cov,
                r.cov_ratio(),
                fmt(h_vt),
                fmt(h_rs),
                idc,
                fmt(lag1)
            );
        }
    }
    println!(
        "\n(H near 0.5 = short-range dependent; the paper's point is that TCP's\n burstiness shows in the c.o.v. even where H stays unremarkable.)"
    );
}
