//! Ablation: source law.
//!
//! The self-similarity literature attributes aggregate burstiness to
//! heavy-tailed *inputs*; the paper attributes it to TCP's *modulation*.
//! This sweep crosses both factors: {CBR, Poisson, Pareto ON/OFF} inputs x
//! {UDP, Reno, Vegas} transports, reporting the gateway c.o.v. for each.
//! If the paper is right, the transport factor moves the c.o.v. more than
//! the input factor once the network is congested.

use tcpburst_bench::{bench_duration, bench_seed};
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder, SourceKind};
use tcpburst_traffic::ParetoOnOffConfig;

fn main() {
    let duration = bench_duration();
    let clients = 60;
    println!("# Ablation: source law x transport, {clients} clients, {duration} per cell");
    println!(
        "{:>14} {:>8} {:>10} {:>12} {:>8}",
        "source", "proto", "cov", "delivered", "loss%"
    );
    let sources: [(&str, SourceKind); 3] = [
        ("CBR", SourceKind::Cbr { rate: 100.0 }),
        ("Poisson", SourceKind::Poisson { rate: 100.0 }),
        (
            "ParetoOnOff",
            SourceKind::ParetoOnOff(ParetoOnOffConfig {
                peak_rate: 200.0,
                mean_on_secs: 0.5,
                mean_off_secs: 0.5,
                shape: 1.5,
            }),
        ),
    ];
    for (name, source) in sources {
        for p in [Protocol::Udp, Protocol::Reno, Protocol::Vegas] {
            let cfg = ScenarioBuilder::paper()
                .topology(|t| t.clients(clients))
                .transport(|t| t.protocol(p))
                .workload(|w| w.source(source))
                .instrumentation(|i| i.duration(duration).seed(bench_seed()))
                .finish();
            let r = Scenario::run(&cfg);
            println!(
                "{:>14} {:>8} {:>10.4} {:>12} {:>8.2}",
                name,
                p.label(),
                r.cov,
                r.delivered_packets,
                r.loss_percent
            );
        }
    }
}
