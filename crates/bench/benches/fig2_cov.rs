//! Figure 2: coefficient of variation of the aggregated traffic arriving at
//! the gateway, per round-trip propagation delay, for every protocol
//! configuration, versus the analytic Poisson reference.
//!
//! Expected shape (paper): UDP hugs the Poisson curve at every load; the
//! TCP variants separate past the congestion knee, with Reno and Reno/RED
//! far above the reference (>140% and >200% at heavy congestion) and Vegas
//! lowest among the TCPs.

use tcpburst_bench::{bench_duration, bench_seed, fig2_clients, write_figure_csv};
use tcpburst_core::experiments::Sweep;
use tcpburst_core::Protocol;

fn main() {
    let duration = bench_duration();
    let clients = fig2_clients();
    eprintln!(
        "fig2: {} protocols x {} client counts, {} each",
        Protocol::PAPER_SET.len(),
        clients.len(),
        duration
    );
    let sweep = Sweep::run(&Protocol::PAPER_SET, &clients, duration, bench_seed());
    println!("{}", sweep.fig2_cov_table());
    write_figure_csv("fig2_cov.csv", &sweep.to_csv());
    write_figure_csv("fig2_cov.svg", &sweep.fig2_cov_svg());
}
