//! Figure 3: total packets successfully transmitted (server-side goodput)
//! vs number of clients, for the five TCP configurations.
//!
//! Expected shape (paper): all configurations saturate near the bottleneck
//! capacity; plain Reno/Vegas beat their RED counterparts; Vegas at least
//! matches Reno.

use tcpburst_bench::{bench_duration, bench_seed, fig3_clients, write_figure_csv};
use tcpburst_core::experiments::Sweep;
use tcpburst_core::Protocol;

fn main() {
    let duration = bench_duration();
    let clients = fig3_clients();
    eprintln!(
        "fig3: {} protocols x {} client counts, {} each",
        Protocol::PAPER_TCP_SET.len(),
        clients.len(),
        duration
    );
    let sweep = Sweep::run(&Protocol::PAPER_TCP_SET, &clients, duration, bench_seed());
    println!("{}", sweep.fig3_throughput_table());
    write_figure_csv("fig3_throughput.csv", &sweep.to_csv());
    write_figure_csv("fig3_throughput.svg", &sweep.fig3_throughput_svg());
}
