//! Figure 4: packet-loss percentage at the gateway vs number of clients,
//! for the five TCP configurations.
//!
//! Expected shape (paper): loss grows past the 38/39-client crossover;
//! Vegas loses least; Vegas/RED loses *most* (duplicate ACKs push data into
//! an already-full RED gateway).

use tcpburst_bench::{bench_duration, bench_seed, fig3_clients, write_figure_csv};
use tcpburst_core::experiments::Sweep;
use tcpburst_core::Protocol;

fn main() {
    let duration = bench_duration();
    let clients = fig3_clients();
    eprintln!(
        "fig4: {} protocols x {} client counts, {} each",
        Protocol::PAPER_TCP_SET.len(),
        clients.len(),
        duration
    );
    let sweep = Sweep::run(&Protocol::PAPER_TCP_SET, &clients, duration, bench_seed());
    println!("{}", sweep.fig4_loss_table());
    write_figure_csv("fig4_loss.csv", &sweep.to_csv());
    write_figure_csv("fig4_loss.svg", &sweep.fig4_loss_svg());
}
