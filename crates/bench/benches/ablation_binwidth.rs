//! Ablation: c.o.v. bin width.
//!
//! The paper measures burstiness in bins of one round-trip propagation
//! delay (44 ms), arguing that statistical multiplexing lives or dies at
//! millisecond granularity. This sweep recomputes the Reno-vs-Poisson
//! c.o.v. ratio across bin widths to show the conclusion is not an artifact
//! of the 44 ms choice.

use tcpburst_bench::{bench_duration, bench_seed};
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};
use tcpburst_des::SimDuration;

fn main() {
    let duration = bench_duration();
    let clients = 60;
    println!("# Ablation: c.o.v. bin width, {clients} clients, {duration} per cell");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "bin(ms)", "proto", "cov", "poisson", "ratio"
    );
    for bin_ms in [11u64, 22, 44, 88, 176, 352, 1000] {
        for p in [Protocol::Udp, Protocol::Reno, Protocol::Vegas] {
            let cfg = ScenarioBuilder::paper()
                .topology(|t| t.clients(clients))
                .transport(|t| t.protocol(p))
                .instrumentation(|i| {
                    i.duration(duration)
                        .seed(bench_seed())
                        .cov_bin(Some(SimDuration::from_millis(bin_ms)))
                })
                .finish();
            let r = Scenario::run(&cfg);
            println!(
                "{:>10} {:>10} {:>12.4} {:>12.4} {:>10.2}",
                bin_ms,
                p.label(),
                r.cov,
                r.poisson_cov,
                r.cov_ratio()
            );
        }
    }
    println!(
        "\n(The Poisson reference falls as 1/sqrt(bin). TCP Reno's excess peaks at\n RTT-to-few-RTT bins and washes out at second-scale bins: the burstiness is\n an RTT-scale, oscillatory phenomenon — the scale where statistical\n multiplexing lives, and one coarse Hurst aggregation never sees.)"
    );
}
