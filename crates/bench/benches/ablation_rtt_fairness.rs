//! Ablation: heterogeneous round-trip times.
//!
//! The paper's topology gives every client the same RTT, which flatters
//! both protocols' fairness. Real distributed systems do not. This sweep
//! spreads the clients' access delays linearly (client M's delay up to
//! `1 + spread` times client 1's) and reports Jain's fairness index: Reno's
//! throughput bias against long-RTT flows (`1/RTT` scaling) versus Vegas's
//! queue-based sharing.

use tcpburst_bench::{bench_duration, bench_seed};
use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};
use tcpburst_stats::RunningStats;

fn main() {
    let duration = bench_duration();
    let clients = 50;
    println!(
        "# Ablation: RTT heterogeneity vs fairness, {clients} clients, {duration} per cell"
    );
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>14} {:>14}",
        "spread", "proto", "fairness", "delivered", "min flow", "max flow"
    );
    for spread in [0.0, 1.0, 3.0, 9.0] {
        for p in [Protocol::Reno, Protocol::Vegas] {
            let cfg = ScenarioBuilder::paper()
                .topology(|t| t.clients(clients).rtt_spread(spread))
                .transport(|t| t.protocol(p))
                .instrumentation(|i| i.duration(duration).seed(bench_seed()))
                .finish();
            let r = Scenario::run(&cfg);
            let flows: RunningStats = r.flows.iter().map(|f| f.delivered as f64).collect();
            println!(
                "{:>8} {:>8} {:>10.4} {:>12} {:>14.0} {:>14.0}",
                spread,
                p.label(),
                r.fairness,
                r.delivered_packets,
                flows.min(),
                flows.max()
            );
        }
    }
    println!(
        "\n(spread s: client i's access delay = 2ms * (1 + s*i/(M-1)); at s = 9 the\n longest path has a 10x base RTT.)"
    );
}
