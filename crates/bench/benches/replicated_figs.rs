//! Replicated figures: every Figure 2/3/4/13 metric as mean ± 95% CI over
//! independent seeds, quantifying how much of each curve is signal.
//!
//! Honours `TCPBURST_SECS` like the single-run figure targets and
//! `TCPBURST_REPS` for the number of seeds (default 5).

use std::env;

use tcpburst_bench::bench_duration;
use tcpburst_core::{Protocol, ReplicatedSweep};

fn main() {
    let duration = bench_duration();
    let reps: u64 = env::var("TCPBURST_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let seeds: Vec<u64> = (0..reps).map(|i| 0x1CDC_2000 + i).collect();
    // A coarser client grid than the single-run figures keeps the
    // replicated sweep affordable: 3 regimes x protocols x seeds.
    let clients = [20usize, 39, 60];
    eprintln!(
        "replicated figures: {} protocols x {:?} clients x {} seeds, {} each",
        Protocol::PAPER_SET.len(),
        clients,
        seeds.len(),
        duration
    );
    let sweep = ReplicatedSweep::run(&Protocol::PAPER_SET, &clients, duration, &seeds);
    println!("{}", sweep.fig2_cov_table());
    println!("{}", sweep.fig3_throughput_table());
    println!("{}", sweep.fig4_loss_table());
    println!("{}", sweep.fig13_ratio_table());
}
