//! Property tests: the calendar-queue backend must be observationally
//! identical to the binary-heap reference under random push/pop/cancel
//! interleavings — same `(time, seq)` pop order, same lengths, no events
//! lost or duplicated across bucket resizes.
//!
//! Each random `u64` opcode drives both backends through the same operation;
//! divergence at any step is a failure. Times are drawn from a range wide
//! enough to force calendar-width recalibration and from a narrow range that
//! piles events into few buckets, so both resize directions get exercised.

use proptest::prelude::*;
use tcpburst_des::{EventKey, EventQueue, QueueBackend, SimTime};

/// A step decoded from one opcode: push (with a time), pop, or cancel one
/// of the still-live keys.
fn run_interleaving(ops: &[u64], time_range: u64) -> Result<(), TestCaseError> {
    let mut cal: EventQueue<u64> = EventQueue::with_capacity_and_backend(0, QueueBackend::Calendar);
    let mut heap: EventQueue<u64> = EventQueue::with_capacity_and_backend(0, QueueBackend::BinaryHeap);
    // Keys live per-backend, but index i always names the same logical event.
    let mut cal_keys: Vec<(EventKey, u64)> = Vec::new();
    let mut heap_live: Vec<u64> = Vec::new(); // payloads cancelled on cal, pending on heap
    let mut payload = 0u64;

    for &op in ops {
        match op % 4 {
            // Push twice as often as pop/cancel so the queues grow.
            0 | 1 => {
                let t = SimTime::from_nanos((op / 4) % time_range);
                let key = cal.push_keyed(t, payload);
                heap.push(t, payload);
                cal_keys.push((key, payload));
                payload += 1;
            }
            2 => {
                // The heap cannot cancel, so emulate: pop the heap and skip
                // payloads the calendar deleted in place.
                let got = cal.pop();
                let want = loop {
                    match heap.pop() {
                        Some((t, p)) if heap_live.contains(&p) => {
                            heap_live.retain(|&x| x != p);
                            let _ = t;
                        }
                        other => break other,
                    }
                };
                prop_assert_eq!(got, want, "pop diverged");
                if let Some((_, p)) = got {
                    cal_keys.retain(|&(_, kp)| kp != p);
                }
            }
            _ => {
                if !cal_keys.is_empty() {
                    let (key, p) = cal_keys.remove((op as usize / 4) % cal_keys.len());
                    let cancelled = cal.cancel(key);
                    prop_assert_eq!(cancelled, Some(p), "live key failed to cancel");
                    heap_live.push(p);
                }
            }
        }
        prop_assert_eq!(
            cal.len() + heap_live.len(),
            heap.len(),
            "lengths diverged (modulo emulated cancels)"
        );
    }

    // Drain both; remaining pop order must agree exactly.
    loop {
        let got = cal.pop();
        let want = loop {
            match heap.pop() {
                Some((_, p)) if heap_live.contains(&p) => heap_live.retain(|&x| x != p),
                other => break other,
            }
        };
        prop_assert_eq!(got, want, "drain diverged");
        if got.is_none() {
            break;
        }
    }
    prop_assert!(cal.is_empty() && heap.is_empty());
    Ok(())
}

proptest! {
    /// Wide time range: events spread across many calendar years, forcing
    /// width recalibration and the direct-search fallback path.
    #[test]
    fn prop_matches_heap_wide_times(ops in proptest::collection::vec(0u64..u64::MAX, 0..400)) {
        run_interleaving(&ops, u64::MAX / 8)?;
    }

    /// Narrow time range: heavy collisions pile events into few buckets and
    /// drive the FIFO tie-break plus grow/shrink resizes.
    #[test]
    fn prop_matches_heap_narrow_times(ops in proptest::collection::vec(0u64..u64::MAX, 0..400)) {
        run_interleaving(&ops, 1_000)?;
    }

    /// Degenerate range: many events at identical timestamps — pure
    /// sequence-number ordering.
    #[test]
    fn prop_matches_heap_identical_times(ops in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
        run_interleaving(&ops, 4)?;
    }

    /// Batch drain is event-for-event equivalent to single-pop on both
    /// backends: the concatenated `pop_due_run` batches reproduce the exact
    /// pop sequence, and each batch holds one timestamp's full run.
    #[test]
    fn prop_batch_drain_equals_single_pop(
        times in proptest::collection::vec(0u64..2_000, 0..400),
        horizon in 0u64..2_500,
    ) {
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut single: EventQueue<usize> = EventQueue::with_capacity_and_backend(0, backend);
            let mut batched: EventQueue<usize> = EventQueue::with_capacity_and_backend(0, backend);
            for (i, &t) in times.iter().enumerate() {
                single.push(SimTime::from_nanos(t), i);
                batched.push(SimTime::from_nanos(t), i);
            }
            let horizon = SimTime::from_nanos(horizon);
            let mut popped: Vec<(u64, usize)> = Vec::new();
            while let Some((t, e)) = single.pop_due(horizon) {
                popped.push((t.as_nanos(), e));
            }
            let mut drained: Vec<(u64, usize)> = Vec::new();
            let mut batch: Vec<usize> = Vec::new();
            while let Some(t) = batched.pop_due_run(horizon, &mut batch) {
                // All prior runs strictly precede this one in time.
                if let Some(&(prev, _)) = drained.last() {
                    prop_assert!(prev < t.as_nanos(), "runs out of order");
                }
                drained.extend(batch.drain(..).map(|e| (t.as_nanos(), e)));
            }
            prop_assert_eq!(&popped, &drained, "batch drain diverged from single-pop");
            prop_assert_eq!(single.len(), batched.len());
        }
    }

    /// Push-only growth then full drain: no event lost across the resize
    /// cascade, pop order globally sorted.
    #[test]
    fn prop_no_lost_events_across_resizes(times in proptest::collection::vec(0u64..10_000_000, 1..600)) {
        let mut q: EventQueue<usize> =
            EventQueue::with_capacity_and_backend(0, QueueBackend::Calendar);
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort();
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_nanos(), i)).collect();
        prop_assert_eq!(got, expected);
    }
}
