//! The calendar-queue backend of the future-event list.
//!
//! A calendar queue (Brown 1988) hashes events by time into an array of
//! buckets — "days" on a calendar whose "year" spans `nbuckets × width`
//! nanoseconds. Dequeueing walks the calendar from the current day forward;
//! because the days partition time, the first in-window event found is the
//! global minimum. With the bucket count resized to track the population and
//! the bucket width re-estimated from the observed inter-event gaps, both
//! enqueue and dequeue are O(1) amortized, versus the binary heap's
//! O(log n) sift per operation.
//!
//! Two representation choices keep the constant factor below the heap's:
//! the bucket width is always a power of two, so hashing a timestamp to a
//! day is a shift-and-mask instead of a 64-bit division, and an occupancy
//! bitmap (one bit per bucket) lets the dequeue scan jump over runs of
//! empty days with `trailing_zeros` instead of touching their `Vec`
//! headers.
//!
//! Unlike a heap, buckets also support *deletion by key*: an event whose
//! `(time, seq)` is known can be removed in place, which is what makes the
//! scheduler's eager timer cancellation possible.
//!
//! Determinism: every structural decision (bucket index, resize trigger,
//! width estimate) is a pure function of the pushed `(time, seq)` sequence,
//! so the pop order is exactly the ascending `(time, seq)` order regardless
//! of resize history — property-tested against a [`std::collections::BinaryHeap`]
//! reference in `tests/prop_calendar.rs`.

use std::cell::Cell;

use crate::time::SimTime;

/// One scheduled event.
#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

/// Fewest buckets the calendar ever holds.
const MIN_BUCKETS: usize = 4;
/// Most buckets the calendar ever holds (bounds memory on hostile inputs).
const MAX_BUCKETS: usize = 1 << 20;
/// log2 of the bucket width before the first calibration (2^20 ns ≈ 1 ms —
/// the first resize replaces it with an estimate from the live population).
const DEFAULT_SHIFT: u32 = 20;
/// Narrowest bucket the estimator will pick (2 ns): keeping the shift ≥ 1
/// means a day number `nanos >> shift` can never be `u64::MAX`, so `day + 1`
/// in the scan arithmetic cannot overflow.
const MIN_SHIFT: u32 = 1;
/// Widest bucket the estimator will pick (2^40 ns ≈ 18 simulated minutes).
const MAX_SHIFT: u32 = 40;

#[derive(Debug)]
pub(crate) struct Calendar<E> {
    /// Each bucket is sorted *descending* by `(time, seq)` so the bucket
    /// minimum pops from the tail in O(1).
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set iff the bucket is nonempty. The dequeue scan
    /// works word-at-a-time on this map, so a year of empty days costs
    /// `nbuckets / 64` word tests instead of `nbuckets` pointer chases.
    occupied: Vec<u64>,
    /// log2 of the bucket width ("day" length = `1 << shift` nanoseconds).
    shift: u32,
    len: usize,
    /// The dequeue scan's current day number (`nanos >> shift`, un-masked).
    ///
    /// `Cell` so [`Calendar::peek`] (`&self`) can persist scan progress:
    /// advancing past buckets that were verified empty-in-window is a pure
    /// accelerator and never changes what pops next.
    cur_day: Cell<u64>,
    /// Whether the width has been estimated from live data yet.
    calibrated: bool,
}

impl<E> Calendar<E> {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let nbuckets = (capacity / 2)
            .max(MIN_BUCKETS)
            .next_power_of_two()
            .min(MAX_BUCKETS);
        let per_bucket = capacity / nbuckets + 1;
        Calendar {
            buckets: (0..nbuckets)
                .map(|_| Vec::with_capacity(per_bucket))
                .collect(),
            occupied: vec![0; nbuckets.div_ceil(64)],
            shift: DEFAULT_SHIFT,
            len: 0,
            cur_day: Cell::new(0),
            calibrated: false,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum()
    }

    #[inline]
    fn day_of(&self, nanos: u64) -> u64 {
        nanos >> self.shift
    }

    #[inline]
    fn bucket_of_day(&self, day: u64) -> usize {
        (day as usize) & (self.buckets.len() - 1)
    }

    #[inline]
    fn mark_occupied(&mut self, idx: usize) {
        self.occupied[idx >> 6] |= 1 << (idx & 63);
    }

    #[inline]
    fn mark_empty(&mut self, idx: usize) {
        self.occupied[idx >> 6] &= !(1 << (idx & 63));
    }

    pub(crate) fn push(&mut self, entry: Entry<E>) {
        let day = self.day_of(entry.time.as_nanos());
        // An event landing before the current scan day would be skipped by
        // the forward walk; rewind the scan to it.
        if day < self.cur_day.get() {
            self.cur_day.set(day);
        }
        let idx = self.bucket_of_day(day);
        let bucket = &mut self.buckets[idx];
        let key = (entry.time, entry.seq);
        // Buckets are sorted descending, so the tail is the bucket minimum.
        // A well-calibrated ring keeps buckets near-empty, and seq numbers
        // grow monotonically, so most pushes append at the tail.
        match bucket.last() {
            Some(tail) if (tail.time, tail.seq) < key => {
                let pos = bucket.partition_point(|e| (e.time, e.seq) > key);
                bucket.insert(pos, entry);
            }
            _ => bucket.push(entry),
        }
        self.mark_occupied(idx);
        self.len += 1;

        if self.len > self.buckets.len() {
            // Keep the table at least twice the population: a mostly-empty
            // ring makes the average day hold ≲1 event, so a dequeue is one
            // bitmap hop instead of a sorted-bucket walk.
            self.resize(2 * self.len);
        } else if !self.calibrated && self.len >= 32 {
            // First calibration: the default width is a guess; re-estimate
            // from the live population once it is big enough to sample.
            self.resize(2 * self.len);
        }
    }

    /// First occupied bucket at ring distance `>= skip` from the bucket of
    /// `from_day`, probing at most `limit` buckets; returns `(index, ring
    /// distance)`.
    fn next_occupied(&self, from_day: u64, skip: usize, limit: usize) -> Option<(usize, usize)> {
        let nbuckets = self.buckets.len();
        let mask = nbuckets - 1;
        let start = self.bucket_of_day(from_day);
        let mut dist = skip;
        while dist < limit {
            let idx = (start + dist) & mask;
            let in_word = idx & 63;
            // Bits of this word at or above the current position.
            let word = self.occupied[idx >> 6] >> in_word;
            if word != 0 {
                let hop = word.trailing_zeros() as usize;
                // The hit must stay inside this word *and* the probe limit;
                // past the word end, fall through to the next word.
                if in_word + hop <= 63 && dist + hop < limit {
                    return Some(((idx + hop) & mask, dist + hop));
                }
                if dist + (64 - in_word) >= limit {
                    return None;
                }
            }
            dist += 64 - in_word;
        }
        None
    }

    /// Locates the bucket holding the global minimum `(time, seq)` entry,
    /// advancing the scan state past verified-empty days on the way.
    ///
    /// Must not be called on an empty calendar.
    fn locate_min(&self) -> usize {
        debug_assert!(self.len > 0, "locate_min on empty calendar");
        let nbuckets = self.buckets.len();
        let day = self.cur_day.get();
        // Fast path: the scan is already parked on the minimum's day (the
        // common case right after a peek, or when a popped day holds more).
        let idx = self.bucket_of_day(day);
        if let Some(e) = self.buckets[idx].last() {
            if self.day_of(e.time.as_nanos()) <= day {
                return idx;
            }
        }
        // One calendar year: jump occupied bucket to occupied bucket. Days
        // partition time and are scanned in order, so the first entry found
        // belonging to its probe day is the global minimum. An occupied
        // bucket whose minimum lies in a *later* year is skipped over.
        let mut skip = 1;
        while let Some((idx, dist)) = self.next_occupied(day, skip, nbuckets) {
            let e = self.buckets[idx].last().expect("occupied bucket is nonempty");
            let e_day = self.day_of(e.time.as_nanos());
            if e_day <= day + dist as u64 {
                self.cur_day.set(e_day);
                return idx;
            }
            skip = dist + 1;
        }
        // Rare: every pending event lies beyond one full calendar year.
        // Fall back to a direct search across bucket minima.
        let (key, best) = self
            .iter_occupied()
            .map(|i| {
                let e = self.buckets[i].last().expect("occupied bucket is nonempty");
                ((e.time, e.seq), i)
            })
            .min_by_key(|&(key, _)| key)
            .expect("len > 0 but all buckets empty");
        self.cur_day.set(self.day_of(key.0.as_nanos()));
        best
    }

    /// Indices of the nonempty buckets, in bucket order.
    fn iter_occupied(&self) -> impl Iterator<Item = usize> + '_ {
        self.occupied.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }

    /// Timestamp of the earliest pending event.
    pub(crate) fn peek(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let idx = self.locate_min();
        self.buckets[idx].last().map(|e| e.time)
    }

    pub(crate) fn pop(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        let idx = self.locate_min();
        Some(self.pop_from(idx))
    }

    /// Pops the minimum only if it is due by `horizon` — one bucket scan
    /// where a `peek` + `pop` pair would do two.
    pub(crate) fn pop_due(&mut self, horizon: SimTime) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        let idx = self.locate_min();
        let min = self.buckets[idx].last().expect("locate_min found an entry");
        if min.time > horizon {
            return None;
        }
        Some(self.pop_from(idx))
    }

    fn pop_from(&mut self, idx: usize) -> Entry<E> {
        let entry = self.buckets[idx].pop().expect("locate_min found an entry");
        if self.buckets[idx].is_empty() {
            self.mark_empty(idx);
        }
        self.len -= 1;
        self.maybe_shrink();
        entry
    }

    /// Removes the event with exactly this `(time, seq)`, if still queued.
    pub(crate) fn cancel(&mut self, time: SimTime, seq: u64) -> Option<E> {
        let idx = self.bucket_of_day(self.day_of(time.as_nanos()));
        let bucket = &mut self.buckets[idx];
        let key = (time, seq);
        let pos = bucket.partition_point(|e| (e.time, e.seq) > key);
        if pos < bucket.len() && bucket[pos].time == time && bucket[pos].seq == seq {
            let entry = bucket.remove(pos);
            if self.buckets[idx].is_empty() {
                self.mark_empty(idx);
            }
            self.len -= 1;
            self.maybe_shrink();
            Some(entry.event)
        } else {
            None
        }
    }

    fn maybe_shrink(&mut self) {
        let nbuckets = self.buckets.len();
        // 4x hysteresis against the grow trigger (`len > nbuckets`) so a
        // population oscillating around a threshold cannot thrash resizes.
        if nbuckets > MIN_BUCKETS && self.len < nbuckets / 8 {
            self.resize(2 * self.len);
        }
    }

    /// Rebuilds the calendar with `new_nbuckets` buckets and a bucket width
    /// re-estimated from the live population. O(n), amortized O(1) because
    /// it only triggers on doubling/halving thresholds.
    fn resize(&mut self, new_nbuckets: usize) {
        let new_nbuckets = new_nbuckets
            .clamp(MIN_BUCKETS, MAX_BUCKETS)
            .next_power_of_two();
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        if let Some(shift) = estimate_shift(&entries) {
            self.shift = shift;
        }
        self.calibrated = true;
        self.buckets = (0..new_nbuckets).map(|_| Vec::new()).collect();
        self.occupied = vec![0; new_nbuckets.div_ceil(64)];
        let mask = new_nbuckets - 1;
        let shift = self.shift;
        for entry in entries {
            let idx = ((entry.time.as_nanos() >> shift) as usize) & mask;
            self.buckets[idx].push(entry);
        }
        for (idx, bucket) in self.buckets.iter_mut().enumerate() {
            if !bucket.is_empty() {
                self.occupied[idx >> 6] |= 1 << (idx & 63);
                // (time, seq) is unique, so unstable sort is deterministic.
                bucket.sort_unstable_by(|a, b| (b.time, b.seq).cmp(&(a.time, a.seq)));
            }
        }
        // Re-park the scan on the earliest pending event.
        let min_nanos = self
            .buckets
            .iter()
            .filter_map(|b| b.last().map(|e| e.time.as_nanos()))
            .min()
            .unwrap_or(0);
        self.cur_day.set(min_nanos >> self.shift);
    }
}

/// Estimates a bucket shift (log2 width) targeting one event per day,
/// from a deterministic sample of the live population. `None` when there
/// are too few distinct timestamps to tell.
///
/// A strided sample of `k` of the `n` timestamps, sorted, has consecutive
/// gaps averaging `span / k` over the densely-populated core; the *median*
/// sampled gap ignores the handful of giant gaps contributed by far-future
/// outliers (retransmission timers parked hundreds of milliseconds out).
/// Rescaling that median by `k / n` recovers the core inter-event gap — the
/// ideal day width — without ever sorting the full population.
fn estimate_shift<E>(entries: &[Entry<E>]) -> Option<u32> {
    const SAMPLE: usize = 128;
    let n = entries.len();
    if n < 2 {
        return None;
    }
    let step = (n / SAMPLE).max(1);
    let mut sample: Vec<u64> = entries
        .iter()
        .step_by(step)
        .take(SAMPLE)
        .map(|e| e.time.as_nanos())
        .collect();
    sample.sort_unstable();
    let mut gaps: Vec<u64> = sample
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&g| g > 0)
        .collect();
    if gaps.is_empty() {
        return None;
    }
    gaps.sort_unstable();
    let median = gaps[gaps.len() / 2];
    // median ≈ core_span / sample_len, so median * sample_len / n ≈ the
    // core inter-event gap. The u128 widening cannot overflow.
    let width = ((u128::from(median) * sample.len() as u128 / n as u128) as u64).max(2);
    let width = width.next_power_of_two();
    Some(width.trailing_zeros().clamp(MIN_SHIFT, MAX_SHIFT))
}
