//! The calendar-queue backend of the future-event list.
//!
//! A calendar queue (Brown 1988) hashes events by time into an array of
//! buckets — "days" on a calendar whose "year" spans `nbuckets × width`
//! nanoseconds. Dequeueing walks the calendar from the current day forward;
//! because the days partition time, the first in-window event found is the
//! global minimum. With the bucket count resized to track the population and
//! the bucket width re-estimated from the observed inter-event gaps, both
//! enqueue and dequeue are O(1) amortized, versus the binary heap's
//! O(log n) sift per operation.
//!
//! Two representation choices keep the constant factor below the heap's:
//! the bucket width is always a power of two, so hashing a timestamp to a
//! day is a shift-and-mask instead of a 64-bit division, and an occupancy
//! bitmap (one bit per bucket) lets the dequeue scan jump over runs of
//! empty days with `trailing_zeros` instead of touching their `Vec`
//! headers.
//!
//! Population-triggered resizes alone cannot keep the width honest: a
//! workload whose *distribution* drifts at constant population — the classic
//! hold benchmark's event pack compresses from its initial span to a few
//! multiples of the mean increment — strands the width estimate and piles
//! the whole population into a handful of days. Following the SNOOPy
//! calendar queue (Tan & Thng 2000), every operation therefore adds its
//! structural work (entries displaced by an insert, buckets probed by a
//! scan) to a cost accumulator, and a sustained average above
//! [`COST_THRESHOLD`] triggers a recalibrating rebuild no matter what the
//! population did.
//!
//! Unlike a heap, buckets also support *deletion by key*: an event whose
//! `(time, seq)` is known can be removed in place, which is what makes the
//! scheduler's eager timer cancellation possible.
//!
//! Determinism: every structural decision (bucket index, resize trigger,
//! width estimate) is a pure function of the operation sequence, so the pop
//! order is exactly the ascending `(time, seq)` order regardless of resize
//! history — property-tested against a [`std::collections::BinaryHeap`]
//! reference in `tests/prop_calendar.rs`.

use std::cell::Cell;

use crate::time::SimTime;

/// One scheduled event.
#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

/// Fewest buckets the calendar ever holds.
const MIN_BUCKETS: usize = 4;
/// Most buckets the calendar ever holds (bounds memory on hostile inputs).
const MAX_BUCKETS: usize = 1 << 20;
/// log2 of the bucket width before the first calibration (2^20 ns ≈ 1 ms —
/// the first resize replaces it with an estimate from the live population).
const DEFAULT_SHIFT: u32 = 20;
/// Narrowest bucket the estimator will pick (2 ns): keeping the shift ≥ 1
/// means a day number `nanos >> shift` can never be `u64::MAX`, so `day + 1`
/// in the scan arithmetic cannot overflow.
const MIN_SHIFT: u32 = 1;
/// Widest bucket the estimator will pick (2^40 ns ≈ 18 simulated minutes).
const MAX_SHIFT: u32 = 40;
/// Events per bucket the resizer aims for.
///
/// The classic calendar targets one event per day, but a table sized that
/// sparsely stops paying off below a few thousand pending events: the ring
/// outgrows cache while most days sit empty, and the hold benchmark showed
/// the heap winning at 1k–10k pending. Aiming for a couple of events per
/// day halves the ring's footprint and the bitmap scan distance; the
/// descending-sorted buckets keep the per-bucket walk at one or two
/// comparisons.
const TARGET_LOAD: usize = 2;
/// Average structural work per operation (entries displaced on insert,
/// buckets probed on scan) above which the table recalibrates. A healthy
/// table averages ≲ [`TARGET_LOAD`]; a stranded width averages hundreds.
const COST_THRESHOLD: u64 = 8;
/// Operations between cost checks when the table is healthy.
const BASE_CHECK_OPS: u32 = 1 << 10;
/// Ceiling for the exponential back-off when recalibration cannot help
/// (e.g. every pending event shares one timestamp): checks at this cadence
/// make the O(n) rebuild attempt amortized O(1) per operation.
const MAX_CHECK_OPS: u32 = 1 << 20;

#[derive(Debug)]
pub(crate) struct Calendar<E> {
    /// Each bucket is sorted *descending* by `(time, seq)` so the bucket
    /// minimum pops from the tail in O(1).
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set iff the bucket is nonempty. The dequeue scan
    /// works word-at-a-time on this map, so a year of empty days costs
    /// `nbuckets / 64` word tests instead of `nbuckets` pointer chases.
    occupied: Vec<u64>,
    /// log2 of the bucket width ("day" length = `1 << shift` nanoseconds).
    shift: u32,
    len: usize,
    /// The dequeue scan's current day number (`nanos >> shift`, un-masked).
    ///
    /// `Cell` so [`Calendar::peek`] (`&self`) can persist scan progress:
    /// advancing past buckets that were verified empty-in-window is a pure
    /// accelerator and never changes what pops next.
    cur_day: Cell<u64>,
    /// Whether the width has been estimated from live data yet.
    calibrated: bool,
    /// Structural work accumulated since the last cost check. `Cell` because
    /// scans also run under `&self` (see `cur_day`); the cost only ever
    /// influences *when* the table rebuilds, never what pops next.
    cost: Cell<u64>,
    /// Operations since the last cost check.
    ops_since_check: u32,
    /// Current cost-check cadence (doubles while rebuilds cannot help).
    check_ops: u32,
}

impl<E> Calendar<E> {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let nbuckets = (capacity / TARGET_LOAD)
            .max(MIN_BUCKETS)
            .next_power_of_two()
            .min(MAX_BUCKETS);
        let per_bucket = capacity / nbuckets + 1;
        Calendar {
            buckets: (0..nbuckets)
                .map(|_| Vec::with_capacity(per_bucket))
                .collect(),
            occupied: vec![0; nbuckets.div_ceil(64)],
            shift: DEFAULT_SHIFT,
            len: 0,
            cur_day: Cell::new(0),
            calibrated: false,
            cost: Cell::new(0),
            ops_since_check: 0,
            check_ops: BASE_CHECK_OPS,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum()
    }

    #[inline]
    fn day_of(&self, nanos: u64) -> u64 {
        nanos >> self.shift
    }

    #[inline]
    fn bucket_of_day(&self, day: u64) -> usize {
        (day as usize) & (self.buckets.len() - 1)
    }

    #[inline]
    fn mark_occupied(&mut self, idx: usize) {
        self.occupied[idx >> 6] |= 1 << (idx & 63);
    }

    #[inline]
    fn mark_empty(&mut self, idx: usize) {
        self.occupied[idx >> 6] &= !(1 << (idx & 63));
    }

    #[inline]
    fn add_cost(&self, units: u64) {
        self.cost.set(self.cost.get() + units);
    }

    /// Counts one operation toward the cost check, recalibrating when the
    /// recent average says the day width no longer fits the distribution.
    #[inline]
    fn note_op(&mut self) {
        self.ops_since_check += 1;
        if self.ops_since_check >= self.check_ops {
            self.check_cost();
        }
    }

    fn check_cost(&mut self) {
        let ops = u64::from(self.ops_since_check);
        let cost = self.cost.get();
        self.ops_since_check = 0;
        self.cost.set(0);
        if cost <= COST_THRESHOLD * ops {
            self.check_ops = BASE_CHECK_OPS;
            return;
        }
        // Operations are running hot. Before paying the O(n) rebuild, probe
        // whether it could even help: re-estimate the geometry from a strided
        // sample of the live buckets (O(nbuckets)). Some workloads are
        // expensive at *any* width — e.g. a dense burst in front of a long
        // sparse tail — and rebuilding into identical geometry is pure loss;
        // ±1 shift of hysteresis absorbs sampling noise so such workloads
        // cannot buy a rebuild every check. When even probing cannot help,
        // back off exponentially so degenerate inputs (every event at one
        // timestamp) amortize the probe cost to O(1) per operation.
        let target_nbuckets = (self.len / TARGET_LOAD)
            .clamp(MIN_BUCKETS, MAX_BUCKETS)
            .next_power_of_two();
        let productive = target_nbuckets != self.buckets.len()
            || self
                .candidate_shift()
                .is_some_and(|s| s.abs_diff(self.shift) > 1);
        if productive {
            self.resize(self.len / TARGET_LOAD);
            self.check_ops = BASE_CHECK_OPS;
        } else {
            self.check_ops = (self.check_ops * 2).min(MAX_CHECK_OPS);
        }
    }

    /// The shift a rebuild would pick right now, estimated from a strided
    /// sample of the live buckets without draining them.
    fn candidate_shift(&self) -> Option<u32> {
        const SAMPLE: usize = 128;
        let step = (self.len / SAMPLE).max(1);
        let mut sample = Vec::with_capacity(SAMPLE);
        let mut next = 0usize;
        let mut seen = 0usize;
        'outer: for bucket in &self.buckets {
            while next < seen + bucket.len() {
                sample.push(bucket[next - seen].time.as_nanos());
                next += step;
                if sample.len() == SAMPLE {
                    break 'outer;
                }
            }
            seen += bucket.len();
        }
        estimate_shift_from(sample, self.len)
    }

    pub(crate) fn push(&mut self, entry: Entry<E>) {
        let day = self.day_of(entry.time.as_nanos());
        // An event landing before the current scan day would be skipped by
        // the forward walk; rewind the scan to it.
        if day < self.cur_day.get() {
            self.cur_day.set(day);
        }
        let idx = self.bucket_of_day(day);
        let bucket = &mut self.buckets[idx];
        let key = (entry.time, entry.seq);
        // Buckets are sorted descending, so the tail is the bucket minimum.
        // A well-calibrated ring keeps buckets near-empty, and seq numbers
        // grow monotonically, so most pushes append at the tail.
        match bucket.last() {
            Some(tail) if (tail.time, tail.seq) < key => {
                let pos = bucket.partition_point(|e| (e.time, e.seq) > key);
                let displaced = (bucket.len() - pos) as u64;
                bucket.insert(pos, entry);
                self.add_cost(displaced);
            }
            _ => bucket.push(entry),
        }
        self.mark_occupied(idx);
        self.len += 1;

        if self.len > 2 * TARGET_LOAD * self.buckets.len() {
            // Let the load drift up to 2x the target before rebuilding, so
            // the table doubles at most once per population doubling.
            self.resize(self.len / TARGET_LOAD);
        } else if !self.calibrated && self.len >= 32 {
            // First calibration: the default width is a guess; re-estimate
            // from the live population once it is big enough to sample.
            self.resize(self.len / TARGET_LOAD);
        } else {
            self.note_op();
        }
    }

    /// First occupied bucket at ring distance `>= skip` from the bucket of
    /// `from_day`, probing at most `limit` buckets; returns `(index, ring
    /// distance)`.
    fn next_occupied(&self, from_day: u64, skip: usize, limit: usize) -> Option<(usize, usize)> {
        let nbuckets = self.buckets.len();
        let mask = nbuckets - 1;
        let start = self.bucket_of_day(from_day);
        let mut dist = skip;
        while dist < limit {
            let idx = (start + dist) & mask;
            let in_word = idx & 63;
            // Bits of this word at or above the current position.
            let word = self.occupied[idx >> 6] >> in_word;
            if word != 0 {
                let hop = word.trailing_zeros() as usize;
                // The hit must stay inside this word *and* the probe limit;
                // past the word end, fall through to the next word.
                if in_word + hop <= 63 && dist + hop < limit {
                    return Some(((idx + hop) & mask, dist + hop));
                }
                if dist + (64 - in_word) >= limit {
                    return None;
                }
            }
            dist += 64 - in_word;
        }
        None
    }

    /// Locates the bucket holding the global minimum `(time, seq)` entry,
    /// advancing the scan state past verified-empty days on the way.
    ///
    /// Must not be called on an empty calendar.
    fn locate_min(&self) -> usize {
        debug_assert!(self.len > 0, "locate_min on empty calendar");
        let nbuckets = self.buckets.len();
        let day = self.cur_day.get();
        // Fast path: the scan is already parked on the minimum's day (the
        // common case right after a peek, or when a popped day holds more).
        let idx = self.bucket_of_day(day);
        if let Some(e) = self.buckets[idx].last() {
            if self.day_of(e.time.as_nanos()) <= day {
                return idx;
            }
        }
        // One calendar year: jump occupied bucket to occupied bucket. Days
        // partition time and are scanned in order, so the first entry found
        // belonging to its probe day is the global minimum. An occupied
        // bucket whose minimum lies in a *later* year is skipped over.
        let mut probes = 0u64;
        let mut skip = 1;
        while let Some((idx, dist)) = self.next_occupied(day, skip, nbuckets) {
            probes += 1;
            let e = self.buckets[idx].last().expect("occupied bucket is nonempty");
            let e_day = self.day_of(e.time.as_nanos());
            if e_day <= day + dist as u64 {
                self.cur_day.set(e_day);
                self.add_cost(probes + (dist as u64) / 64);
                return idx;
            }
            skip = dist + 1;
        }
        // Rare: every pending event lies beyond one full calendar year.
        // Fall back to a direct search across bucket minima.
        self.add_cost(probes + (nbuckets as u64) / 64 + self.len as u64);
        let (key, best) = self
            .iter_occupied()
            .map(|i| {
                let e = self.buckets[i].last().expect("occupied bucket is nonempty");
                ((e.time, e.seq), i)
            })
            .min_by_key(|&(key, _)| key)
            .expect("len > 0 but all buckets empty");
        self.cur_day.set(self.day_of(key.0.as_nanos()));
        best
    }

    /// Indices of the nonempty buckets, in bucket order.
    fn iter_occupied(&self) -> impl Iterator<Item = usize> + '_ {
        self.occupied.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }

    /// Timestamp of the earliest pending event.
    pub(crate) fn peek(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let idx = self.locate_min();
        self.buckets[idx].last().map(|e| e.time)
    }

    pub(crate) fn pop(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        let idx = self.locate_min();
        Some(self.pop_from(idx))
    }

    /// Pops the minimum only if it is due by `horizon` — one bucket scan
    /// where a `peek` + `pop` pair would do two.
    pub(crate) fn pop_due(&mut self, horizon: SimTime) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        let idx = self.locate_min();
        let min = self.buckets[idx].last().expect("locate_min found an entry");
        if min.time > horizon {
            return None;
        }
        Some(self.pop_from(idx))
    }

    /// Pops *every* entry sharing the earliest pending timestamp, provided
    /// it is at most `horizon`, appending the events to `out` in ascending
    /// `seq` (FIFO) order. Returns the shared timestamp, or `None` when
    /// nothing is due.
    ///
    /// Equal timestamps hash to the same day, so the whole run lives in one
    /// bucket; buckets are sorted descending by `(time, seq)`, so the run is
    /// exactly the bucket's tail and popping tail-first yields ascending
    /// `seq`. One bucket scan and one occupancy update amortize the queue
    /// overhead across the run — the win on the synchronized event bursts
    /// this simulator exists to produce.
    pub(crate) fn pop_due_run(&mut self, horizon: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let idx = self.locate_min();
        let bucket = &mut self.buckets[idx];
        let run_time = bucket.last().expect("locate_min found an entry").time;
        if run_time > horizon {
            return None;
        }
        while let Some(tail) = bucket.last() {
            if tail.time != run_time {
                break;
            }
            let entry = bucket.pop().expect("tail just checked");
            out.push(entry.event);
            self.len -= 1;
        }
        if self.buckets[idx].is_empty() {
            self.mark_empty(idx);
        }
        self.note_op();
        Some(run_time)
    }

    fn pop_from(&mut self, idx: usize) -> Entry<E> {
        let entry = self.buckets[idx].pop().expect("locate_min found an entry");
        if self.buckets[idx].is_empty() {
            self.mark_empty(idx);
        }
        self.len -= 1;
        self.note_op();
        entry
    }

    /// Removes the event with exactly this `(time, seq)`, if still queued.
    pub(crate) fn cancel(&mut self, time: SimTime, seq: u64) -> Option<E> {
        let idx = self.bucket_of_day(self.day_of(time.as_nanos()));
        let bucket = &mut self.buckets[idx];
        let key = (time, seq);
        let pos = bucket.partition_point(|e| (e.time, e.seq) > key);
        if pos < bucket.len() && bucket[pos].time == time && bucket[pos].seq == seq {
            let entry = bucket.remove(pos);
            if self.buckets[idx].is_empty() {
                self.mark_empty(idx);
            }
            self.len -= 1;
            self.note_op();
            Some(entry.event)
        } else {
            None
        }
    }

    /// Rebuilds the calendar with `new_nbuckets` buckets and a bucket width
    /// re-estimated from the live population. O(n), amortized O(1) because
    /// it only triggers on the doubling threshold or a (backed-off)
    /// sustained cost overrun. Shrinking needs no dedicated trigger: an
    /// oversized table shows up as scan cost and recalibrates here.
    fn resize(&mut self, new_nbuckets: usize) {
        let new_nbuckets = new_nbuckets
            .clamp(MIN_BUCKETS, MAX_BUCKETS)
            .next_power_of_two();
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        if let Some(shift) = estimate_shift(&entries) {
            self.shift = shift;
        }
        self.calibrated = true;
        self.buckets = (0..new_nbuckets).map(|_| Vec::new()).collect();
        self.occupied = vec![0; new_nbuckets.div_ceil(64)];
        let mask = new_nbuckets - 1;
        let shift = self.shift;
        for entry in entries {
            let idx = ((entry.time.as_nanos() >> shift) as usize) & mask;
            self.buckets[idx].push(entry);
        }
        for (idx, bucket) in self.buckets.iter_mut().enumerate() {
            if !bucket.is_empty() {
                self.occupied[idx >> 6] |= 1 << (idx & 63);
                // (time, seq) is unique, so unstable sort is deterministic.
                bucket.sort_unstable_by(|a, b| (b.time, b.seq).cmp(&(a.time, a.seq)));
            }
        }
        // Re-park the scan on the earliest pending event.
        let min_nanos = self
            .buckets
            .iter()
            .filter_map(|b| b.last().map(|e| e.time.as_nanos()))
            .min()
            .unwrap_or(0);
        self.cur_day.set(min_nanos >> self.shift);
    }
}

/// Estimates a bucket shift (log2 width) targeting [`TARGET_LOAD`] events
/// per day, from a deterministic sample of the live population. `None` when
/// there are too few distinct timestamps to tell.
///
/// A strided sample of `k` of the `n` timestamps, sorted, has consecutive
/// gaps averaging `span / k` over the densely-populated core. Both enqueue
/// and dequeue work concentrates where the *scan* lives — just ahead of the
/// pending minimum — and many workloads (the hold benchmark's stationary
/// pack is exponential) are markedly denser there than at the population
/// average, so the estimate uses the median of the *earliest quarter* of
/// the sampled gaps: the near-minimum region. That same trimming also
/// ignores the giant gaps contributed by far-future outliers
/// (retransmission timers parked hundreds of milliseconds out). Rescaling
/// the median by `k / n` recovers the near-minimum inter-event gap — and a
/// day spans [`TARGET_LOAD`] of those — without ever sorting the full
/// population. Events past the resulting year wrap around the ring and are
/// skipped over by the dequeue scan's year check.
fn estimate_shift<E>(entries: &[Entry<E>]) -> Option<u32> {
    const SAMPLE: usize = 128;
    let n = entries.len();
    let step = (n / SAMPLE).max(1);
    let sample: Vec<u64> = entries
        .iter()
        .step_by(step)
        .take(SAMPLE)
        .map(|e| e.time.as_nanos())
        .collect();
    estimate_shift_from(sample, n)
}

/// Core of the width estimate, shared by the rebuild path and the cheap
/// [`Calendar::candidate_shift`] probe: `sample` holds up to 128 timestamps
/// strided evenly across the `n` pending events.
fn estimate_shift_from(mut sample: Vec<u64>, n: usize) -> Option<u32> {
    if sample.len() < 2 {
        return None;
    }
    sample.sort_unstable();
    let mut gaps: Vec<u64> = sample
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&g| g > 0)
        .collect();
    if gaps.is_empty() {
        return None;
    }
    // Keep only the earliest quarter of the inter-sample gaps (at least 8):
    // the hot region near the pending minimum.
    let near = (gaps.len() / 4).max(8).min(gaps.len());
    gaps.truncate(near);
    gaps.sort_unstable();
    let median = gaps[gaps.len() / 2];
    // median ≈ near_span / covered_samples, so median * sample_len / n ≈
    // the near-minimum inter-event gap; a day spans TARGET_LOAD of those.
    // The u128 widening cannot overflow.
    let gap = u128::from(median) * sample.len() as u128 / n as u128;
    let width = ((gap * TARGET_LOAD as u128) as u64).max(2);
    let width = width.next_power_of_two();
    Some(width.trailing_zeros().clamp(MIN_SHIFT, MAX_SHIFT))
}

