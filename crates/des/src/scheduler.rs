//! The virtual clock and simulation loop driver.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event scheduler: a virtual clock plus a future-event list.
///
/// The scheduler owns *when* things happen; *what* happens is up to the
/// caller, which pops events and dispatches them against its own state. This
/// inversion keeps the engine free of borrow-checker gymnastics: simulation
/// state lives in one place (the caller's world struct) and the scheduler is
/// passed down by `&mut` wherever new events need to be spawned.
///
/// # Example
///
/// ```
/// use tcpburst_des::{Scheduler, SimDuration, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_after(SimDuration::from_secs(1), "tick");
/// let mut ticks = 0;
/// while let Some((_, ev)) = sched.pop() {
///     assert_eq!(ev, "tick");
///     ticks += 1;
///     if ticks < 3 {
///         sched.schedule_after(SimDuration::from_secs(1), "tick");
///     }
/// }
/// assert_eq!(ticks, 3);
/// assert_eq!(sched.now(), SimTime::from_secs(3));
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates a scheduler whose future-event list has room for `capacity`
    /// events before reallocating.
    ///
    /// Pre-sizing matters on the simulation hot path: the event heap grows
    /// with the number of concurrently active flows and timers, and letting
    /// it double its way up from empty costs a series of reallocation +
    /// copy cycles at exactly the moment the run is busiest. Callers that
    /// know their scale (e.g. a scenario with `M` clients) should pass a
    /// proportional capacity hint.
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Number of events the future-event list can hold without
    /// reallocating.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`Scheduler::now`]): the
    /// simulated world cannot be causally rewritten.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        self.queue.push(time, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (after all events already
    /// queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Removes the earliest event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no events remain; the clock stays where it was.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// Like [`Scheduler::pop`], but refuses to advance past `horizon`.
    ///
    /// An event with `time > horizon` is left in the queue and the clock is
    /// advanced to exactly `horizon`. Use this to end a run at a fixed
    /// duration without draining stragglers.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => {
                if self.now < horizon {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// Number of events pending in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(10), 1);
        s.schedule_at(SimTime::from_millis(20), 2);
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_millis(10));
        s.pop();
        assert_eq!(s.now(), SimTime::from_millis(20));
        assert_eq!(s.processed(), 2);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(5), "first");
        s.pop();
        s.schedule_after(SimDuration::from_millis(3), "second");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(8));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(5), ());
        s.pop();
        s.schedule_at(SimTime::from_millis(1), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), "in");
        s.schedule_at(SimTime::from_secs(10), "out");
        let horizon = SimTime::from_secs(5);
        assert_eq!(s.pop_until(horizon).map(|(_, e)| e), Some("in"));
        assert_eq!(s.pop_until(horizon), None);
        // Clock parked exactly at the horizon; the late event stays queued.
        assert_eq!(s.now(), horizon);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(1), "a");
        s.schedule_at(SimTime::from_millis(1), "b");
        let (_, first) = s.pop().unwrap();
        assert_eq!(first, "a");
        s.schedule_now("c");
        assert_eq!(s.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(s.pop().map(|(_, e)| e), Some("c"));
    }
}
