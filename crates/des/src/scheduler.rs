//! The virtual clock and simulation loop driver.

use crate::queue::{EventKey, EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};

/// A discrete-event scheduler: a virtual clock plus a future-event list.
///
/// The scheduler owns *when* things happen; *what* happens is up to the
/// caller, which pops events and dispatches them against its own state. This
/// inversion keeps the engine free of borrow-checker gymnastics: simulation
/// state lives in one place (the caller's world struct) and the scheduler is
/// passed down by `&mut` wherever new events need to be spawned.
///
/// # Monotonicity contract
///
/// All three scheduling entry points guarantee the event lands at or after
/// [`Scheduler::now`]:
///
/// * [`schedule_at`](Scheduler::schedule_at) panics on a past `time`;
/// * [`schedule_after`](Scheduler::schedule_after) adds a non-negative delay
///   with saturating arithmetic, so even a delay that overflows the clock
///   lands at [`SimTime::MAX`], never in the past;
/// * [`schedule_now`](Scheduler::schedule_now) targets `now` exactly.
///
/// Together with the queue's ascending `(time, seq)` pop order this makes
/// the clock monotone: no event ever observes a world state newer than its
/// own timestamp.
///
/// # Example
///
/// ```
/// use tcpburst_des::{Scheduler, SimDuration, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_after(SimDuration::from_secs(1), "tick");
/// let mut ticks = 0;
/// while let Some((_, ev)) = sched.pop() {
///     assert_eq!(ev, "tick");
///     ticks += 1;
///     if ticks < 3 {
///         sched.schedule_after(SimDuration::from_secs(1), "tick");
///     }
/// }
/// assert_eq!(ticks, 3);
/// assert_eq!(sched.now(), SimTime::from_secs(3));
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    pending_peak: usize,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler::with_capacity(0)
    }

    /// Creates a scheduler whose future-event list has room for `capacity`
    /// events before reallocating.
    ///
    /// Pre-sizing matters on the simulation hot path: the event queue grows
    /// with the number of concurrently active flows and timers, and letting
    /// it double its way up from empty costs a series of reallocation +
    /// copy cycles at exactly the moment the run is busiest. Callers that
    /// know their scale (e.g. a scenario with `M` clients) should pass a
    /// proportional capacity hint.
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler::with_capacity_and_backend(capacity, QueueBackend::default())
    }

    /// Creates a scheduler on an explicit [`QueueBackend`].
    ///
    /// Both backends produce identical simulation output (same `(time, seq)`
    /// total order); the choice only affects speed, and exists so benchmarks
    /// can A/B the calendar queue against the binary-heap reference.
    pub fn with_capacity_and_backend(capacity: usize, backend: QueueBackend) -> Self {
        Scheduler {
            queue: EventQueue::with_capacity_and_backend(capacity, backend),
            now: SimTime::ZERO,
            processed: 0,
            pending_peak: 0,
        }
    }

    /// Which backend the future-event list runs on.
    pub fn backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Number of events the future-event list can hold without
    /// reallocating.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn note_pushed(&mut self) {
        let len = self.queue.len();
        if len > self.pending_peak {
            self.pending_peak = len;
        }
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Monotonicity: `time` must be at or after [`Scheduler::now`]; the
    /// simulated world cannot be causally rewritten.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`Scheduler::now`]).
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        self.schedule_at_keyed(time, event);
    }

    /// Like [`Scheduler::schedule_at`], but returns the [`EventKey`] that
    /// can later [`cancel`](Scheduler::cancel) the event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`Scheduler::now`]).
    pub fn schedule_at_keyed(&mut self, time: SimTime, event: E) -> EventKey {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        let key = self.queue.push_keyed(time, event);
        self.note_pushed();
        key
    }

    /// Schedules `event` to fire `delay` after the current time.
    ///
    /// Monotonicity: the target is `now + delay` with saturating addition,
    /// so it is always at or after [`Scheduler::now`] — a delay large enough
    /// to overflow the clock lands at [`SimTime::MAX`] instead of wrapping
    /// into the past.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let time = self.now + delay;
        debug_assert!(time >= self.now, "saturating add went backwards");
        self.queue.push(time, event);
        self.note_pushed();
    }

    /// Schedules `event` at the current instant (after all events already
    /// queued for this instant).
    ///
    /// Monotonicity: the target is exactly [`Scheduler::now`], so the event
    /// can never land in the past; the FIFO tie-break orders it after
    /// everything already queued for this instant.
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
        self.note_pushed();
    }

    /// Deletes a previously scheduled event before it pops, returning it.
    ///
    /// Returns `None` when the event already popped or was already
    /// cancelled — and always on the [`QueueBackend::BinaryHeap`] backend,
    /// which cannot delete interior entries (callers then fall back to lazy
    /// generation-counter invalidation; see [`TimerSlot`](crate::TimerSlot)).
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        self.queue.cancel(key)
    }

    /// Removes the earliest event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no events remain; the clock stays where it was.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// Like [`Scheduler::pop`], but refuses to advance past `horizon`.
    ///
    /// An event with `time > horizon` is left in the queue and the clock is
    /// advanced to exactly `horizon`. Use this to end a run at a fixed
    /// duration without draining stragglers.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.queue.pop_due(horizon) {
            Some((time, event)) => {
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                self.processed += 1;
                Some((time, event))
            }
            None => {
                if self.now < horizon {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// Pops every event sharing the earliest due timestamp (at most
    /// `horizon`) into `out`, advancing the clock to that timestamp.
    ///
    /// Returns the batch's shared timestamp. When nothing is due the clock
    /// advances to exactly `horizon` (mirroring
    /// [`pop_until`](Scheduler::pop_until)) and `None` is returned with
    /// `out` untouched.
    ///
    /// Dispatching the batch in order is event-for-event equivalent to a
    /// [`pop_until`](Scheduler::pop_until) loop: same-instant events pushed
    /// *during* dispatch sequence after the batch, exactly where single-pop
    /// would place them, and the next `drain_due` call picks them up (the
    /// clock sits at their timestamp, which is still within `horizon`).
    pub fn drain_due(&mut self, horizon: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        let before = out.len();
        match self.queue.pop_due_run(horizon, out) {
            Some(time) => {
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                self.processed += (out.len() - before) as u64;
                Some(time)
            }
            None => {
                if self.now < horizon {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// Number of events pending in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Highest number of simultaneously pending events seen so far.
    pub fn pending_peak(&self) -> usize {
        self.pending_peak
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of scheduled events deleted in place via
    /// [`Scheduler::cancel`] before they could fire.
    pub fn cancelled_in_place(&self) -> u64 {
        self.queue.cancelled_in_place()
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(10), 1);
        s.schedule_at(SimTime::from_millis(20), 2);
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_millis(10));
        s.pop();
        assert_eq!(s.now(), SimTime::from_millis(20));
        assert_eq!(s.processed(), 2);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(5), "first");
        s.pop();
        s.schedule_after(SimDuration::from_millis(3), "second");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(8));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(5), ());
        s.pop();
        s.schedule_at(SimTime::from_millis(1), ());
    }

    #[test]
    fn schedule_after_saturates_instead_of_wrapping() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), ());
        s.pop();
        // A delay that overflows the clock must land at MAX, not wrap
        // behind `now`.
        s.schedule_after(SimDuration::from_nanos(u64::MAX), ());
        assert_eq!(s.peek_time(), Some(SimTime::MAX));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), "in");
        s.schedule_at(SimTime::from_secs(10), "out");
        let horizon = SimTime::from_secs(5);
        assert_eq!(s.pop_until(horizon).map(|(_, e)| e), Some("in"));
        assert_eq!(s.pop_until(horizon), None);
        // Clock parked exactly at the horizon; the late event stays queued.
        assert_eq!(s.now(), horizon);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(1), "a");
        s.schedule_at(SimTime::from_millis(1), "b");
        let (_, first) = s.pop().unwrap();
        assert_eq!(first, "a");
        s.schedule_now("c");
        assert_eq!(s.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(s.pop().map(|(_, e)| e), Some("c"));
    }

    #[test]
    fn cancel_skips_the_event_and_counts() {
        let mut s = Scheduler::new();
        let key = s.schedule_at_keyed(SimTime::from_millis(5), "timer");
        s.schedule_at(SimTime::from_millis(7), "data");
        assert_eq!(s.cancel(key), Some("timer"));
        assert_eq!(s.cancelled_in_place(), 1);
        assert_eq!(s.pop().map(|(_, e)| e), Some("data"));
        assert!(s.pop().is_none());
    }

    #[test]
    fn drain_due_pops_whole_run_and_parks_at_horizon() {
        let mut s = Scheduler::new();
        let t = SimTime::from_millis(3);
        s.schedule_at(t, "a");
        s.schedule_at(t, "b");
        s.schedule_at(SimTime::from_secs(10), "late");
        let mut batch = Vec::new();
        assert_eq!(s.drain_due(SimTime::from_secs(5), &mut batch), Some(t));
        assert_eq!(batch, ["a", "b"]);
        assert_eq!(s.now(), t);
        assert_eq!(s.processed(), 2);
        batch.clear();
        assert_eq!(s.drain_due(SimTime::from_secs(5), &mut batch), None);
        assert!(batch.is_empty());
        assert_eq!(s.now(), SimTime::from_secs(5));
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn drain_due_then_same_instant_push_forms_next_batch() {
        // An event scheduled *at* the batch timestamp during dispatch must
        // come out of the following drain_due call, as in single-pop order.
        let mut s = Scheduler::new();
        let t = SimTime::from_millis(1);
        s.schedule_at(t, "first");
        let mut batch = Vec::new();
        assert_eq!(s.drain_due(SimTime::from_secs(1), &mut batch), Some(t));
        assert_eq!(batch, ["first"]);
        s.schedule_now("second");
        batch.clear();
        assert_eq!(s.drain_due(SimTime::from_secs(1), &mut batch), Some(t));
        assert_eq!(batch, ["second"]);
    }

    #[test]
    fn pending_peak_tracks_high_water_mark() {
        let mut s = Scheduler::new();
        for ms in 1..=5u64 {
            s.schedule_at(SimTime::from_millis(ms), ());
        }
        while s.pop().is_some() {}
        s.schedule_after(SimDuration::from_millis(1), ());
        assert_eq!(s.pending_peak(), 5);
        assert_eq!(s.pending(), 1);
    }
}
