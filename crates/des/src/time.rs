//! Virtual-time types.
//!
//! Simulated time is an integer number of nanoseconds since the start of the
//! simulation. Integer time keeps the event queue totally ordered and exactly
//! reproducible; converting to and from seconds is done only at the
//! configuration and reporting boundaries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since time zero.
///
/// # Example
///
/// ```
/// use tcpburst_des::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use tcpburst_des::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d, SimDuration::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, not finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// This instant as whole nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds since time zero.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier` is after `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, not finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// This duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time must be finite and non-negative, got {secs}"
    );
    let ns = secs * NANOS_PER_SEC as f64;
    assert!(ns <= u64::MAX as f64, "time {secs}s overflows the clock");
    ns.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// Saturates to zero when `rhs` is later than `self`; use
    /// [`SimTime::checked_since`] to detect that case.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer quotient of two durations (how many `rhs` fit in `self`).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        let d = SimDuration::from_secs_f64(0.044);
        assert_eq!(d.as_nanos(), 44_000_000);
    }

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(500);
        assert_eq!(t.as_nanos(), 10_500_000);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_micros(500));
        assert_eq!(
            SimDuration::from_millis(9) / SimDuration::from_millis(2),
            4
        );
        assert_eq!(
            SimDuration::from_millis(9) % SimDuration::from_millis(2),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(
            late.checked_since(early),
            Some(SimDuration::from_millis(4))
        );
    }

    #[test]
    fn ordering_matches_nanos() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_nanos(1) > SimDuration::ZERO);
        assert_eq!(SimTime::ZERO.max(SimTime::from_secs(1)), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(44).to_string(), "0.000044s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
