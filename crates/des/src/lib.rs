//! Discrete-event simulation engine for the `tcpburst` workspace.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-nanosecond virtual clock with
//!   exact arithmetic (no floating-point drift in the event queue),
//! * [`EventQueue`] — a priority queue of timestamped events with a
//!   deterministic FIFO tie-break for simultaneous events; backed by a
//!   calendar queue (O(1) amortized, supports in-place cancellation via
//!   [`EventKey`]) with a [`QueueBackend::BinaryHeap`] reference backend for
//!   A/B benchmarking,
//! * [`Scheduler`] — the virtual clock plus the queue, i.e. the core
//!   simulation loop driver,
//! * [`TimerSlot`] — a cancellable/re-armable logical timer: eager in-place
//!   deletion of superseded firings where the backend supports it, with
//!   generation-counter filtering at delivery as the safety net,
//! * [`PhaseCycle`] — a repeating schedule of hold times (e.g. link
//!   up/down flapping) driven by self-rescheduling events,
//! * [`SimRng`] — a seeded, reproducible random-number source (an in-tree
//!   xoshiro256++, no external dependencies) with the distributions the
//!   traffic models need (exponential, Pareto, uniform) and documented
//!   per-entity stream splitting.
//!
//! # Example
//!
//! ```
//! use tcpburst_des::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Event { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_after(SimDuration::from_millis(5), Event::Ping);
//! sched.schedule_after(SimDuration::from_millis(2), Event::Pong);
//!
//! let (t1, e1) = sched.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::from_millis(2), Event::Pong));
//! let (t2, e2) = sched.pop().unwrap();
//! assert_eq!((t2, e2), (SimTime::from_millis(5), Event::Ping));
//! assert!(sched.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;

mod queue;
mod rng;
mod scheduler;
mod time;
mod timer;

pub use queue::{EventKey, EventQueue, QueueBackend};
pub use rng::SimRng;
pub use scheduler::Scheduler;
pub use time::{SimDuration, SimTime};
pub use timer::{PhaseCycle, TimerGeneration, TimerSlot};
