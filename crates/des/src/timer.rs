//! Cancellable logical timers.
//!
//! A binary heap cannot delete arbitrary entries, so cancelling a scheduled
//! timer is done lazily: every (re)arm bumps a generation counter, the
//! generation is embedded in the scheduled event, and a firing whose
//! generation no longer matches is simply ignored. [`TimerSlot`] packages
//! that pattern.

use crate::time::SimTime;

/// An opaque token identifying one arming of a [`TimerSlot`].
///
/// Embed the token in the timer event you schedule; when the event pops, ask
/// the slot whether that token is still live via [`TimerSlot::fires`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerGeneration(u64);

/// One logical, re-armable, cancellable timer.
///
/// # Example
///
/// ```
/// use tcpburst_des::{Scheduler, SimDuration, TimerGeneration, TimerSlot};
///
/// enum Ev { Timeout(TimerGeneration) }
///
/// let mut sched = Scheduler::new();
/// let mut rto = TimerSlot::new();
///
/// // Arm, then re-arm before it fires: the first firing must be ignored.
/// let g1 = rto.arm(sched.now() + SimDuration::from_millis(100));
/// sched.schedule_after(SimDuration::from_millis(100), Ev::Timeout(g1));
/// let g2 = rto.arm(sched.now() + SimDuration::from_millis(300));
/// sched.schedule_after(SimDuration::from_millis(300), Ev::Timeout(g2));
///
/// let mut fired = 0;
/// while let Some((_, Ev::Timeout(gen))) = sched.pop() {
///     if rto.fires(gen) {
///         rto.disarm();
///         fired += 1;
///     }
/// }
/// assert_eq!(fired, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimerSlot {
    generation: u64,
    deadline: Option<SimTime>,
}

impl TimerSlot {
    /// Creates a disarmed timer.
    pub fn new() -> Self {
        TimerSlot::default()
    }

    /// Arms (or re-arms) the timer for `deadline`, invalidating any earlier
    /// arming. Returns the token to embed in the scheduled event.
    pub fn arm(&mut self, deadline: SimTime) -> TimerGeneration {
        self.generation += 1;
        self.deadline = Some(deadline);
        TimerGeneration(self.generation)
    }

    /// Cancels the timer; any in-flight firing becomes stale.
    pub fn disarm(&mut self) {
        self.generation += 1;
        self.deadline = None;
    }

    /// True if the timer is currently armed.
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some()
    }

    /// The deadline of the current arming, if armed.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// True if a firing carrying `token` corresponds to the current arming
    /// (i.e. the timer was not re-armed or cancelled since).
    pub fn fires(&self, token: TimerGeneration) -> bool {
        self.deadline.is_some() && token.0 == self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slot_is_disarmed() {
        let t = TimerSlot::new();
        assert!(!t.is_armed());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn arming_returns_live_token() {
        let mut t = TimerSlot::new();
        let g = t.arm(SimTime::from_secs(1));
        assert!(t.is_armed());
        assert_eq!(t.deadline(), Some(SimTime::from_secs(1)));
        assert!(t.fires(g));
    }

    #[test]
    fn rearm_invalidates_previous_token() {
        let mut t = TimerSlot::new();
        let g1 = t.arm(SimTime::from_secs(1));
        let g2 = t.arm(SimTime::from_secs(2));
        assert!(!t.fires(g1));
        assert!(t.fires(g2));
    }

    #[test]
    fn disarm_invalidates_token() {
        let mut t = TimerSlot::new();
        let g = t.arm(SimTime::from_secs(1));
        t.disarm();
        assert!(!t.fires(g));
        assert!(!t.is_armed());
    }

    #[test]
    fn stale_token_stays_stale_after_rearm() {
        let mut t = TimerSlot::new();
        let g1 = t.arm(SimTime::from_secs(1));
        t.disarm();
        let g2 = t.arm(SimTime::from_secs(3));
        assert!(!t.fires(g1));
        assert!(t.fires(g2));
    }
}
