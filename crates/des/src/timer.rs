//! Cancellable logical timers and repeating phase cycles.
//!
//! Two cancellation strategies, layered:
//!
//! * **Lazy (generation counter).** Every (re)arm bumps a generation, the
//!   generation is embedded in the scheduled event, and a firing whose
//!   generation no longer matches is ignored. Works on any queue backend and
//!   is the safety net for events that are already in flight.
//! * **Eager (in-place deletion).** [`TimerSlot::schedule`] remembers the
//!   [`EventKey`] of the queued firing; a re-arm or
//!   [`TimerSlot::cancel_scheduled`] deletes the stale entry from the queue
//!   on the spot, so dead timer events never travel through the hot loop at
//!   all. On a backend that cannot delete (the binary heap), the deletion
//!   misses harmlessly and the lazy layer picks up the slack.

use crate::queue::EventKey;
use crate::scheduler::Scheduler;
use crate::time::{SimDuration, SimTime};

/// A deterministic repeating sequence of timed phases.
///
/// This is the driver behind impairment schedules (link up/down flaps,
/// periodic capacity or delay toggles): the cycle starts in phase 0, and
/// each transition event advances it to the next phase and re-schedules
/// itself after that phase's hold time. The cycle itself holds no clock —
/// it only answers "which phase am I in, and how long does it last", so the
/// schedule is driven entirely by ordinary scheduler events and stays
/// bit-identical on every queue backend.
///
/// # Example
///
/// ```
/// use tcpburst_des::{PhaseCycle, Scheduler, SimDuration, SimTime};
///
/// // A link that is up 10 s (phase 0), then down 3 s (phase 1), repeating.
/// let mut cycle = PhaseCycle::new([
///     SimDuration::from_secs(10),
///     SimDuration::from_secs(3),
/// ]);
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_after(cycle.hold(), "toggle");
///
/// let (t, _) = sched.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(10));
/// assert_eq!(cycle.advance(), 1); // entering the down phase
/// sched.schedule_after(cycle.hold(), "toggle");
/// let (t, _) = sched.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(13));
/// assert_eq!(cycle.advance(), 0); // back up
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCycle {
    phases: Box<[SimDuration]>,
    index: usize,
}

impl PhaseCycle {
    /// Creates a cycle over `phases`, starting in phase 0.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero length (a
    /// zero-length phase would schedule its transition at the current
    /// instant forever, wedging the event loop).
    pub fn new(phases: impl Into<Box<[SimDuration]>>) -> Self {
        let phases = phases.into();
        assert!(!phases.is_empty(), "a phase cycle needs at least one phase");
        assert!(
            phases.iter().all(|p| !p.is_zero()),
            "every phase must have a positive length"
        );
        PhaseCycle { phases, index: 0 }
    }

    /// The phase the cycle is currently in.
    pub fn index(&self) -> usize {
        self.index
    }

    /// How long the current phase lasts — the delay until the next
    /// transition event.
    pub fn hold(&self) -> SimDuration {
        self.phases[self.index]
    }

    /// Moves to the next phase (wrapping), returning its index.
    pub fn advance(&mut self) -> usize {
        self.index = (self.index + 1) % self.phases.len();
        self.index
    }

    /// Number of phases in one full cycle.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Always false: construction rejects empty cycles.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// An opaque token identifying one arming of a [`TimerSlot`].
///
/// Embed the token in the timer event you schedule; when the event pops, ask
/// the slot whether that token is still live via [`TimerSlot::fires`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerGeneration(u64);

/// One logical, re-armable, cancellable timer.
///
/// # Example
///
/// ```
/// use tcpburst_des::{Scheduler, SimDuration, TimerGeneration, TimerSlot};
///
/// enum Ev { Timeout(TimerGeneration) }
///
/// let mut sched = Scheduler::new();
/// let mut rto = TimerSlot::new();
///
/// // Schedule, then re-schedule before it fires: the first entry is
/// // deleted from the queue in place, so only one firing ever pops.
/// let first = sched.now() + SimDuration::from_millis(100);
/// rto.schedule(&mut sched, first, Ev::Timeout);
/// let second = sched.now() + SimDuration::from_millis(300);
/// rto.schedule(&mut sched, second, Ev::Timeout);
/// assert_eq!(sched.pending(), 1);
///
/// let mut fired = 0;
/// while let Some((_, Ev::Timeout(gen))) = sched.pop() {
///     if rto.fires(gen) {
///         rto.disarm();
///         fired += 1;
///     }
/// }
/// assert_eq!(fired, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimerSlot {
    generation: u64,
    deadline: Option<SimTime>,
    /// Queue entry of the current arming's firing, when scheduled eagerly.
    key: Option<EventKey>,
}

impl TimerSlot {
    /// Creates a disarmed timer.
    pub fn new() -> Self {
        TimerSlot::default()
    }

    /// Arms (or re-arms) the timer for `deadline`, invalidating any earlier
    /// arming. Returns the token to embed in the scheduled event.
    ///
    /// This is the lazy half only: the caller schedules the firing event
    /// itself, and a superseded firing is filtered at delivery by
    /// [`TimerSlot::fires`]. Prefer [`TimerSlot::schedule`], which also
    /// deletes the superseded firing from the queue.
    pub fn arm(&mut self, deadline: SimTime) -> TimerGeneration {
        self.generation += 1;
        self.deadline = Some(deadline);
        self.key = None;
        TimerGeneration(self.generation)
    }

    /// Arms (or re-arms) the timer for `deadline` and schedules the firing
    /// event, deleting any previously queued firing in place.
    ///
    /// `make` builds the event from the fresh [`TimerGeneration`]; embed the
    /// token so [`TimerSlot::fires`] can validate the firing when it pops
    /// (the lazy safety net still applies if the deletion missed, e.g. on
    /// the binary-heap backend).
    pub fn schedule<E>(
        &mut self,
        sched: &mut Scheduler<E>,
        deadline: SimTime,
        make: impl FnOnce(TimerGeneration) -> E,
    ) -> TimerGeneration {
        self.cancel_queued(sched);
        self.generation += 1;
        self.deadline = Some(deadline);
        let token = TimerGeneration(self.generation);
        self.key = Some(sched.schedule_at_keyed(deadline, make(token)));
        token
    }

    /// Arms (or re-arms) the timer for `deadline`, coalescing with an
    /// already-queued earlier firing instead of touching the queue.
    ///
    /// A deadline that only ever moves *forward* (the retransmission timer
    /// re-armed on every ACK) would pay one in-place deletion and one push
    /// per re-arm under [`TimerSlot::schedule`]. This variant leaves the
    /// queued firing where it is whenever it is due **no later** than the
    /// new deadline and merely records the new deadline: the queued event
    /// pops early, and the pop handler must then consult
    /// [`TimerSlot::deadline`] — a pop at `now` strictly before the
    /// deadline is a *deferred* firing, not an expiry, and the handler
    /// re-schedules it (after [`TimerSlot::note_popped`]) at the real
    /// deadline. On a busy connection this replaces two queue operations
    /// per ACK with a field store, at the cost of one extra (filtered) pop
    /// per RTO-length quiet period.
    pub fn schedule_coalesced<E>(
        &mut self,
        sched: &mut Scheduler<E>,
        deadline: SimTime,
        make: impl FnOnce(TimerGeneration) -> E,
    ) -> TimerGeneration {
        if self.deadline.is_some() {
            // While armed with a tracked queue entry, that entry carries the
            // current generation: defer by fiat and let its pop re-schedule.
            if let Some(key) = self.key {
                if key.time() <= deadline {
                    self.deadline = Some(deadline);
                    return TimerGeneration(self.generation);
                }
            }
        }
        self.schedule(sched, deadline, make)
    }

    /// Notes that the current arming's queued firing has left the queue.
    ///
    /// Call this when a live firing pops (after [`TimerSlot::fires`]
    /// returns true) and before re-scheduling: it stops a later
    /// [`TimerSlot::schedule_coalesced`] from coalescing onto a queue entry
    /// that no longer exists.
    pub fn note_popped(&mut self) {
        self.key = None;
    }

    /// Cancels the timer; any in-flight firing becomes stale.
    ///
    /// Lazy half only — a queued firing stays in the queue and is filtered
    /// at delivery. Use [`TimerSlot::cancel_scheduled`] to also delete it.
    pub fn disarm(&mut self) {
        self.generation += 1;
        self.deadline = None;
        // Keep `key`: a later `schedule` can still reap the dead entry.
    }

    /// Cancels the timer and deletes its queued firing in place, if the
    /// backend supports deletion (the lazy generation check covers the
    /// rest).
    pub fn cancel_scheduled<E>(&mut self, sched: &mut Scheduler<E>) {
        self.cancel_queued(sched);
        self.disarm();
    }

    /// Deletes the currently tracked queue entry, if any.
    fn cancel_queued<E>(&mut self, sched: &mut Scheduler<E>) {
        if let Some(key) = self.key.take() {
            sched.cancel(key);
        }
    }

    /// True if the timer is currently armed.
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some()
    }

    /// The deadline of the current arming, if armed.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// True if a firing carrying `token` corresponds to the current arming
    /// (i.e. the timer was not re-armed or cancelled since).
    pub fn fires(&self, token: TimerGeneration) -> bool {
        self.deadline.is_some() && token.0 == self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_cycle_wraps_deterministically() {
        let mut c = PhaseCycle::new([
            SimDuration::from_secs(10),
            SimDuration::from_secs(3),
        ]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.index(), 0);
        assert_eq!(c.hold(), SimDuration::from_secs(10));
        assert_eq!(c.advance(), 1);
        assert_eq!(c.hold(), SimDuration::from_secs(3));
        assert_eq!(c.advance(), 0);
        assert_eq!(c.hold(), SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_cycle_panics() {
        PhaseCycle::new([] as [SimDuration; 0]);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_phase_panics() {
        PhaseCycle::new([SimDuration::from_secs(1), SimDuration::ZERO]);
    }

    #[test]
    fn fresh_slot_is_disarmed() {
        let t = TimerSlot::new();
        assert!(!t.is_armed());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn arming_returns_live_token() {
        let mut t = TimerSlot::new();
        let g = t.arm(SimTime::from_secs(1));
        assert!(t.is_armed());
        assert_eq!(t.deadline(), Some(SimTime::from_secs(1)));
        assert!(t.fires(g));
    }

    #[test]
    fn rearm_invalidates_previous_token() {
        let mut t = TimerSlot::new();
        let g1 = t.arm(SimTime::from_secs(1));
        let g2 = t.arm(SimTime::from_secs(2));
        assert!(!t.fires(g1));
        assert!(t.fires(g2));
    }

    #[test]
    fn disarm_invalidates_token() {
        let mut t = TimerSlot::new();
        let g = t.arm(SimTime::from_secs(1));
        t.disarm();
        assert!(!t.fires(g));
        assert!(!t.is_armed());
    }

    #[test]
    fn stale_token_stays_stale_after_rearm() {
        let mut t = TimerSlot::new();
        let g1 = t.arm(SimTime::from_secs(1));
        t.disarm();
        let g2 = t.arm(SimTime::from_secs(3));
        assert!(!t.fires(g1));
        assert!(t.fires(g2));
    }

    #[test]
    fn reschedule_deletes_previous_firing_from_queue() {
        let mut sched: Scheduler<TimerGeneration> = Scheduler::new();
        let mut t = TimerSlot::new();
        t.schedule(&mut sched, SimTime::from_secs(1), |g| g);
        let g2 = t.schedule(&mut sched, SimTime::from_secs(2), |g| g);
        assert_eq!(sched.pending(), 1, "stale firing deleted in place");
        assert_eq!(sched.cancelled_in_place(), 1);
        let (when, popped) = sched.pop().unwrap();
        assert_eq!(when, SimTime::from_secs(2));
        assert!(t.fires(popped));
        assert_eq!(popped, g2);
    }

    #[test]
    fn cancel_scheduled_empties_queue_and_disarms() {
        let mut sched: Scheduler<TimerGeneration> = Scheduler::new();
        let mut t = TimerSlot::new();
        let g = t.schedule(&mut sched, SimTime::from_secs(1), |g| g);
        t.cancel_scheduled(&mut sched);
        assert!(!t.is_armed());
        assert!(!t.fires(g));
        assert!(sched.pop().is_none());
        assert_eq!(sched.cancelled_in_place(), 1);
    }

    #[test]
    fn coalesced_rearm_defers_without_queue_traffic() {
        let mut sched: Scheduler<TimerGeneration> = Scheduler::new();
        let mut t = TimerSlot::new();
        let g1 = t.schedule(&mut sched, SimTime::from_secs(1), |g| g);
        // Forward re-arm coalesces: same token, same queue entry, new
        // deadline in the slot only.
        let g2 = t.schedule_coalesced(&mut sched, SimTime::from_secs(3), |g| g);
        assert_eq!(g1, g2);
        assert_eq!(sched.pending(), 1);
        assert_eq!(sched.cancelled_in_place(), 0);
        assert_eq!(t.deadline(), Some(SimTime::from_secs(3)));

        // The early firing pops live; the handler re-schedules at the real
        // deadline.
        let (when, popped) = sched.pop().unwrap();
        assert_eq!(when, SimTime::from_secs(1));
        assert!(t.fires(popped));
        t.note_popped();
        let deadline = t.deadline().unwrap();
        assert!(deadline > when);
        let g3 = t.schedule(&mut sched, deadline, |g| g);
        let (when, popped) = sched.pop().unwrap();
        assert_eq!(when, SimTime::from_secs(3));
        assert_eq!(popped, g3);
        assert!(t.fires(popped));
    }

    #[test]
    fn coalesced_rearm_backward_reschedules_eagerly() {
        let mut sched: Scheduler<TimerGeneration> = Scheduler::new();
        let mut t = TimerSlot::new();
        let g1 = t.schedule(&mut sched, SimTime::from_secs(5), |g| g);
        // The new deadline precedes the queued firing: coalescing cannot
        // defer, so this falls back to delete + push.
        let g2 = t.schedule_coalesced(&mut sched, SimTime::from_secs(2), |g| g);
        assert!(!t.fires(g1));
        assert_eq!(sched.pending(), 1);
        let (when, popped) = sched.pop().unwrap();
        assert_eq!(when, SimTime::from_secs(2));
        assert_eq!(popped, g2);
    }

    #[test]
    fn coalesce_after_pop_pushes_fresh_entry() {
        let mut sched: Scheduler<TimerGeneration> = Scheduler::new();
        let mut t = TimerSlot::new();
        t.schedule(&mut sched, SimTime::from_secs(1), |g| g);
        let (_, popped) = sched.pop().unwrap();
        assert!(t.fires(popped));
        t.note_popped();
        // With the queued entry gone, a coalesced re-arm must schedule a
        // real firing, not defer onto the departed one.
        t.schedule_coalesced(&mut sched, SimTime::from_secs(4), |g| g);
        assert_eq!(sched.pending(), 1);
    }

    #[test]
    fn plain_disarm_keeps_entry_reapable_by_next_schedule() {
        let mut sched: Scheduler<TimerGeneration> = Scheduler::new();
        let mut t = TimerSlot::new();
        t.schedule(&mut sched, SimTime::from_secs(1), |g| g);
        t.disarm(); // lazy: entry stays queued
        assert_eq!(sched.pending(), 1);
        t.schedule(&mut sched, SimTime::from_secs(2), |g| g);
        // The re-schedule reaped the disarmed-but-queued entry.
        assert_eq!(sched.pending(), 1);
        assert_eq!(sched.cancelled_in_place(), 1);
    }
}
