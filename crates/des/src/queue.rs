//! The future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::{Calendar, Entry};
use crate::time::SimTime;

/// Which data structure backs an [`EventQueue`].
///
/// Both backends expose the identical total order — ascending `(time, seq)`,
/// i.e. non-decreasing time with FIFO tie-break — so swapping backends never
/// changes a simulation's output, only its speed. That is property-tested in
/// `tests/prop_calendar.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// A calendar queue (Brown 1988): bucketed time wheel with adaptive
    /// bucket width. O(1) amortized push/pop and supports in-place
    /// cancellation by [`EventKey`]. The default.
    #[default]
    Calendar,
    /// A [`BinaryHeap`]: O(log n) push/pop, no in-place cancellation
    /// ([`EventQueue::cancel`] always reports a miss, so timer cancellation
    /// degrades to the lazy generation-counter path). Kept as the reference
    /// implementation and A/B baseline for benchmarks.
    BinaryHeap,
}

/// A handle to one scheduled event, returned by [`EventQueue::push_keyed`].
///
/// The key is the event's `(time, seq)` coordinate, which is unique for the
/// lifetime of the queue. Pass it to [`EventQueue::cancel`] to delete the
/// event before it pops. A key whose event has already popped (or been
/// cancelled) simply misses — cancellation is idempotent and never affects
/// any other event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    time: SimTime,
    seq: u64,
}

impl EventKey {
    /// The timestamp this key's event was scheduled for.
    pub fn time(&self) -> SimTime {
        self.time
    }
}

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were inserted (FIFO tie-break via a
/// monotonically increasing sequence number), which keeps simulations
/// deterministic regardless of queue internals.
///
/// # Example
///
/// ```
/// use tcpburst_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "b");
/// q.push(SimTime::from_millis(1), "a");
/// q.push(SimTime::from_millis(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
    cancelled_in_place: u64,
}

#[derive(Debug)]
enum Inner<E> {
    Calendar(Calendar<E>),
    Heap(BinaryHeap<HeapEntry<E>>),
}

#[derive(Debug)]
struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default backend.
    pub fn new() -> Self {
        EventQueue::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` events, on the
    /// default backend.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue::with_capacity_and_backend(capacity, QueueBackend::default())
    }

    /// Creates an empty queue on an explicit [`QueueBackend`].
    pub fn with_capacity_and_backend(capacity: usize, backend: QueueBackend) -> Self {
        let inner = match backend {
            QueueBackend::Calendar => Inner::Calendar(Calendar::with_capacity(capacity)),
            QueueBackend::BinaryHeap => Inner::Heap(BinaryHeap::with_capacity(capacity)),
        };
        EventQueue {
            inner,
            next_seq: 0,
            cancelled_in_place: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.inner {
            Inner::Calendar(_) => QueueBackend::Calendar,
            Inner::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_keyed(time, event);
    }

    /// Schedules `event` at absolute time `time` and returns the
    /// [`EventKey`] that can later [`cancel`](EventQueue::cancel) it.
    pub fn push_keyed(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.inner {
            Inner::Calendar(cal) => cal.push(Entry { time, seq, event }),
            Inner::Heap(heap) => heap.push(HeapEntry { time, seq, event }),
        }
        EventKey { time, seq }
    }

    /// Deletes the event identified by `key` before it pops, returning it.
    ///
    /// Returns `None` when the event is no longer queued (already popped or
    /// already cancelled) — and always on the [`QueueBackend::BinaryHeap`]
    /// backend, which cannot delete interior entries; callers must then fall
    /// back to lazy invalidation (see [`TimerSlot`](crate::TimerSlot)).
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        match &mut self.inner {
            Inner::Calendar(cal) => {
                let event = cal.cancel(key.time, key.seq)?;
                self.cancelled_in_place += 1;
                Some(event)
            }
            Inner::Heap(_) => None,
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Calendar(cal) => cal.pop().map(|e| (e.time, e.event)),
            Inner::Heap(heap) => heap.pop().map(|e| (e.time, e.event)),
        }
    }

    /// Removes and returns the earliest event only if its timestamp is at
    /// most `horizon`; otherwise leaves the queue untouched and returns
    /// `None`.
    ///
    /// Equivalent to a [`peek_time`](EventQueue::peek_time) followed by a
    /// conditional [`pop`](EventQueue::pop), but the calendar backend pays
    /// for a single bucket scan instead of two.
    pub fn pop_due(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Calendar(cal) => cal.pop_due(horizon).map(|e| (e.time, e.event)),
            Inner::Heap(heap) => match heap.peek() {
                Some(e) if e.time <= horizon => heap.pop().map(|e| (e.time, e.event)),
                _ => None,
            },
        }
    }

    /// Removes *every* event sharing the earliest pending timestamp — the
    /// same-timestamp *run* — provided that timestamp is at most `horizon`,
    /// appending the events to `out` in FIFO (insertion) order.
    ///
    /// Returns the run's shared timestamp, or `None` (with `out` untouched)
    /// when nothing is due. Dispatching the returned batch in order is
    /// exactly equivalent to repeated [`pop_due`](EventQueue::pop_due)
    /// calls: events pushed *during* batch dispatch at the same timestamp
    /// get higher sequence numbers, so they form the next run — the same
    /// place single-pop dispatch would put them. Property-tested in
    /// `tests/prop_calendar.rs`.
    ///
    /// The calendar backend pays one bucket scan and one occupancy update
    /// for the whole run instead of one per event.
    pub fn pop_due_run(&mut self, horizon: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Calendar(cal) => cal.pop_due_run(horizon, out),
            Inner::Heap(heap) => {
                let run_time = match heap.peek() {
                    Some(e) if e.time <= horizon => e.time,
                    _ => return None,
                };
                // A max-heap keyed on reversed (time, seq) pops equal times
                // in ascending seq order, i.e. FIFO.
                while let Some(e) = heap.peek() {
                    if e.time != run_time {
                        break;
                    }
                    let e = heap.pop().expect("peek just succeeded");
                    out.push(e.event);
                }
                Some(run_time)
            }
        }
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Calendar(cal) => cal.peek(),
            Inner::Heap(heap) => heap.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Calendar(cal) => cal.len(),
            Inner::Heap(heap) => heap.len(),
        }
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        match &self.inner {
            Inner::Calendar(cal) => cal.capacity(),
            Inner::Heap(heap) => heap.capacity(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Number of events deleted in place via [`EventQueue::cancel`].
    pub fn cancelled_in_place(&self) -> u64 {
        self.cancelled_in_place
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Both backends, so every test exercises calendar and heap alike.
    fn both() -> [EventQueue<u64>; 2] {
        [
            EventQueue::with_capacity_and_backend(0, QueueBackend::Calendar),
            EventQueue::with_capacity_and_backend(0, QueueBackend::BinaryHeap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            for &ms in &[5u64, 1, 9, 3, 7] {
                q.push(SimTime::from_millis(ms), ms);
            }
            let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(popped, vec![1, 3, 5, 7, 9]);
        }
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        for mut q in both() {
            let t = SimTime::from_millis(1);
            for i in 0..100 {
                q.push(t, i);
            }
            let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(popped, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in both() {
            q.push(SimTime::from_secs(1), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert_eq!(q.peek_time(), None);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn counts_total_scheduled() {
        for mut q in both() {
            q.push(SimTime::ZERO, 0);
            q.push(SimTime::ZERO, 1);
            q.pop();
            assert_eq!(q.scheduled_total(), 2);
        }
    }

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.push(SimTime::from_millis(1), "keep-1");
        let key = q.push_keyed(SimTime::from_millis(2), "drop");
        q.push(SimTime::from_millis(2), "keep-2");
        assert_eq!(q.cancel(key), Some("drop"));
        assert_eq!(q.cancelled_in_place(), 1);
        // Second cancel of the same key misses harmlessly.
        assert_eq!(q.cancel(key), None);
        assert_eq!(q.cancelled_in_place(), 1);
        let popped: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, ["keep-1", "keep-2"]);
    }

    #[test]
    fn cancel_after_pop_misses() {
        let mut q: EventQueue<()> = EventQueue::new();
        let key = q.push_keyed(SimTime::from_millis(1), ());
        q.pop();
        assert_eq!(q.cancel(key), None);
        assert_eq!(q.cancelled_in_place(), 0);
    }

    #[test]
    fn heap_backend_reports_cancel_miss() {
        let mut q = EventQueue::with_capacity_and_backend(0, QueueBackend::BinaryHeap);
        let key = q.push_keyed(SimTime::from_millis(1), ());
        assert_eq!(q.backend(), QueueBackend::BinaryHeap);
        assert_eq!(q.cancel(key), None);
        assert_eq!(q.len(), 1, "heap backend leaves the event queued");
    }

    #[test]
    fn pop_due_run_drains_equal_timestamps_fifo() {
        for mut q in both() {
            let t = SimTime::from_millis(2);
            q.push(SimTime::from_millis(1), 0);
            q.push(t, 1);
            q.push(t, 2);
            q.push(t, 3);
            q.push(SimTime::from_millis(3), 4);
            let mut out = Vec::new();
            // First run: the lone earlier event.
            assert_eq!(q.pop_due_run(SimTime::from_millis(9), &mut out), Some(SimTime::from_millis(1)));
            assert_eq!(out, [0]);
            // Second run: all three tied events, in insertion order.
            out.clear();
            assert_eq!(q.pop_due_run(SimTime::from_millis(9), &mut out), Some(t));
            assert_eq!(out, [1, 2, 3]);
            // Horizon before the next event: nothing due, queue untouched.
            out.clear();
            assert_eq!(q.pop_due_run(t, &mut out), None);
            assert!(out.is_empty());
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn push_before_advanced_peek_still_pops_first() {
        // Peeking far ahead advances the calendar's scan; a later push at an
        // earlier time must still pop first.
        let mut q: EventQueue<&str> = EventQueue::new();
        q.push(SimTime::from_secs(100), "late");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(100)));
        q.push(SimTime::from_millis(1), "early");
        assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
    }

    proptest! {
        /// Any batch of (time, payload) pairs pops sorted by time, with ties
        /// broken by insertion order — on both backends.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            for mut q in [
                EventQueue::with_capacity_and_backend(0, QueueBackend::Calendar),
                EventQueue::with_capacity_and_backend(0, QueueBackend::BinaryHeap),
            ] {
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut expected: Vec<(u64, usize)> =
                    times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
                expected.sort(); // stable on (time, index)
                let got: Vec<(u64, usize)> =
                    std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_nanos(), i)).collect();
                prop_assert_eq!(got, expected);
            }
        }
    }
}

