//! The future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were inserted (FIFO tie-break via a
/// monotonically increasing sequence number), which keeps simulations
/// deterministic regardless of heap internals.
///
/// # Example
///
/// ```
/// use tcpburst_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "b");
/// q.push(SimTime::from_millis(1), "a");
/// q.push(SimTime::from_millis(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &ms in &[5u64, 1, 9, 3, 7] {
            q.push(SimTime::from_millis(ms), ms);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn counts_total_scheduled() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
    }

    proptest! {
        /// Any batch of (time, payload) pairs pops sorted by time, with ties
        /// broken by insertion order.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
            expected.sort(); // stable on (time, index)
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_nanos(), i)).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
