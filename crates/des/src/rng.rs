//! Seeded, reproducible randomness with the distributions the traffic and
//! queue models need.
//!
//! The core generator is an in-tree **xoshiro256++** (Blackman & Vigna,
//! "Scrambled linear pseudorandom number generators", 2019) seeded through
//! SplitMix64, the family's recommended initialization. It replaces the
//! `rand`-crate `StdRng` the engine originally wrapped: the workspace now
//! builds with no external dependencies, the generator is pinned forever
//! (no silent stream changes on a `rand` upgrade), and one draw is a handful
//! of ALU ops instead of a ChaCha12 block — a measurable win for the
//! Poisson-arrival hot path that schedules every generated packet.

/// A deterministic random-number source for one simulation run.
///
/// Adds inverse-transform samplers for the exponential and Pareto
/// distributions (implemented here rather than pulled from `rand_distr` to
/// keep the dependency footprint at zero and the sampling algorithm
/// pinned).
///
/// # Stream splitting
///
/// Parallel entities (one per client, one per RED gateway, …) must not
/// share a stream, and the split must be stable across thread counts. Two
/// mechanisms are provided:
///
/// * [`SimRng::derive`]`(seed, stream)` — cheap O(1) splitting: `stream` is
///   mixed into the master seed through two rounds of SplitMix64 before
///   state expansion, so sibling streams are decorrelated even for adjacent
///   indices. Collisions between derived streams are birthday-bounded in
///   the 64-bit seed space (~2⁻³² for a million streams), which is the
///   standard trade-off for per-entity substreams.
/// * [`SimRng::jump`] — the generator's jump polynomial, advancing exactly
///   2¹²⁸ steps. Repeated jumps partition one stream into provably
///   non-overlapping blocks of 2¹²⁸ draws each, at O(n) cost for the n-th
///   block.
///
/// # Example
///
/// ```
/// use tcpburst_des::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let x = a.exponential(10.0); // mean 1/10 s
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    ///
    /// The 256-bit xoshiro state is filled with four successive SplitMix64
    /// outputs, which guarantees a non-zero state for every seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        SimRng {
            s: [
                splitmix64_next(&mut x),
                splitmix64_next(&mut x),
                splitmix64_next(&mut x),
                splitmix64_next(&mut x),
            ],
        }
    }

    /// Derives an independent child stream, e.g. one per traffic source.
    ///
    /// Mixes `stream` into the parent seed with SplitMix64 so sibling
    /// streams are decorrelated even for adjacent indices (see the
    /// type-level docs for the collision bound).
    pub fn derive(seed: u64, stream: u64) -> Self {
        SimRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
    }

    /// The next 64 uniformly distributed bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits (upper half of a 64-bit
    /// draw, the half with the better-scrambled bits).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Advances this generator exactly 2¹²⁸ steps in O(1) draws.
    ///
    /// Calling `jump` n times yields the state 2¹²⁸·n steps ahead, so
    /// streams separated by jumps are **guaranteed non-overlapping** for up
    /// to 2¹²⁸ draws each — use this instead of [`SimRng::derive`] when a
    /// probabilistic independence argument is not enough.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range [{low}, {high})");
        low + (high - low) * self.uniform()
    }

    /// An exponential draw with rate `lambda` (mean `1/lambda`), via inverse
    /// transform: `-ln(1-U)/lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "exponential rate must be positive and finite, got {lambda}"
        );
        let u = self.uniform();
        -(-u).ln_1p() / lambda // -ln(1-u)/lambda, stable for u near 0
    }

    /// A Pareto draw with scale `xm` and shape `alpha`:
    /// `xm * (1-U)^(-1/alpha)`, supported on `[xm, inf)`.
    ///
    /// Heavy-tailed for `alpha <= 2` (infinite variance), the regime the
    /// self-similarity literature uses for ON/OFF sources.
    ///
    /// # Panics
    ///
    /// Panics if `xm` or `alpha` is not strictly positive and finite.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && xm.is_finite(),
            "pareto scale must be positive and finite, got {xm}"
        );
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "pareto shape must be positive and finite, got {alpha}"
        );
        let u = self.uniform();
        xm * (1.0 - u).powf(-1.0 / alpha)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// An unbiased uniform integer draw in `[0, n)` (Lemire's
    /// multiply-shift method with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// One SplitMix64 step: advances `x` and returns the mixed output.
fn splitmix64_next(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    splitmix64_mix(*x)
}

/// The SplitMix64 finalizer applied to a pre-advanced value (the historical
/// `splitmix64` helper used by [`SimRng::derive`]; kept bit-compatible).
fn splitmix64(x: u64) -> u64 {
    splitmix64_mix(x.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::SimRng;
    use proptest::prelude::{any, prop_assert, proptest};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SimRng::derive(7, 0);
        let mut b = SimRng::derive(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_pairwise_disjoint_prefixes() {
        // The per-client substreams of one master seed must not collide in
        // their opening window: collect the first 512 draws of 8 adjacent
        // streams and require all 4096 values to be distinct.
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8u64 {
            let mut rng = SimRng::derive(0x1CDC_2000, stream);
            for _ in 0..512 {
                assert!(
                    seen.insert(rng.next_u64()),
                    "derived streams share a value in their prefix"
                );
            }
        }
    }

    #[test]
    fn jumped_streams_are_disjoint_and_deterministic() {
        // jump() advances exactly 2^128 steps: the jumped stream must be
        // (a) reproducible and (b) disjoint from the parent's prefix.
        let mut parent = SimRng::seed_from_u64(99);
        let mut jumped = parent.clone();
        jumped.jump();
        let mut jumped2 = SimRng::seed_from_u64(99);
        jumped2.jump();
        let parent_prefix: std::collections::HashSet<u64> =
            (0..1024).map(|_| parent.next_u64()).collect();
        for _ in 0..1024 {
            let a = jumped.next_u64();
            assert_eq!(a, jumped2.next_u64(), "jump is not deterministic");
            assert!(!parent_prefix.contains(&a), "jumped stream overlaps parent");
        }
    }

    #[test]
    fn golden_values_pin_the_generator() {
        // First outputs of xoshiro256++ under SplitMix64 expansion of seed 0
        // and seed 1. If this test ever fails, the generator changed and
        // every recorded experiment in EXPERIMENTS.md must be re-run.
        let mut r0 = SimRng::seed_from_u64(0);
        let first0: Vec<u64> = (0..4).map(|_| r0.next_u64()).collect();
        let mut r1 = SimRng::seed_from_u64(1);
        let first1: Vec<u64> = (0..4).map(|_| r1.next_u64()).collect();
        assert_eq!(
            first0,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
        assert_eq!(
            first1,
            vec![
                14971601782005023387,
                13781649495232077965,
                1847458086238483744,
                13765271635752736470
            ]
        );
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let lambda = 10.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        let expect = 1.0 / lambda;
        assert!(
            (mean - expect).abs() < 0.02 * expect,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn exponential_is_memoryless_in_distribution() {
        // P(X > s+t | X > s) = P(X > t): compare tail fractions.
        let mut rng = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..200_000).map(|_| rng.exponential(1.0)).collect();
        let tail = |t: f64| xs.iter().filter(|&&x| x > t).count() as f64 / xs.len() as f64;
        let cond = xs.iter().filter(|&&x| x > 1.0).count() as f64;
        let cond_tail = xs.iter().filter(|&&x| x > 2.0).count() as f64 / cond;
        assert!((cond_tail - tail(1.0)).abs() < 0.02);
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(rng.pareto(1.5, 1.2) >= 1.5);
        }
    }

    #[test]
    fn pareto_mean_matches_formula_for_finite_mean_shape() {
        // E[X] = alpha*xm/(alpha-1) for alpha > 1.
        let mut rng = SimRng::seed_from_u64(4);
        let (xm, alpha) = (1.0, 2.5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.pareto(xm, alpha)).sum::<f64>() / n as f64;
        let expect = alpha * xm / (alpha - 1.0);
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn below_is_unbiased_across_buckets() {
        // Chi-squared-ish sanity: 90k draws over 9 buckets, every bucket
        // within 5% of the expected 10k.
        let mut rng = SimRng::seed_from_u64(6);
        let mut buckets = [0u32; 9];
        for _ in 0..90_000 {
            buckets[rng.below(9) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (9_500..10_500).contains(&b),
                "bucket {i} has {b} draws (expected ~10000)"
            );
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // First 8 bytes must be the little-endian first draw.
        let mut check = SimRng::seed_from_u64(8);
        assert_eq!(&buf[..8], &check.next_u64().to_le_bytes());
        assert_eq!(&buf[8..13], &check.next_u64().to_le_bytes()[..5]);
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn zero_rate_panics() {
        SimRng::seed_from_u64(0).exponential(0.0);
    }

    proptest! {
        #[test]
        fn prop_uniform_in_unit_interval(seed in any::<u64>()) {
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..100 {
                let u = rng.uniform();
                prop_assert!((0.0..1.0).contains(&u));
            }
        }

        #[test]
        fn prop_exponential_nonnegative(seed in any::<u64>(), lambda in 0.001f64..1000.0) {
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(rng.exponential(lambda) >= 0.0);
            }
        }

        #[test]
        fn prop_below_in_range(seed in any::<u64>(), n in 1u64..10_000) {
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(rng.below(n) < n);
            }
        }
    }
}
