//! Seeded, reproducible randomness with the distributions the traffic and
//! queue models need.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number source for one simulation run.
///
/// Wraps a seeded [`StdRng`] and adds inverse-transform samplers for the
/// exponential and Pareto distributions (implemented here rather than pulled
/// from `rand_distr` to keep the dependency footprint minimal and the
/// sampling algorithm pinned).
///
/// # Example
///
/// ```
/// use rand::RngCore;
/// use tcpburst_des::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let x = a.exponential(10.0); // mean 1/10 s
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream, e.g. one per traffic source.
    ///
    /// Mixes `stream` into the parent seed with SplitMix64 so sibling streams
    /// are decorrelated even for adjacent indices.
    pub fn derive(seed: u64, stream: u64) -> Self {
        SimRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform draw in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range [{low}, {high})");
        low + (high - low) * self.uniform()
    }

    /// An exponential draw with rate `lambda` (mean `1/lambda`), via inverse
    /// transform: `-ln(1-U)/lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "exponential rate must be positive and finite, got {lambda}"
        );
        let u = self.uniform();
        -(-u).ln_1p() / lambda // -ln(1-u)/lambda, stable for u near 0
    }

    /// A Pareto draw with scale `xm` and shape `alpha`:
    /// `xm * (1-U)^(-1/alpha)`, supported on `[xm, inf)`.
    ///
    /// Heavy-tailed for `alpha <= 2` (infinite variance), the regime the
    /// self-similarity literature uses for ON/OFF sources.
    ///
    /// # Panics
    ///
    /// Panics if `xm` or `alpha` is not strictly positive and finite.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && xm.is_finite(),
            "pareto scale must be positive and finite, got {xm}"
        );
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "pareto shape must be positive and finite, got {alpha}"
        );
        let u = self.uniform();
        xm * (1.0 - u).powf(-1.0 / alpha)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        self.inner.gen_range(0..n)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::SimRng;
    use proptest::prelude::{any, prop_assert, proptest};
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SimRng::derive(7, 0);
        let mut b = SimRng::derive(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let lambda = 10.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        let expect = 1.0 / lambda;
        assert!(
            (mean - expect).abs() < 0.02 * expect,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn exponential_is_memoryless_in_distribution() {
        // P(X > s+t | X > s) = P(X > t): compare tail fractions.
        let mut rng = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..200_000).map(|_| rng.exponential(1.0)).collect();
        let tail = |t: f64| xs.iter().filter(|&&x| x > t).count() as f64 / xs.len() as f64;
        let cond = xs.iter().filter(|&&x| x > 1.0).count() as f64;
        let cond_tail = xs.iter().filter(|&&x| x > 2.0).count() as f64 / cond;
        assert!((cond_tail - tail(1.0)).abs() < 0.02);
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(rng.pareto(1.5, 1.2) >= 1.5);
        }
    }

    #[test]
    fn pareto_mean_matches_formula_for_finite_mean_shape() {
        // E[X] = alpha*xm/(alpha-1) for alpha > 1.
        let mut rng = SimRng::seed_from_u64(4);
        let (xm, alpha) = (1.0, 2.5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.pareto(xm, alpha)).sum::<f64>() / n as f64;
        let expect = alpha * xm / (alpha - 1.0);
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn zero_rate_panics() {
        SimRng::seed_from_u64(0).exponential(0.0);
    }

    proptest! {
        #[test]
        fn prop_uniform_in_unit_interval(seed in any::<u64>()) {
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..100 {
                let u = rng.uniform();
                prop_assert!((0.0..1.0).contains(&u));
            }
        }

        #[test]
        fn prop_exponential_nonnegative(seed in any::<u64>(), lambda in 0.001f64..1000.0) {
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(rng.exponential(lambda) >= 0.0);
            }
        }

        #[test]
        fn prop_below_in_range(seed in any::<u64>(), n in 1u64..10_000) {
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(rng.below(n) < n);
            }
        }
    }
}
