//! Vegas through the engine: every-other-RTT slow start, the gamma exit,
//! and the once-per-epoch diff-driven decrease.

mod common;

use common::{ack_after, advance, plain_ack, sender, sender_with};
use tcpburst_transport::{TcpConfig, TcpVariant, VegasParams};

#[test]
fn vegas_slow_start_grows_every_other_rtt() {
    let mut cfg = TcpConfig::paper(TcpVariant::Vegas);
    cfg.vegas = VegasParams {
        alpha: 1.0,
        beta: 3.0,
        gamma: 1000.0, // never exit slow start in this test
    };
    let (mut s, mut sched, mut out) = sender_with(cfg);
    s.on_app_packets(1000, &mut sched, &mut out);
    assert_eq!(s.cwnd(), 1.0);
    // Epoch 1 (grow parity): ACK for packet 0 -> cwnd 2.
    advance(&mut sched, 44);
    plain_ack(&mut s, &mut sched, &mut out, 1);
    assert_eq!(s.cwnd(), 2.0);
    // Epoch 2 (hold parity): ACKs do not grow the window.
    advance(&mut sched, 44);
    plain_ack(&mut s, &mut sched, &mut out, 2);
    plain_ack(&mut s, &mut sched, &mut out, 3);
    assert_eq!(s.cwnd(), 2.0);
    // Epoch 3 (grow parity again): cwnd 2 -> 4.
    advance(&mut sched, 44);
    plain_ack(&mut s, &mut sched, &mut out, 4);
    plain_ack(&mut s, &mut sched, &mut out, 5);
    assert_eq!(s.cwnd(), 4.0);
}

#[test]
fn vegas_exits_slow_start_on_queue_buildup() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Vegas);
    s.on_app_packets(1000, &mut sched, &mut out);
    // Epoch 1 at base RTT 44 ms.
    advance(&mut sched, 44);
    plain_ack(&mut s, &mut sched, &mut out, 1);
    let before = s.cwnd();
    assert!(s.in_slow_start());
    // Epoch 2: RTT has tripled — a lot of queueing. diff > gamma.
    advance(&mut sched, 132);
    let target = s.snd_nxt();
    while s.snd_una() < target {
        let a = s.snd_una().next();
        plain_ack(&mut s, &mut sched, &mut out, a.0);
    }
    assert!(!s.in_slow_start(), "Vegas should have left slow start");
    assert!(s.cwnd() <= before + 2.0, "no exponential blow-up");
}

#[test]
fn vegas_decreases_when_queue_exceeds_beta() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Vegas);
    // Start in congestion avoidance with a roomy window.
    s.force_congestion_avoidance(10.0, 2.0);
    s.on_app_packets(100_000, &mut sched, &mut out);
    // Several epochs at the 44 ms base RTT: diff ≈ 0, Vegas probes up.
    for _ in 0..50 {
        ack_after(&mut s, &mut sched, &mut out, 44);
    }
    let uncongested = s.cwnd();
    assert!(uncongested > 10.0, "diff < alpha should grow the window");
    // The path RTT doubles (persistent queueing): diff = cwnd/2, so
    // Vegas must shed one packet per RTT until cwnd/2 <= beta = 3.
    for _ in 0..300 {
        ack_after(&mut s, &mut sched, &mut out, 88);
    }
    assert!(
        s.cwnd() <= 6.5,
        "cwnd {} should settle into the [alpha, beta] band (≤ 2·beta)",
        s.cwnd()
    );
    assert!(s.cwnd() >= 2.0, "Vegas never collapses below 2");
    assert_eq!(s.counters().timeouts, 0, "no losses were injected");
}
