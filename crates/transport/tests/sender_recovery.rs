//! Loss detection and recovery: fast retransmit, Reno inflation and
//! deflation, the Reno/NewReno partial-ACK split, Tahoe's collapse, and
//! the SACK scoreboard episodes.

mod common;

use common::{data_seqs, plain_ack, sender};
use tcpburst_net::{SackBlocks, SeqNo};
use tcpburst_transport::TcpVariant;

#[test]
fn third_dup_ack_triggers_fast_retransmit() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.force_ssthresh(2.0); // get to CA quickly
    s.on_app_packets(100, &mut sched, &mut out);
    // Grow the window a bit.
    for a in 1..=8u64 {
        plain_ack(&mut s, &mut sched, &mut out, a);
    }
    let flight_before = s.in_flight();
    assert!(flight_before >= 4, "need at least 4 in flight");
    out.clear();
    // Packet 8 lost: three dup ACKs for 8.
    plain_ack(&mut s, &mut sched, &mut out, 8);
    plain_ack(&mut s, &mut sched, &mut out, 8);
    assert!(!s.in_fast_recovery());
    plain_ack(&mut s, &mut sched, &mut out, 8);
    assert!(s.in_fast_recovery());
    // The hole was retransmitted.
    let retx: Vec<_> = out
        .iter()
        .filter(|p| matches!(p.kind, tcpburst_net::PacketKind::TcpData { retransmit: true, .. }))
        .collect();
    assert_eq!(retx.len(), 1);
    assert!(matches!(
        retx[0].kind,
        tcpburst_net::PacketKind::TcpData { seq: SeqNo(8), .. }
    ));
    assert_eq!(s.counters().fast_retransmits, 1);
    assert_eq!(s.ssthresh(), (flight_before as f64 / 2.0).max(2.0));
    assert_eq!(s.cwnd(), s.ssthresh() + 3.0);
}

#[test]
fn fast_recovery_inflates_and_deflates() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.force_ssthresh(2.0);
    s.on_app_packets(100, &mut sched, &mut out);
    for a in 1..=8u64 {
        plain_ack(&mut s, &mut sched, &mut out, a);
    }
    for _ in 0..3 {
        plain_ack(&mut s, &mut sched, &mut out, 8);
    }
    let after_retx = s.cwnd();
    // Additional dup ACKs inflate.
    plain_ack(&mut s, &mut sched, &mut out, 8);
    assert_eq!(s.cwnd(), after_retx + 1.0);
    // The retransmission is finally acknowledged: deflate to ssthresh.
    let recovery_ack = s.snd_nxt();
    plain_ack(&mut s, &mut sched, &mut out, recovery_ack.0);
    assert!(!s.in_fast_recovery());
    assert_eq!(s.cwnd(), s.ssthresh());
    assert_eq!(s.counters().timeouts, 0);
}

#[test]
fn reno_partial_ack_exits_recovery_newreno_stays() {
    for (variant, expect_still_in_fr) in [(TcpVariant::Reno, false), (TcpVariant::NewReno, true)] {
        let (mut s, mut sched, mut out) = sender(variant);
        s.force_ssthresh(2.0);
        s.on_app_packets(100, &mut sched, &mut out);
        for a in 1..=8u64 {
            plain_ack(&mut s, &mut sched, &mut out, a);
        }
        for _ in 0..3 {
            plain_ack(&mut s, &mut sched, &mut out, 8);
        }
        assert!(s.in_fast_recovery());
        out.clear();
        // Partial ACK: one packet past the hole, but well short of
        // everything outstanding at entry.
        let partial = SeqNo(9);
        assert!(partial < s.snd_nxt());
        plain_ack(&mut s, &mut sched, &mut out, 9);
        assert_eq!(
            s.in_fast_recovery(),
            expect_still_in_fr,
            "variant {variant:?}"
        );
        if expect_still_in_fr {
            // NewReno retransmits the next hole immediately.
            assert!(data_seqs(&out).contains(&9), "NewReno must plug the hole");
        }
    }
}

#[test]
fn tahoe_fast_retransmit_collapses_to_slow_start() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Tahoe);
    s.force_ssthresh(2.0);
    s.on_app_packets(100, &mut sched, &mut out);
    for a in 1..=8u64 {
        plain_ack(&mut s, &mut sched, &mut out, a);
    }
    out.clear();
    for _ in 0..3 {
        plain_ack(&mut s, &mut sched, &mut out, 8);
    }
    assert!(!s.in_fast_recovery(), "Tahoe has no fast recovery");
    assert!(s.in_slow_start());
    assert_eq!(s.cwnd(), 1.0);
    // Go-back-N: exactly one packet (the hole) goes out at cwnd 1.
    assert_eq!(data_seqs(&out), vec![8]);
    assert_eq!(s.counters().fast_retransmits, 1);
}

#[test]
fn duplicate_acks_with_nothing_outstanding_are_ignored() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(1, &mut sched, &mut out);
    plain_ack(&mut s, &mut sched, &mut out, 1);
    for _ in 0..5 {
        plain_ack(&mut s, &mut sched, &mut out, 1);
    }
    assert_eq!(s.counters().dup_acks_received, 0);
    assert!(!s.in_fast_recovery());
}

/// Two holes in one window: Reno exits recovery on the partial ACK and
/// (with no further dup ACKs) stalls into a timeout; SACK repairs both
/// holes within the same recovery episode.
#[test]
fn sack_repairs_multiple_holes_in_one_recovery() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Sack);
    // Open the window wide enough for a 14-packet flight.
    s.force_congestion_avoidance(14.0, 2.0);
    s.on_app_packets(100, &mut sched, &mut out);
    assert_eq!(s.snd_nxt(), SeqNo(14));
    out.clear();
    // Packets 8 and 10 are lost; 9 and 11..=13 arrive and generate
    // dup ACKs for 8 with growing SACK information. ACKs 1..8 arrive
    // first.
    for a in 1..=8u64 {
        plain_ack(&mut s, &mut sched, &mut out, a);
    }
    out.clear();
    let sack1 = SackBlocks::from_ranges(&[(SeqNo(9), SeqNo(10))]);
    let sack2 = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(12)), (SeqNo(9), SeqNo(10))]);
    let sack3 = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(13)), (SeqNo(9), SeqNo(10))]);
    let sack4 = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(14)), (SeqNo(9), SeqNo(10))]);
    s.on_ack(SeqNo(8), false, sack1, &mut sched, &mut out);
    s.on_ack(SeqNo(8), false, sack2, &mut sched, &mut out);
    s.on_ack(SeqNo(8), false, sack3, &mut sched, &mut out);
    assert!(s.in_fast_recovery());
    // Hole 8 was fast-retransmitted.
    assert_eq!(data_seqs(&out), vec![8]);
    out.clear();
    // The 4th dup ACK: the scoreboard now shows 3 SACKed segments above
    // hole 10 (11, 12, 13), so RFC 3517 declares it lost and SACK
    // repairs it without waiting for the partial ACK.
    s.on_ack(SeqNo(8), false, sack4, &mut sched, &mut out);
    assert_eq!(data_seqs(&out), vec![10]);
    out.clear();
    // Partial ACK up to 10 (hole 8 repaired): stay in recovery.
    s.on_ack(SeqNo(10), false, sack4, &mut sched, &mut out);
    assert!(s.in_fast_recovery(), "SACK stays in recovery on partial ACK");
    // Full ACK ends the episode with no timeout.
    let recover = s.snd_nxt();
    plain_ack(&mut s, &mut sched, &mut out, recover.0);
    assert!(!s.in_fast_recovery());
    assert_eq!(s.counters().timeouts, 0);
    assert_eq!(s.counters().fast_retransmits, 1);
}

/// Holes without three SACKed segments above them are treated as
/// in-flight, not lost (RFC 3517 DupThresh): no spurious retransmission.
#[test]
fn sack_requires_dupthresh_evidence_before_repairing() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Sack);
    s.force_congestion_avoidance(14.0, 2.0);
    s.on_app_packets(100, &mut sched, &mut out);
    for a in 1..=8u64 {
        plain_ack(&mut s, &mut sched, &mut out, a);
    }
    out.clear();
    // Only packets 9 and 11 SACKed: hole 10 has one segment above it.
    let weak = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(12)), (SeqNo(9), SeqNo(10))]);
    for _ in 0..3 {
        s.on_ack(SeqNo(8), false, weak, &mut sched, &mut out);
    }
    assert!(s.in_fast_recovery());
    assert_eq!(data_seqs(&out), vec![8], "only the cumulative hole goes out");
    out.clear();
    // Further dup ACKs with the same weak evidence must not touch 10.
    s.on_ack(SeqNo(8), false, weak, &mut sched, &mut out);
    assert!(!data_seqs(&out).contains(&10));
}

#[test]
fn sack_scoreboard_is_cleared_by_timeout_and_cumack() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Sack);
    s.on_app_packets(10, &mut sched, &mut out);
    let sack = SackBlocks::from_ranges(&[(SeqNo(0), SeqNo(1))]);
    // A dup ack at snd_una=0 carrying SACK for packet 0 is nonsense
    // (below the hole), but ranges intersected with [snd_una, snd_nxt)
    // keep the scoreboard consistent; a cumulative ACK retires entries.
    s.on_ack(SeqNo(1), false, sack, &mut sched, &mut out);
    assert_eq!(s.snd_una(), SeqNo(1));
    // Timeout clears whatever remains and goes back N.
    let (_, ev) = sched.pop().expect("rto armed");
    s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
    assert_eq!(s.counters().timeouts, 1);
    assert!(s.in_slow_start());
}
