//! Property tests for the congestion-control policy layer.
//!
//! Three families:
//!
//! 1. **Floor invariants** — every [`CongestionControl`] implementation,
//!    driven through arbitrary hook sequences (including GAIMD with
//!    random in-range exponents), keeps `cwnd >= 1` segment and
//!    `ssthresh >= 2` segments.
//! 2. **Reno equivalence** — `GeneralizedAimd { alpha: 0, beta: 1 }`
//!    matches Reno *step for step*, bitwise, on the same hook sequence.
//! 3. **Hook exclusivity** — at the engine level, the congestion window
//!    changes only when a policy hook runs: application writes and pure
//!    passage of time leave it untouched.

use proptest::prelude::*;
use tcpburst_des::{Scheduler, SimTime};
use tcpburst_net::{FlowId, NodeId, SackBlocks, SeqNo};
use tcpburst_transport::{
    AckSample, CongestionControl, GaimdParams, LossContext, LossResponse, Policy, TcpConfig,
    TcpSender, TcpVariant, TransportEvent,
};

/// One policy hook invocation, with the engine-side state transition the
/// reliability engine would apply around it.
#[derive(Debug, Clone, Copy)]
enum Hook {
    /// A new ACK outside recovery (`grow_window`).
    Ack,
    /// Third duplicate ACK (`enter_loss_recovery`).
    Loss,
    /// Retransmission timeout.
    Rto,
    /// ECN echo.
    Ecn,
    /// Recovery exit deflation.
    PostRecovery,
}

fn hook_strategy() -> impl Strategy<Value = Hook> {
    prop_oneof![
        Just(Hook::Ack),
        Just(Hook::Loss),
        Just(Hook::Rto),
        Just(Hook::Ecn),
        Just(Hook::PostRecovery),
    ]
}

/// Mirrors the engine's state transitions around each hook, returning the
/// `(cwnd, ssthresh)` trajectory.
fn drive_policy(policy: &mut Policy, hooks: &[Hook], advertised: f64) -> Vec<(f64, f64)> {
    let mut cwnd = 1.0f64;
    let mut ssthresh = advertised;
    let mut trajectory = Vec::with_capacity(hooks.len());
    for &h in hooks {
        let flight = cwnd.min(advertised).max(1.0).floor();
        let loss = LossContext {
            now: SimTime::ZERO,
            flight,
            cwnd,
            ssthresh,
            resume_from: SeqNo(0),
            min_rtt: None,
        };
        match h {
            Hook::Ack => {
                let sample = AckSample {
                    now: SimTime::ZERO,
                    cwnd,
                    ssthresh,
                    in_slow_start: cwnd < ssthresh,
                    advertised,
                    newly_acked: 1,
                    flight,
                    rtt: None,
                    srtt: None,
                    min_rtt: None,
                    rate: None,
                };
                if let Some(w) = policy.on_ack(&sample) {
                    cwnd = w;
                }
            }
            Hook::Loss => match policy.on_loss_signal(&loss) {
                LossResponse::Collapse { ssthresh: s } => {
                    ssthresh = s;
                    cwnd = 1.0;
                }
                LossResponse::FastRecovery { ssthresh: s } => {
                    ssthresh = s;
                    cwnd = s + 3.0;
                }
            },
            Hook::Rto => {
                ssthresh = policy.on_rto(&loss);
                cwnd = 1.0;
            }
            Hook::Ecn => {
                ssthresh = policy.on_ecn_cwnd(&loss);
                cwnd = ssthresh;
            }
            Hook::PostRecovery => {
                cwnd = policy.post_recovery_cwnd(ssthresh);
            }
        }
        trajectory.push((cwnd, ssthresh));
    }
    trajectory
}

fn policy_for(variant: TcpVariant, gaimd: GaimdParams) -> Policy {
    let mut cfg = TcpConfig::paper(variant);
    cfg.gaimd = gaimd;
    Policy::for_config(&cfg)
}

fn variants() -> impl Strategy<Value = TcpVariant> {
    (0usize..TcpVariant::ALL.len()).prop_map(|i| TcpVariant::ALL[i])
}

fn gaimd_beta() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1.0f64), (0.001f64..1.0)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// cwnd never falls below 1 MSS and ssthresh never below 2 MSS, for
    /// every policy and any hook sequence.
    #[test]
    fn every_policy_keeps_window_floors(
        variant in variants(),
        alpha in 0.0f64..1.0,
        beta in gaimd_beta(),
        hooks in proptest::collection::vec(hook_strategy(), 1..100),
    ) {
        let mut policy = policy_for(variant, GaimdParams { alpha, beta });
        for (i, (cwnd, ssthresh)) in drive_policy(&mut policy, &hooks, 20.0).iter().enumerate() {
            prop_assert!(
                *cwnd >= 1.0,
                "{variant:?} cwnd {cwnd} fell below 1 at step {i} ({:?})", hooks[i]
            );
            prop_assert!(
                *ssthresh >= 2.0,
                "{variant:?} ssthresh {ssthresh} fell below 2 at step {i} ({:?})", hooks[i]
            );
        }
    }

    /// The default exponents collapse GAIMD to Reno bit-for-bit on any
    /// hook sequence: pow(x, 0) == 1 and pow(x, 1) == x exactly in
    /// IEEE-754, and x - x/2 == x/2 (Sterbenz).
    #[test]
    fn gaimd_default_exponents_equal_reno_stepwise(
        hooks in proptest::collection::vec(hook_strategy(), 1..200),
    ) {
        let mut reno = policy_for(TcpVariant::Reno, GaimdParams::default());
        let mut gaimd = policy_for(TcpVariant::Gaimd, GaimdParams::default());
        let reno_t = drive_policy(&mut reno, &hooks, 20.0);
        let gaimd_t = drive_policy(&mut gaimd, &hooks, 20.0);
        for (i, ((rc, rs), (gc, gs))) in reno_t.iter().zip(&gaimd_t).enumerate() {
            prop_assert_eq!(rc.to_bits(), gc.to_bits(), "cwnd diverged at step {}", i);
            prop_assert_eq!(rs.to_bits(), gs.to_bits(), "ssthresh diverged at step {}", i);
        }
    }

    /// The engine changes cwnd only inside policy hooks: submitting
    /// application data and letting time pass (without a timer firing)
    /// never move the window.
    #[test]
    fn cwnd_changes_only_at_policy_hooks(
        variant in variants(),
        codes in proptest::collection::vec(0u64..12_000, 1..50),
    ) {
        let cfg = TcpConfig::paper(variant);
        let mut s = TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1));
        let mut sched: Scheduler<TransportEvent> = Scheduler::new();
        let mut out = Vec::new();
        // Open the window a little so sends actually happen.
        s.on_app_packets(2, &mut sched, &mut out);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        for &code in &codes {
            let (n, ms) = (1 + code % 30, 1 + code / 30);
            let cwnd_before = s.cwnd();
            s.on_app_packets(n, &mut sched, &mut out);
            prop_assert_eq!(
                s.cwnd().to_bits(), cwnd_before.to_bits(),
                "app write moved cwnd for {:?}", variant
            );
            // Advance the clock without delivering the popped timer events.
            let target = sched.now() + tcpburst_des::SimDuration::from_millis(ms);
            while sched.pop_until(target).is_some() {}
            prop_assert_eq!(
                s.cwnd().to_bits(), cwnd_before.to_bits(),
                "time passing moved cwnd for {:?}", variant
            );
        }
    }
}
