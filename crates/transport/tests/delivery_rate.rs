//! The delivery-rate sampler (the BBR-style `delivered`/`delivered_time`
//! stamps harvested on each cumulative ACK).
//!
//! Covers the properties the modern policies rely on: samples are
//! monotone (the `delivered` count never moves backwards and each
//! sample's interval is positive), app-limited flights are detected and
//! flagged, retransmitted segments never anchor a sample (Karn's rule,
//! same as the RTT estimator), and the windowed min-RTT only ratchets
//! down.

mod common;

use common::{ack_after, advance, plain_ack, sender};
use tcpburst_des::SimDuration;
use tcpburst_net::SackBlocks;
use tcpburst_transport::TcpVariant;

#[test]
fn delivered_count_tracks_cumulative_acks() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    assert_eq!(s.delivered(), 0);
    s.on_app_packets(10, &mut sched, &mut out);
    ack_after(&mut s, &mut sched, &mut out, 40);
    assert_eq!(s.delivered(), 1);
    // Slow start opened the window to 2; ack both at once.
    ack_after(&mut s, &mut sched, &mut out, 40);
    let upto = s.snd_una().0;
    assert_eq!(s.delivered(), upto, "delivered must equal the cumulative ACK point");
}

#[test]
fn samples_are_monotone_and_positive() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(50, &mut sched, &mut out);
    let mut last_delivered = 0;
    for _ in 0..12 {
        ack_after(&mut s, &mut sched, &mut out, 44);
        let rate = s.last_rate_sample().expect("clean ACK must carry a sample");
        assert!(rate.delivered > last_delivered, "delivered went backwards");
        assert!(rate.prior_delivered < rate.delivered);
        assert!(!rate.interval.is_zero(), "zero-interval sample escaped the guard");
        assert!(rate.delivery_rate > 0.0);
        // delivery_rate is (delivered − prior) / interval by construction.
        let expect = (rate.delivered - rate.prior_delivered) as f64 / rate.interval.as_secs_f64();
        assert!((rate.delivery_rate - expect).abs() < 1e-9);
        last_delivered = rate.delivered;
    }
}

#[test]
fn draining_the_backlog_marks_the_flight_app_limited() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    // One lonely segment: its transmission empties the send buffer, so
    // the sample it produces measures the application, not the path.
    s.on_app_packets(1, &mut sched, &mut out);
    ack_after(&mut s, &mut sched, &mut out, 40);
    let rate = s.last_rate_sample().expect("sample");
    assert!(rate.is_app_limited, "a backlog-draining flight is app-limited");

    // A deep backlog keeps the window the binding constraint.
    s.on_app_packets(100, &mut sched, &mut out);
    ack_after(&mut s, &mut sched, &mut out, 40);
    let rate = s.last_rate_sample().expect("sample");
    assert!(!rate.is_app_limited, "a window-limited flight is not app-limited");
}

#[test]
fn retransmitted_segments_never_anchor_a_sample() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::NewReno);
    s.on_app_packets(40, &mut sched, &mut out);
    // Grow the window so a loss episode has dup-ACK fuel.
    for _ in 0..6 {
        ack_after(&mut s, &mut sched, &mut out, 40);
    }
    let hole = s.snd_una();
    assert!(s.in_flight() >= 4, "need a window to fast-retransmit from");
    // Three dup ACKs: fast retransmit of `hole`.
    for _ in 0..3 {
        s.on_ack(hole, false, SackBlocks::EMPTY, &mut sched, &mut out);
    }
    assert!(s.in_fast_recovery());
    let before = s.last_rate_sample();
    // The partial ACK retires exactly the retransmitted slot; Karn's rule
    // must discard it as a rate anchor, leaving the stale sample in place.
    plain_ack(&mut s, &mut sched, &mut out, hole.0 + 1);
    assert_eq!(
        s.last_rate_sample(),
        None,
        "a retransmitted segment anchored a delivery-rate sample"
    );
    assert_ne!(before, None, "the pre-loss ACKs did produce samples");
}

#[test]
fn min_rtt_only_ratchets_down() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(30, &mut sched, &mut out);
    assert_eq!(s.min_rtt(), None);
    // Cumulatively ACK the whole flight `delay` ms after it went out: the
    // rate/RTT anchor is the newest retired segment, which was transmitted
    // at the previous ACK's instant, so the sampled RTT equals `delay`.
    let round = |s: &mut tcpburst_transport::TcpSender,
                 sched: &mut common::Sched,
                 out: &mut Vec<tcpburst_net::Packet>,
                 delay_ms: u64| {
        let nxt = s.snd_nxt().0;
        advance(sched, delay_ms);
        plain_ack(s, sched, out, nxt);
    };
    round(&mut s, &mut sched, &mut out, 80);
    assert_eq!(s.min_rtt(), Some(SimDuration::from_millis(80)));
    // A slower round trip leaves the floor alone...
    round(&mut s, &mut sched, &mut out, 120);
    assert_eq!(s.min_rtt(), Some(SimDuration::from_millis(80)));
    // ...and a faster one lowers it.
    round(&mut s, &mut sched, &mut out, 44);
    assert_eq!(s.min_rtt(), Some(SimDuration::from_millis(44)));
}

#[test]
fn first_transmission_round_has_prior_delivered_zero() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(5, &mut sched, &mut out);
    ack_after(&mut s, &mut sched, &mut out, 40);
    let rate = s.last_rate_sample().expect("sample");
    assert_eq!(rate.prior_delivered, 0);
    assert_eq!(rate.delivered, 1);
}

#[test]
fn dup_acks_leave_the_last_sample_untouched() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(20, &mut sched, &mut out);
    ack_after(&mut s, &mut sched, &mut out, 40);
    let sample = s.last_rate_sample();
    assert_ne!(sample, None);
    let una = s.snd_una();
    s.on_ack(una, false, SackBlocks::EMPTY, &mut sched, &mut out);
    assert_eq!(s.last_rate_sample(), sample, "a dup ACK is not a delivery");
    // Guard the harness assumption: the dup ACK really was a dup.
    assert_eq!(s.snd_una(), una);
}
