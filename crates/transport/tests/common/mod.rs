//! Shared harness for the sender integration tests.
//!
//! Every per-module test file (`sender_window`, `sender_recovery`,
//! `sender_timer`, `sender_vegas`, `sender_ecn`, …) drives a
//! [`TcpSender`] through the same construction and clock plumbing; this
//! module holds the one copy of it (it used to be duplicated ~30× across
//! the old monolithic sender test module).
//!
//! Each integration-test binary compiles its own copy, and no single
//! binary uses every helper, hence the blanket `dead_code` allowance.
#![allow(dead_code)]

use tcpburst_des::{Scheduler, SimDuration};
use tcpburst_net::{FlowId, NodeId, Packet, PacketKind, SackBlocks, SeqNo};
use tcpburst_transport::{TcpConfig, TcpSender, TcpVariant, TransportEvent};

pub type Sched = Scheduler<TransportEvent>;

/// A fresh paper-configured sender plus its scheduler and output buffer.
pub fn sender(variant: TcpVariant) -> (TcpSender, Sched, Vec<Packet>) {
    sender_with(TcpConfig::paper(variant))
}

/// Same, from an explicit (possibly customized) configuration.
pub fn sender_with(cfg: TcpConfig) -> (TcpSender, Sched, Vec<Packet>) {
    (
        TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1)),
        Sched::new(),
        Vec::new(),
    )
}

/// The data sequence numbers in `out`, in emission order.
pub fn data_seqs(out: &[Packet]) -> Vec<u64> {
    out.iter()
        .filter_map(|p| match p.kind {
            PacketKind::TcpData { seq, .. } => Some(seq.0),
            _ => None,
        })
        .collect()
}

/// Advances the scheduler clock without dispatching (timer events are
/// delivered manually where a test needs them).
pub fn advance(sched: &mut Sched, ms: u64) {
    let target = sched.now() + SimDuration::from_millis(ms);
    while sched.pop_until(target).is_some() {}
}

/// Acknowledges the oldest outstanding packet exactly `delay_ms` after its
/// (re)transmission, advancing the simulated clock as needed.
pub fn ack_after(s: &mut TcpSender, sched: &mut Sched, out: &mut Vec<Packet>, delay_ms: u64) {
    let sent = s.oldest_unacked_sent_at().expect("something in flight");
    let target = sent + SimDuration::from_millis(delay_ms);
    while sched.pop_until(target).is_some() {}
    let a = s.snd_una().next();
    s.on_ack(a, false, SackBlocks::EMPTY, sched, out);
}

/// Cumulatively ACKs `upto` with no SACK/ECE decoration.
pub fn plain_ack(s: &mut TcpSender, sched: &mut Sched, out: &mut Vec<Packet>, upto: u64) {
    s.on_ack(SeqNo(upto), false, SackBlocks::EMPTY, sched, out);
}
