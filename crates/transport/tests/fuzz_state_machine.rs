//! Property-based fuzzing of the TCP sender/receiver state machines.
//!
//! A sender is driven with arbitrary-but-causally-valid event sequences
//! (application writes, cumulative ACKs drawn from the valid range, timer
//! firings, duplicate ACKs) and must uphold its invariants throughout:
//! no panic, window bounds, sequence-number ordering, counter consistency.

use proptest::prelude::*;
use tcpburst_des::{Scheduler, SimDuration};
use tcpburst_net::{FlowId, NodeId, Packet, PacketKind, SackBlocks, SeqNo};
use tcpburst_transport::{TcpConfig, TcpSender, TcpVariant, TimerKind, TransportEvent};

#[derive(Debug, Clone)]
enum Op {
    /// Submit 1..=n application packets.
    App(u64),
    /// Acknowledge up to the k-th outstanding packet (cumulative).
    AckForward(u64),
    /// Send a duplicate ACK (ack == snd_una).
    DupAck,
    /// Same, but with the ECN-echo bit set.
    EceAck,
    /// Let simulated time pass (milliseconds).
    Advance(u64),
    /// Fire the next pending timer event, if any.
    FireTimer,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..20).prop_map(Op::App),
        (1u64..25).prop_map(Op::AckForward),
        Just(Op::DupAck),
        Just(Op::EceAck),
        (1u64..500).prop_map(Op::Advance),
        Just(Op::FireTimer),
    ]
}

fn variants() -> impl Strategy<Value = TcpVariant> {
    prop_oneof![
        Just(TcpVariant::Tahoe),
        Just(TcpVariant::Reno),
        Just(TcpVariant::NewReno),
        Just(TcpVariant::Vegas),
        Just(TcpVariant::Sack),
        Just(TcpVariant::Gaimd),
    ]
}

/// Drives one sender through `ops`, checking invariants after every step.
fn drive(variant: TcpVariant, ecn: bool, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut cfg = TcpConfig::paper(variant);
    cfg.ecn = ecn;
    cfg.trace_cwnd = true;
    let mut s = TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1));
    let mut sched: Scheduler<TransportEvent> = Scheduler::new();
    let mut out: Vec<Packet> = Vec::new();
    let mut timer_backlog: Vec<TransportEvent> = Vec::new();

    for op in ops {
        match *op {
            Op::App(n) => s.on_app_packets(n, &mut sched, &mut out),
            Op::AckForward(k) => {
                // A cumulative ACK for min(snd_una + k, snd_nxt): the
                // receiver can never acknowledge data that was not sent.
                let target = SeqNo((s.snd_una().0 + k).min(s.snd_nxt().0));
                if target > s.snd_una() {
                    s.on_ack(target, false, SackBlocks::EMPTY, &mut sched, &mut out);
                }
            }
            Op::DupAck => s.on_ack(s.snd_una(), false, SackBlocks::EMPTY, &mut sched, &mut out),
            Op::EceAck => s.on_ack(s.snd_una(), true, SackBlocks::EMPTY, &mut sched, &mut out),
            Op::Advance(ms) => {
                let target = sched.now() + SimDuration::from_millis(ms);
                while let Some((_, ev)) = sched.pop_until(target) {
                    timer_backlog.push(ev);
                }
            }
            Op::FireTimer => {
                if let Some(ev) = timer_backlog.pop() {
                    s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
                } else if let Some((_, ev)) = sched.pop() {
                    s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
                }
            }
        }

        // --- invariants ---
        prop_assert!(s.cwnd() >= 1.0, "cwnd {} fell below 1", s.cwnd());
        prop_assert!(s.ssthresh() >= 2.0, "ssthresh {} fell below 2", s.ssthresh());
        prop_assert!(
            s.snd_una() <= s.snd_nxt(),
            "snd_una {} passed snd_nxt {}",
            s.snd_una(),
            s.snd_nxt()
        );
        prop_assert!(
            s.in_flight() <= 20,
            "flight {} exceeds the advertised window",
            s.in_flight()
        );
        let c = s.counters();
        prop_assert!(c.retransmits <= c.data_packets_sent);
        prop_assert!(c.data_packets_sent <= c.app_packets_submitted + c.retransmits);
        // Every emitted packet is a data segment addressed to the peer.
        for p in &out {
            let is_data = matches!(p.kind, PacketKind::TcpData { .. });
            prop_assert!(is_data, "sender emitted a non-data packet");
            prop_assert_eq!(p.dst, NodeId(1));
        }
        out.clear();
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sender_invariants_hold_under_arbitrary_events(
        variant in variants(),
        ecn in any::<bool>(),
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        drive(variant, ecn, &ops)?;
    }

    /// The receiver never panics and its cumulative ACK never regresses,
    /// whatever segment order arrives.
    #[test]
    fn receiver_ack_is_monotone_under_reordering(
        seqs in proptest::collection::vec(0u64..40, 1..200),
        delayed_ack in any::<bool>(),
    ) {
        let mut cfg = TcpConfig::paper(TcpVariant::Reno);
        cfg.delayed_ack = delayed_ack;
        let mut r = tcpburst_transport::TcpReceiver::new(cfg, FlowId(0), NodeId(1), NodeId(0));
        let mut sched: Scheduler<TransportEvent> = Scheduler::new();
        let mut out = Vec::new();
        let mut highest_ack = 0u64;
        for &q in &seqs {
            let pkt = Packet {
                flow: FlowId(0),
                kind: PacketKind::TcpData { seq: SeqNo(q), retransmit: false },
                size_bytes: 1500,
                src: NodeId(0),
                dst: NodeId(1),
                created_at: sched.now(),
                ecn: tcpburst_net::Ecn::NotCapable,
            };
            r.on_data(&pkt, &mut sched, &mut out);
            for p in out.drain(..) {
                let PacketKind::TcpAck { ack, .. } = p.kind else {
                    return Err(TestCaseError::fail("receiver emitted non-ACK"));
                };
                prop_assert!(ack.0 >= highest_ack, "ACK regressed {} -> {}", highest_ack, ack.0);
                highest_ack = ack.0;
            }
        }
        // Everything at or above the cumulative point is either delivered or
        // still buffered; the counters must account for every arrival.
        let c = r.counters();
        prop_assert_eq!(
            c.delivered + c.duplicates + r.reorder_buffer_len() as u64,
            seqs.len() as u64
        );
        // Total delivered equals the cumulative point.
        prop_assert_eq!(c.delivered, r.rcv_nxt().0);
    }

    /// Fire every timer at most once after the fact: stale generations are
    /// always ignored (no spurious timeout avalanche).
    #[test]
    fn stale_timer_replay_is_harmless(
        app in 1u64..50,
        replays in 1usize..20,
    ) {
        let cfg = TcpConfig::paper(TcpVariant::Reno);
        let mut s = TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1));
        let mut sched: Scheduler<TransportEvent> = Scheduler::new();
        let mut out = Vec::new();
        s.on_app_packets(app, &mut sched, &mut out);
        // Collect the armed RTO event, then deliver it many times.
        let Some((_, ev)) = sched.pop() else { return Ok(()); };
        prop_assert_eq!(ev.kind, TimerKind::Rto);
        for _ in 0..replays {
            s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
        }
        // Only the first replay may count; the rest are stale.
        prop_assert!(s.counters().timeouts <= 1, "timeouts {}", s.counters().timeouts);
    }
}
