//! ECN: the once-per-RTT echo response and capability marking.

mod common;

use common::{plain_ack, sender, sender_with};
use tcpburst_net::{Ecn, SackBlocks, SeqNo};
use tcpburst_transport::{TcpConfig, TcpVariant};

#[test]
fn ecn_echo_halves_window_once_per_rtt() {
    let mut cfg = TcpConfig::paper(TcpVariant::Reno);
    cfg.ecn = true;
    let (mut s, mut sched, mut out) = sender_with(cfg);
    s.force_ssthresh(2.0);
    s.on_app_packets(100, &mut sched, &mut out);
    for a in 1..=8u64 {
        plain_ack(&mut s, &mut sched, &mut out, a);
    }
    let before = s.cwnd();
    let flight = s.in_flight() as f64;
    // First ECE: cut to half the flight.
    s.on_ack(SeqNo(9), true, SackBlocks::EMPTY, &mut sched, &mut out);
    assert_eq!(s.counters().ecn_window_cuts, 1);
    assert!(s.cwnd() <= (flight / 2.0).max(2.0) + 1e-9);
    assert!(s.cwnd() < before);
    // A second ECE within the same RTT is ignored (once-per-RTT rule).
    let after_first = s.cwnd();
    s.on_ack(SeqNo(10), true, SackBlocks::EMPTY, &mut sched, &mut out);
    assert_eq!(s.counters().ecn_window_cuts, 1);
    assert!(s.cwnd() >= after_first - 1e-9);
    // No retransmissions happened: nothing was lost.
    assert_eq!(s.counters().retransmits, 0);
    assert_eq!(s.counters().timeouts, 0);
}

#[test]
fn ecn_echo_ignored_when_not_negotiated() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(10, &mut sched, &mut out);
    s.on_ack(SeqNo(1), true, SackBlocks::EMPTY, &mut sched, &mut out);
    assert_eq!(s.counters().ecn_window_cuts, 0);
}

#[test]
fn ecn_sender_marks_segments_capable() {
    let mut cfg = TcpConfig::paper(TcpVariant::Reno);
    cfg.ecn = true;
    let (mut s, mut sched, mut out) = sender_with(cfg);
    s.on_app_packets(1, &mut sched, &mut out);
    assert_eq!(out[0].ecn, Ecn::Capable);
}
