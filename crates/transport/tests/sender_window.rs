//! Window mechanics outside loss recovery: slow start, congestion
//! avoidance, the advertised-window cap, backlog accounting, counters,
//! and the optional cwnd trace.

mod common;

use common::{advance, data_seqs, plain_ack, sender, sender_with};
use tcpburst_transport::{TcpConfig, TcpVariant};

#[test]
fn initial_window_sends_one_packet() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(10, &mut sched, &mut out);
    assert_eq!(data_seqs(&out), vec![0]);
    assert_eq!(s.in_flight(), 1);
    assert_eq!(s.backlog(), 9);
    assert!(s.in_slow_start());
}

#[test]
fn slow_start_doubles_per_rtt() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(100, &mut sched, &mut out);
    out.clear();
    // ACK the first packet: cwnd 1 -> 2, releasing two more packets.
    advance(&mut sched, 44);
    plain_ack(&mut s, &mut sched, &mut out, 1);
    assert_eq!(data_seqs(&out), vec![1, 2]);
    assert_eq!(s.cwnd(), 2.0);
    out.clear();
    // ACK both: cwnd -> 4.
    advance(&mut sched, 44);
    plain_ack(&mut s, &mut sched, &mut out, 2);
    plain_ack(&mut s, &mut sched, &mut out, 3);
    assert_eq!(s.cwnd(), 4.0);
    assert_eq!(data_seqs(&out), vec![3, 4, 5, 6]);
}

#[test]
fn congestion_avoidance_grows_linearly() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.force_ssthresh(2.0);
    s.on_app_packets(100, &mut sched, &mut out);
    out.clear();
    // First ACK: slow start (cwnd 1 < ssthresh 2) -> cwnd 2, phase CA.
    plain_ack(&mut s, &mut sched, &mut out, 1);
    assert!(!s.in_slow_start());
    assert_eq!(s.cwnd(), 2.0);
    // Two more ACKs at cwnd 2: each adds 1/cwnd.
    plain_ack(&mut s, &mut sched, &mut out, 2);
    assert!((s.cwnd() - 2.5).abs() < 1e-9);
    plain_ack(&mut s, &mut sched, &mut out, 3);
    assert!((s.cwnd() - 2.9).abs() < 1e-9);
}

#[test]
fn cwnd_capped_by_advertised_window() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(1000, &mut sched, &mut out);
    let mut acked = 0u64;
    for _ in 0..100 {
        acked += 1;
        plain_ack(&mut s, &mut sched, &mut out, acked);
    }
    assert!(s.cwnd() <= 20.0);
    assert!(s.in_flight() <= 20);
}

#[test]
fn gaimd_default_exponents_track_reno_exactly() {
    // The engine-level counterpart of the golden-table equivalence: with
    // (alpha = 0, beta = 1) GAIMD's per-ACK arithmetic is bitwise Reno's.
    let (mut reno, mut sched_r, mut out_r) = sender(TcpVariant::Reno);
    let (mut gaimd, mut sched_g, mut out_g) = sender(TcpVariant::Gaimd);
    reno.force_ssthresh(4.0);
    gaimd.force_ssthresh(4.0);
    reno.on_app_packets(200, &mut sched_r, &mut out_r);
    gaimd.on_app_packets(200, &mut sched_g, &mut out_g);
    let mut acked = 0u64;
    for _ in 0..60 {
        acked += 1;
        plain_ack(&mut reno, &mut sched_r, &mut out_r, acked);
        plain_ack(&mut gaimd, &mut sched_g, &mut out_g, acked);
        assert_eq!(reno.cwnd().to_bits(), gaimd.cwnd().to_bits(), "ack {acked}");
        assert_eq!(reno.ssthresh().to_bits(), gaimd.ssthresh().to_bits());
    }
    assert_eq!(data_seqs(&out_r), data_seqs(&out_g));
}

#[test]
fn backlog_waits_for_window_not_app() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(50, &mut sched, &mut out);
    assert_eq!(s.backlog(), 49);
    assert_eq!(s.counters().peak_backlog, 49);
    assert_eq!(s.counters().app_packets_submitted, 50);
    // As the window opens, the backlog drains in bursts — the paper's
    // slow-start burst mechanism.
    out.clear();
    plain_ack(&mut s, &mut sched, &mut out, 1);
    assert_eq!(out.len(), 2);
    assert_eq!(s.backlog(), 47);
}

#[test]
fn cwnd_trace_records_changes() {
    let mut cfg = TcpConfig::paper(TcpVariant::Reno);
    cfg.trace_cwnd = true;
    let (mut s, mut sched, mut out) = sender_with(cfg);
    s.on_app_packets(10, &mut sched, &mut out);
    advance(&mut sched, 44);
    plain_ack(&mut s, &mut sched, &mut out, 1);
    let trace = s.cwnd_trace().expect("tracing was enabled");
    assert!(trace.len() >= 2);
    assert_eq!(trace.last().unwrap().1, 2.0);
}

#[test]
fn cwnd_trace_unallocated_unless_requested() {
    // Tracing is an instrumentation opt-in: an untraced sender must not
    // carry trace storage at all, however busy the connection gets.
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    assert!(s.cwnd_trace().is_none());
    s.on_app_packets(100, &mut sched, &mut out);
    for a in 1..=30u64 {
        plain_ack(&mut s, &mut sched, &mut out, a);
    }
    assert!(s.cwnd_trace().is_none(), "trace appeared without trace_cwnd");
}

#[test]
fn counters_track_sends_and_acks() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(3, &mut sched, &mut out);
    plain_ack(&mut s, &mut sched, &mut out, 1);
    plain_ack(&mut s, &mut sched, &mut out, 2);
    plain_ack(&mut s, &mut sched, &mut out, 3);
    let c = s.counters();
    assert_eq!(c.data_packets_sent, 3);
    assert_eq!(c.acks_received, 3);
    assert_eq!(c.retransmits, 0);
    assert!(c.rtt_samples >= 1);
}
