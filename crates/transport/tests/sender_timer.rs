//! The retransmission timer: timeout collapse, stale-firing immunity,
//! eager cancellation, and Karn's sampling rule.

mod common;

use common::{plain_ack, sender};
use tcpburst_des::SimTime;
use tcpburst_net::{PacketKind, SeqNo};
use tcpburst_transport::{TcpVariant, TimerKind};

#[test]
fn timeout_collapses_window_and_backs_off() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(10, &mut sched, &mut out);
    out.clear();
    // Let the RTO fire (no ACKs at all).
    let (t, ev) = sched.pop().expect("RTO scheduled");
    assert_eq!(ev.kind, TimerKind::Rto);
    assert_eq!(t, SimTime::ZERO + s.rtt().rto()); // armed at send time
    s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
    assert_eq!(s.counters().timeouts, 1);
    assert_eq!(s.cwnd(), 1.0);
    assert!(s.in_slow_start());
    // The first packet is retransmitted, marked as such.
    assert!(matches!(
        out[0].kind,
        PacketKind::TcpData { seq: SeqNo(0), retransmit: true }
    ));
    assert_eq!(s.counters().retransmits, 1);
    assert_eq!(s.rtt().backoff_level(), 1);
}

#[test]
fn stale_rto_firing_is_ignored() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(5, &mut sched, &mut out);
    let (_, stale) = sched.pop().expect("first RTO");
    // An ACK re-arms the timer, invalidating the popped firing.
    plain_ack(&mut s, &mut sched, &mut out, 1);
    out.clear();
    s.on_timer(stale.kind, stale.generation, &mut sched, &mut out);
    assert_eq!(s.counters().timeouts, 0);
    assert!(out.is_empty());
}

#[test]
fn rto_disarmed_when_everything_acked() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(1, &mut sched, &mut out);
    plain_ack(&mut s, &mut sched, &mut out, 1);
    assert_eq!(s.in_flight(), 0);
    // Eager cancellation deleted the queued firing in place: nothing
    // dead left to travel through the queue.
    assert!(sched.pop().is_none(), "RTO event should be cancelled in place");
    assert_eq!(sched.cancelled_in_place(), 1);
    assert_eq!(s.counters().timeouts, 0);
}

#[test]
fn karn_rule_skips_retransmitted_samples() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.on_app_packets(2, &mut sched, &mut out);
    // Timeout retransmits packet 0.
    let (_, ev) = sched.pop().unwrap();
    s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
    // The (late) ACK for it must not feed the estimator.
    plain_ack(&mut s, &mut sched, &mut out, 1);
    assert_eq!(s.counters().rtt_samples, 0);
    // A fresh, never-retransmitted packet does.
    plain_ack(&mut s, &mut sched, &mut out, 2);
    assert_eq!(s.counters().rtt_samples, 1);
}
