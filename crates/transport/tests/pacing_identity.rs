//! The pacing layer must be invisible unless a policy asks for it.
//!
//! Two guarantees, proptested over random write/ACK schedules:
//!
//! 1. **Zero-overhead None path** — a policy whose `pacing_rate()` is
//!    `None` drives the exact pre-pacing send loop: no paced-send timer
//!    is ever armed and no transmission is ever deferred.
//! 2. **Degenerate-rate identity** — forcing an *infinite* pacing rate
//!    routes every transmission through the paced branch with a zero
//!    inter-send gap, which must reproduce the unpaced engine's output
//!    byte for byte: same segments, same windows, same counters.
//!
//! Together these pin the refactored `send_pending` from both sides: the
//! unpaced branch is untouched, and the paced branch differs only by the
//! clock it waits on.

mod common;

use common::{ack_after, advance, data_seqs, sender, Sched};
use proptest::prelude::*;
use tcpburst_net::Packet;
use tcpburst_transport::{TcpSender, TcpVariant};

/// One step of an application/network schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// The application submits `n` more segments.
    Write(u64),
    /// The oldest outstanding segment is acknowledged `delay_ms` after its
    /// transmission (a no-op clock advance when nothing is in flight).
    Ack { delay_ms: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..8).prop_map(Op::Write),
            (1u64..200).prop_map(|delay_ms| Op::Ack { delay_ms }),
        ],
        1..60,
    )
}

/// Every unpaced policy (BBR is excluded: it paces by design, so an
/// override would change its behavior rather than exercise the
/// degenerate path).
const UNPACED: [TcpVariant; 8] = [
    TcpVariant::Tahoe,
    TcpVariant::Reno,
    TcpVariant::NewReno,
    TcpVariant::Vegas,
    TcpVariant::Sack,
    TcpVariant::Gaimd,
    TcpVariant::Cubic,
    TcpVariant::Hstcp,
];

fn unpaced_variants() -> impl Strategy<Value = TcpVariant> {
    (0usize..UNPACED.len()).prop_map(|i| UNPACED[i])
}

fn drive(s: &mut TcpSender, sched: &mut Sched, out: &mut Vec<Packet>, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Write(n) => s.on_app_packets(n, sched, out),
            Op::Ack { delay_ms } => {
                if s.in_flight() > 0 {
                    ack_after(s, sched, out, delay_ms);
                } else {
                    advance(sched, delay_ms);
                }
            }
        }
    }
}

/// The observable outcome of a schedule: emitted data segments in order,
/// the deferral count, and the end-state summary.
fn run(variant: TcpVariant, ops: &[Op], rate: Option<f64>) -> (Vec<u64>, u64, String) {
    let (mut s, mut sched, mut out) = sender(variant);
    s.force_pacing_rate(rate);
    drive(&mut s, &mut sched, &mut out, ops);
    let summary = format!(
        "cwnd={:?} ssthresh={:?} una={:?} nxt={:?} counters={:?}",
        s.cwnd().to_bits(),
        s.ssthresh().to_bits(),
        s.snd_una(),
        s.snd_nxt(),
        s.counters()
    );
    (data_seqs(&out), s.pace_deferrals(), summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn none_pacing_never_defers_or_arms_the_pacer(
        variant in unpaced_variants(),
        ops in ops(),
    ) {
        let (_, deferrals, _) = run(variant, &ops, None);
        prop_assert_eq!(
            deferrals, 0,
            "{:?}: the None path must never touch the paced-send machinery", variant
        );
    }

    #[test]
    fn infinite_rate_reproduces_the_unpaced_engine_byte_for_byte(
        variant in unpaced_variants(),
        ops in ops(),
    ) {
        let plain = run(variant, &ops, None);
        let degenerate = run(variant, &ops, Some(f64::INFINITY));
        prop_assert_eq!(
            &plain.0, &degenerate.0,
            "{:?}: paced branch with zero spacing emitted different segments", variant
        );
        prop_assert_eq!(
            &plain.2, &degenerate.2,
            "{:?}: end states diverged", variant
        );
        prop_assert_eq!(degenerate.1, 0, "an infinite rate must never defer");
    }
}

/// A tiny finite rate *must* defer: the guard that the paced branch is
/// actually reachable, so the identity tests above aren't vacuous.
#[test]
fn finite_rate_defers_back_to_back_sends() {
    let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
    s.force_pacing_rate(Some(10.0)); // one segment per 100 ms
    // Open the window so more than one segment is eligible at once.
    s.on_app_packets(2, &mut sched, &mut out);
    ack_after(&mut s, &mut sched, &mut out, 40);
    s.on_app_packets(4, &mut sched, &mut out);
    assert!(
        s.pace_deferrals() > 0,
        "a 10 pkt/s pacer must defer a multi-segment burst"
    );
}
