//! The TCP receiver: in-order reassembly, cumulative ACKs, delayed ACKs.

use std::collections::BTreeSet;

use tcpburst_des::{Scheduler, SimTime, TimerGeneration, TimerSlot};
use tcpburst_net::{Ecn, FlowId, NodeId, Packet, PacketKind, SackBlocks, SeqNo};
use tcpburst_stats::RunningStats;

use crate::config::TcpConfig;
use crate::counters::ReceiverCounters;
use crate::event::{TimerKind, TransportEvent};

/// The server-side endpoint of one TCP connection.
///
/// Reassembles the segment stream, emits cumulative ACKs and (optionally)
/// delays them: with delayed ACKs on, an ACK is sent for every second
/// in-order segment or when the delayed-ACK timer expires, and immediately
/// for out-of-order or duplicate segments (those immediate ACKs are the
/// duplicate ACKs that drive the sender's fast retransmit).
#[derive(Debug)]
pub struct TcpReceiver {
    cfg: TcpConfig,
    flow: FlowId,
    /// The receiver's own node (ACK source).
    local: NodeId,
    /// The sender's node (ACK destination).
    remote: NodeId,
    rcv_nxt: SeqNo,
    out_of_order: BTreeSet<SeqNo>,
    unacked_segments: u32,
    delack_timer: TimerSlot,
    /// A CE mark arrived and has not yet been echoed (simplified RFC 3168:
    /// the next ACK carries ECE, then the flag clears).
    pending_ece: bool,
    counters: ReceiverCounters,
    /// One-way delay of every non-duplicate data segment.
    delay: RunningStats,
}

impl TcpReceiver {
    /// Creates a receiver for `flow`, living on node `local`, talking back
    /// to `remote`.
    pub fn new(cfg: TcpConfig, flow: FlowId, local: NodeId, remote: NodeId) -> Self {
        cfg.validate();
        TcpReceiver {
            cfg,
            flow,
            local,
            remote,
            rcv_nxt: SeqNo::ZERO,
            out_of_order: BTreeSet::new(),
            unacked_segments: 0,
            delack_timer: TimerSlot::new(),
            pending_ece: false,
            counters: ReceiverCounters::default(),
            delay: RunningStats::new(),
        }
    }

    /// Next expected sequence number (everything below is delivered).
    pub fn rcv_nxt(&self) -> SeqNo {
        self.rcv_nxt
    }

    /// Receiver counters (goodput lives in `delivered`).
    pub fn counters(&self) -> ReceiverCounters {
        self.counters
    }

    /// Number of segments currently buffered out of order.
    pub fn reorder_buffer_len(&self) -> usize {
        self.out_of_order.len()
    }

    /// One-way delay statistics of the non-duplicate data segments received.
    pub fn delay_stats(&self) -> RunningStats {
        self.delay
    }

    /// Handles an arriving data segment; any ACKs produced are pushed onto
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `pkt` is not a [`PacketKind::TcpData`] segment.
    pub fn on_data<E: From<TransportEvent>>(
        &mut self,
        pkt: &Packet,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        let PacketKind::TcpData { seq, .. } = pkt.kind else {
            panic!("TcpReceiver::on_data fed a non-data packet: {:?}", pkt.kind)
        };
        let now = sched.now();
        if pkt.ecn.is_ce() {
            self.pending_ece = true;
        }
        if seq < self.rcv_nxt || self.out_of_order.contains(&seq) {
            // Duplicate of delivered or buffered data: ACK immediately so the
            // sender sees where we are.
            self.counters.duplicates += 1;
            self.ack_now(sched, now, out);
        } else if seq == self.rcv_nxt {
            self.delay.push(now.saturating_since(pkt.created_at).as_secs_f64());
            self.rcv_nxt = self.rcv_nxt.next();
            self.counters.delivered += 1;
            // Absorb any buffered continuation.
            while self.out_of_order.remove(&self.rcv_nxt) {
                self.rcv_nxt = self.rcv_nxt.next();
                self.counters.delivered += 1;
            }
            if self.cfg.delayed_ack {
                self.unacked_segments += 1;
                if self.unacked_segments >= 2 {
                    self.ack_now(sched, now, out);
                } else if !self.delack_timer.is_armed() {
                    let flow = self.flow;
                    self.delack_timer.schedule(
                        sched,
                        now + self.cfg.delack_delay,
                        |generation| {
                            TransportEvent {
                                flow,
                                kind: TimerKind::DelAck,
                                generation,
                            }
                            .into()
                        },
                    );
                }
            } else {
                self.ack_now(sched, now, out);
            }
        } else {
            // A hole: buffer and emit an immediate duplicate ACK.
            self.delay.push(now.saturating_since(pkt.created_at).as_secs_f64());
            self.out_of_order.insert(seq);
            self.counters.out_of_order += 1;
            self.ack_now(sched, now, out);
        }
    }

    /// Emits an ACK immediately, deleting any pending delayed-ACK firing
    /// from the queue in place (the ACK it would have sent is superseded).
    fn ack_now<E: From<TransportEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        now: SimTime,
        out: &mut Vec<Packet>,
    ) {
        self.delack_timer.cancel_scheduled(sched);
        self.send_ack(now, out);
    }

    /// Handles a timer firing addressed to this receiver.
    ///
    /// Returns `true` if the firing was live (matched the current arming)
    /// and `false` if it was stale or misrouted — callers use this to count
    /// how much dead-timer traffic still reaches dispatch.
    pub fn on_timer(
        &mut self,
        kind: TimerKind,
        generation: TimerGeneration,
        now: SimTime,
        out: &mut Vec<Packet>,
    ) -> bool {
        if kind != TimerKind::DelAck || !self.delack_timer.fires(generation) {
            return false; // stale or misrouted firing
        }
        self.delack_timer.disarm();
        if self.unacked_segments > 0 {
            self.counters.delack_timer_acks += 1;
            self.send_ack(now, out);
        }
        true
    }

    /// Builds up to three SACK ranges from the reorder buffer, newest
    /// (highest) first.
    fn sack_blocks(&self) -> SackBlocks {
        if !self.cfg.variant.uses_sack() || self.out_of_order.is_empty() {
            return SackBlocks::EMPTY;
        }
        let mut ranges: Vec<(SeqNo, SeqNo)> = Vec::new();
        for &q in &self.out_of_order {
            match ranges.last_mut() {
                Some((_, end)) if *end == q => end.0 += 1,
                _ => ranges.push((q, q.next())),
            }
        }
        ranges.reverse(); // highest range first
        ranges.truncate(3);
        SackBlocks::from_ranges(&ranges)
    }

    fn send_ack(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.unacked_segments = 0;
        self.delack_timer.disarm();
        self.counters.acks_sent += 1;
        let ece = self.pending_ece;
        self.pending_ece = false;
        out.push(Packet {
            flow: self.flow,
            kind: PacketKind::TcpAck {
                ack: self.rcv_nxt,
                ece,
                sack: self.sack_blocks(),
            },
            size_bytes: self.cfg.ack_bytes,
            src: self.local,
            dst: self.remote,
            created_at: now,
            ecn: Ecn::default(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcpVariant;

    type Sched = Scheduler<TransportEvent>;

    fn rx(delayed_ack: bool) -> TcpReceiver {
        let mut cfg = TcpConfig::paper(TcpVariant::Reno);
        cfg.delayed_ack = delayed_ack;
        TcpReceiver::new(cfg, FlowId(0), NodeId(1), NodeId(0))
    }

    fn acks(out: &[Packet]) -> Vec<u64> {
        out.iter()
            .map(|p| match p.kind {
                PacketKind::TcpAck { ack, .. } => ack.0,
                other => panic!("receiver emitted non-ACK {other:?}"),
            })
            .collect()
    }

    /// A data segment for `seq`, optionally CE-marked.
    fn data(seq: u64) -> Packet {
        data_ecn(seq, Ecn::NotCapable)
    }

    fn data_ecn(seq: u64, ecn: Ecn) -> Packet {
        Packet {
            flow: FlowId(0),
            kind: PacketKind::TcpData {
                seq: SeqNo(seq),
                retransmit: false,
            },
            size_bytes: 1500,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: SimTime::ZERO,
            ecn,
        }
    }

    #[test]
    fn in_order_segments_ack_cumulatively() {
        let mut r = rx(false);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        for s in 0..3 {
            r.on_data(&data(s), &mut sched, &mut out);
        }
        assert_eq!(acks(&out), vec![1, 2, 3]);
        assert_eq!(r.counters().delivered, 3);
        assert_eq!(r.rcv_nxt(), SeqNo(3));
    }

    #[test]
    fn hole_generates_duplicate_acks() {
        let mut r = rx(false);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out); // ack 1
        r.on_data(&data(2), &mut sched, &mut out); // dup ack 1
        r.on_data(&data(3), &mut sched, &mut out); // dup ack 1
        r.on_data(&data(4), &mut sched, &mut out); // dup ack 1
        assert_eq!(acks(&out), vec![1, 1, 1, 1]);
        assert_eq!(r.counters().out_of_order, 3);
        assert_eq!(r.reorder_buffer_len(), 3);
        // The retransmission fills the hole: one ACK jumps to 5.
        r.on_data(&data(1), &mut sched, &mut out);
        assert_eq!(acks(&out), vec![1, 1, 1, 1, 5]);
        assert_eq!(r.counters().delivered, 5);
        assert_eq!(r.reorder_buffer_len(), 0);
    }

    #[test]
    fn stale_duplicate_segment_is_acked_immediately() {
        let mut r = rx(false);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out);
        r.on_data(&data(0), &mut sched, &mut out); // spurious retransmission
        assert_eq!(acks(&out), vec![1, 1]);
        assert_eq!(r.counters().duplicates, 1);
        assert_eq!(r.counters().delivered, 1);
    }

    #[test]
    fn delayed_ack_coalesces_pairs() {
        let mut r = rx(true);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out);
        assert!(out.is_empty(), "first segment should wait");
        r.on_data(&data(1), &mut sched, &mut out);
        assert_eq!(acks(&out), vec![2]);
        r.on_data(&data(2), &mut sched, &mut out);
        r.on_data(&data(3), &mut sched, &mut out);
        assert_eq!(acks(&out), vec![2, 4]);
    }

    #[test]
    fn delayed_ack_timer_flushes_odd_segment() {
        let mut r = rx(true);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out);
        assert!(out.is_empty());
        // The delack timer event is on the queue; fire it.
        let (t, ev) = sched.pop().expect("delack timer scheduled");
        assert_eq!(t, SimTime::from_millis(100));
        r.on_timer(ev.kind, ev.generation, t, &mut out);
        assert_eq!(acks(&out), vec![1]);
        assert_eq!(r.counters().delack_timer_acks, 1);
    }

    #[test]
    fn delayed_ack_timer_is_cancelled_by_second_segment() {
        let mut r = rx(true);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out);
        r.on_data(&data(1), &mut sched, &mut out); // flushes, cancels timer
        out.clear();
        // Eager cancellation deleted the queued firing in place.
        assert!(sched.pop().is_none(), "delack firing should be cancelled in place");
        assert_eq!(sched.cancelled_in_place(), 1);
    }

    #[test]
    fn out_of_order_flushes_delayed_ack_immediately() {
        let mut r = rx(true);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out); // held
        r.on_data(&data(2), &mut sched, &mut out); // hole: immediate dup ACK
        assert_eq!(acks(&out), vec![1]);
    }

    #[test]
    fn ce_mark_is_echoed_once_then_cleared() {
        let mut r = rx(false);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data_ecn(0, Ecn::CongestionExperienced), &mut sched, &mut out);
        r.on_data(&data(1), &mut sched, &mut out);
        let eces: Vec<bool> = out
            .iter()
            .map(|p| match p.kind {
                PacketKind::TcpAck { ece, .. } => ece,
                other => panic!("non-ACK {other:?}"),
            })
            .collect();
        assert_eq!(eces, vec![true, false]);
    }

    #[test]
    fn delay_stats_track_one_way_latency() {
        let mut r = rx(false);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        // Deliver at t = 44 ms a segment created at t = 0.
        sched.schedule_at(SimTime::from_millis(44), TransportEvent {
            flow: FlowId(0),
            kind: TimerKind::DelAck,
            generation: TimerSlot::new().arm(SimTime::ZERO),
        });
        sched.pop();
        r.on_data(&data(0), &mut sched, &mut out);
        let d = r.delay_stats();
        assert_eq!(d.count(), 1);
        assert!((d.mean() - 0.044).abs() < 1e-9);
    }

    #[test]
    fn sack_receiver_reports_reorder_ranges_newest_first() {
        let mut cfg = TcpConfig::paper(TcpVariant::Sack);
        cfg.delayed_ack = false;
        let mut r = TcpReceiver::new(cfg, FlowId(0), NodeId(1), NodeId(0));
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out); // rcv_nxt = 1
        // Holes: receive 3-4 and 7, leaving 1-2 and 5-6 missing.
        for s in [3, 4, 7] {
            r.on_data(&data(s), &mut sched, &mut out);
        }
        let last = out.last().unwrap();
        let PacketKind::TcpAck { ack, sack, .. } = last.kind else {
            panic!("expected ACK");
        };
        assert_eq!(ack, SeqNo(1));
        let blocks: Vec<_> = sack.iter().collect();
        assert_eq!(blocks, vec![(SeqNo(7), SeqNo(8)), (SeqNo(3), SeqNo(5))]);
        assert!(sack.contains(SeqNo(4)));
        assert!(!sack.contains(SeqNo(5)));
    }

    #[test]
    fn non_sack_receiver_sends_empty_blocks() {
        let mut r = rx(false); // Reno config
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out);
        r.on_data(&data(5), &mut sched, &mut out);
        for p in &out {
            let PacketKind::TcpAck { sack, .. } = p.kind else {
                panic!("expected ACK")
            };
            assert!(sack.is_empty());
        }
    }

    #[test]
    fn ack_packets_are_addressed_to_sender() {
        let mut r = rx(false);
        let mut sched = Sched::new();
        let mut out = Vec::new();
        r.on_data(&data(0), &mut sched, &mut out);
        let p = out[0];
        assert_eq!(p.src, NodeId(1));
        assert_eq!(p.dst, NodeId(0));
        assert_eq!(p.size_bytes, 40);
        assert_eq!(p.flow, FlowId(0));
    }
}
