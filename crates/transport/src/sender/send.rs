//! Transmission: the application send buffer, the usable window, paced
//! and windowed sending, and segment (re)transmission.

use tcpburst_des::{Scheduler, SimDuration, SimTime};
use tcpburst_net::{Ecn, Packet, PacketKind, SeqNo};

use crate::event::{TimerKind, TransportEvent};
use crate::sender::TcpSender;

impl TcpSender {
    /// The application submits `count` more segments to the (unbounded) send
    /// buffer; anything the window permits goes out immediately.
    pub fn on_app_packets<E: From<TransportEvent>>(
        &mut self,
        count: u64,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        self.app_limit = SeqNo(self.app_limit.0 + count);
        self.counters.app_packets_submitted += count;
        self.send_pending(sched, out);
        self.counters.peak_backlog = self.counters.peak_backlog.max(self.backlog());
    }

    /// The usable window: `min(⌊cwnd⌋, advertised)`.
    fn usable_window(&self) -> u64 {
        (self.cwnd.floor() as u64).min(u64::from(self.cfg.advertised_window))
    }

    /// Releases everything the window (and, for a pacing policy, the
    /// clock) permits.
    ///
    /// With no pacing rate this is exactly the pre-pacing engine's loop —
    /// back-to-back transmission, no timer, no extra state touched — so
    /// window-based policies stay byte-identical. With a rate, segments
    /// are spaced `1/rate` apart; when the next send lands in the future
    /// the remainder of the flight waits on the [`TimerKind::Pace`] timer.
    pub(super) fn send_pending<E: From<TransportEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        let now = sched.now();
        let mut sent_any = false;
        match self.pacing_rate() {
            Some(rate) if rate > 0.0 => {
                let spacing = SimDuration::from_secs_f64(1.0 / rate);
                while self.in_flight() < self.usable_window() && self.snd_nxt < self.app_limit {
                    if now < self.next_send_time {
                        self.pace_deferrals += 1;
                        let flow = self.flow;
                        let deadline = self.next_send_time;
                        self.pace_timer.schedule(sched, deadline, |generation| {
                            TransportEvent {
                                flow,
                                kind: TimerKind::Pace,
                                generation,
                            }
                            .into()
                        });
                        break;
                    }
                    let seq = self.snd_nxt;
                    self.transmit(seq, now, out);
                    self.snd_nxt = seq.next();
                    // Credit accumulated while idle is forfeited: the next
                    // slot opens one spacing after *now*, not after the
                    // stale next_send_time.
                    self.next_send_time = self.next_send_time.max(now) + spacing;
                    sent_any = true;
                }
            }
            _ => {
                while self.in_flight() < self.usable_window() && self.snd_nxt < self.app_limit {
                    let seq = self.snd_nxt;
                    self.transmit(seq, now, out);
                    self.snd_nxt = seq.next();
                    sent_any = true;
                }
            }
        }
        if sent_any && !self.rto_timer.is_armed() {
            self.arm_rto(sched);
        }
    }

    pub(super) fn transmit(&mut self, seq: SeqNo, now: SimTime, out: &mut Vec<Packet>) {
        let idx = (seq.0 - self.snd_una.0) as usize;
        let retransmit = if idx < self.window.len() {
            self.window.mark_retransmitted(idx, now);
            true
        } else {
            debug_assert_eq!(idx, self.window.len(), "non-contiguous transmission");
            // Delivery-rate stamp (BBR-style): snapshot the connection's
            // delivered state at departure. The flight is app-limited when
            // this transmission drains the backlog — the sample will then
            // measure the application, not the path.
            let app_limited = seq.next() >= self.app_limit;
            self.window
                .push(now, self.delivered, self.delivered_time, app_limited);
            false
        };
        if retransmit {
            self.counters.retransmits += 1;
        }
        self.counters.data_packets_sent += 1;
        out.push(Packet {
            flow: self.flow,
            kind: PacketKind::TcpData { seq, retransmit },
            size_bytes: self.cfg.mss_bytes,
            src: self.local,
            dst: self.remote,
            created_at: now,
            ecn: if self.cfg.ecn {
                Ecn::Capable
            } else {
                Ecn::NotCapable
            },
        });
    }
}
