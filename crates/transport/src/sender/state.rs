//! The [`TcpSender`] state machine: fields, construction, accessors.

use std::collections::{BTreeSet, VecDeque};

use tcpburst_des::{SimTime, TimerSlot};
use tcpburst_net::{FlowId, NodeId, SeqNo};
use tcpburst_stats::TimeSeries;

use tcpburst_des::SimDuration;

use crate::cc::{CongestionControl, Policy, RateSample};
use crate::config::TcpConfig;
use crate::counters::TcpCounters;
use crate::rtt::RttEstimator;

/// Congestion-control phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) enum Phase {
    SlowStart,
    CongestionAvoidance,
    /// Reno-style fast recovery; `recover` is `snd_nxt` at entry (NewReno
    /// stays in recovery until the cumulative ACK reaches it).
    FastRecovery { recover: SeqNo },
}

/// Per-segment book-keeping for `[snd_una, highest_sent)`, stored
/// structure-of-arrays.
///
/// Slot `i` describes segment `snd_una + i`; the sequence number is never
/// stored. The ACK path touches exactly one column at a time — Karn's
/// retirement reads both fronts, the early-retransmit check reads only the
/// front `last_sent` — so splitting the columns keeps each scan dense
/// instead of striding over 24-byte records.
#[derive(Debug, Default)]
pub(super) struct SendWindow {
    /// When slot `i`'s segment was last (re)transmitted.
    last_sent: VecDeque<SimTime>,
    /// Whether slot `i`'s segment was ever retransmitted (Karn's rule
    /// disqualifies it from RTT *and* delivery-rate sampling).
    retransmitted: VecDeque<bool>,
    /// The connection's `delivered` count when slot `i` was first sent
    /// (BBR-style per-segment stamp for the delivery-rate sampler).
    delivered: VecDeque<u64>,
    /// The connection's `delivered_time` when slot `i` was first sent.
    delivered_time: VecDeque<SimTime>,
    /// Whether slot `i`'s transmission drained the application backlog:
    /// its rate sample is app-limited, not a capacity measurement.
    app_limited: VecDeque<bool>,
}

/// One retired (cumulatively acknowledged) window slot.
#[derive(Debug, Clone, Copy)]
pub(super) struct RetiredSegment {
    /// When the segment was last (re)transmitted.
    pub(super) last_sent: SimTime,
    /// Whether Karn's rule disqualifies it from sampling.
    pub(super) retransmitted: bool,
    /// `delivered` stamp taken at first transmission.
    pub(super) delivered: u64,
    /// `delivered_time` stamp taken at first transmission.
    pub(super) delivered_time: SimTime,
    /// App-limited stamp taken at first transmission.
    pub(super) app_limited: bool,
}

impl SendWindow {
    /// Pre-sizes all columns; the window can never hold more than the
    /// advertised window's worth of in-flight segments.
    pub(super) fn with_capacity(cap: usize) -> Self {
        SendWindow {
            last_sent: VecDeque::with_capacity(cap),
            retransmitted: VecDeque::with_capacity(cap),
            delivered: VecDeque::with_capacity(cap),
            delivered_time: VecDeque::with_capacity(cap),
            app_limited: VecDeque::with_capacity(cap),
        }
    }

    /// Number of tracked segments (`highest_sent - snd_una`).
    pub(super) fn len(&self) -> usize {
        self.last_sent.len()
    }

    /// Records a first transmission of the next untracked segment,
    /// stamping the delivery-rate sampler's connection state.
    pub(super) fn push(
        &mut self,
        now: SimTime,
        delivered: u64,
        delivered_time: SimTime,
        app_limited: bool,
    ) {
        self.last_sent.push_back(now);
        self.retransmitted.push_back(false);
        self.delivered.push_back(delivered);
        self.delivered_time.push_back(delivered_time);
        self.app_limited.push_back(app_limited);
    }

    /// Records a retransmission of the segment in slot `idx`.
    pub(super) fn mark_retransmitted(&mut self, idx: usize, now: SimTime) {
        self.last_sent[idx] = now;
        self.retransmitted[idx] = true;
    }

    /// Retires the front slot (its segment was cumulatively acknowledged).
    pub(super) fn pop_front(&mut self) -> Option<RetiredSegment> {
        let last_sent = self.last_sent.pop_front()?;
        let retransmitted = self.retransmitted.pop_front().expect("columns in lockstep");
        let delivered = self.delivered.pop_front().expect("columns in lockstep");
        let delivered_time = self
            .delivered_time
            .pop_front()
            .expect("columns in lockstep");
        let app_limited = self.app_limited.pop_front().expect("columns in lockstep");
        Some(RetiredSegment {
            last_sent,
            retransmitted,
            delivered,
            delivered_time,
            app_limited,
        })
    }

    /// When the oldest tracked segment was last (re)transmitted.
    pub(super) fn front_last_sent(&self) -> Option<SimTime> {
        self.last_sent.front().copied()
    }
}

/// The client-side endpoint of one TCP connection.
///
/// A sans-io state machine: the application submits segments with
/// [`on_app_packets`](TcpSender::on_app_packets) (they accumulate in an
/// unbounded send buffer, exactly the decoupling the paper's Section 3.2
/// analyzes), ACKs arrive through [`on_ack`](TcpSender::on_ack), timer
/// firings through [`on_timer`](TcpSender::on_timer), and every outbound
/// segment is pushed to the caller's `Vec<Packet>` for injection into the
/// network.
///
/// The sender is the **reliability engine** of the two-layer transport
/// architecture: it owns sequencing, the retransmission queue, RTO
/// handling with Karn's rule and exponential backoff, go-back-N timeout
/// recovery, dup-ACK and SACK-scoreboard loss detection, and the fast
/// recovery inflation/deflation machinery. Every *window-sizing* decision
/// is delegated to its [`Policy`](crate::cc::Policy) — one
/// [`CongestionControl`](crate::cc::CongestionControl) implementation per
/// [`TcpVariant`](crate::TcpVariant) — so the engine itself contains no
/// per-variant branches.
#[derive(Debug)]
pub struct TcpSender {
    pub(super) cfg: TcpConfig,
    pub(super) flow: FlowId,
    pub(super) local: NodeId,
    pub(super) remote: NodeId,

    pub(super) snd_una: SeqNo,
    pub(super) snd_nxt: SeqNo,
    /// One past the last segment the application has submitted.
    pub(super) app_limit: SeqNo,

    pub(super) cwnd: f64,
    pub(super) ssthresh: f64,
    pub(super) dup_acks: u32,
    pub(super) phase: Phase,

    /// Per-segment columns for `[snd_una, highest_sent)`, front-aligned
    /// with `snd_una` (slot `i` is segment `snd_una + i`).
    pub(super) window: SendWindow,
    pub(super) rtt: RttEstimator,
    pub(super) rto_timer: TimerSlot,
    /// The congestion-control policy (window arithmetic lives here).
    pub(super) policy: Policy,
    /// Total segments cumulatively delivered (the delivery-rate
    /// sampler's `delivered` counter).
    pub(super) delivered: u64,
    /// When `delivered` last advanced.
    pub(super) delivered_time: SimTime,
    /// Minimum Karn-valid RTT over the connection's lifetime.
    pub(super) min_rtt: Option<SimDuration>,
    /// The most recent delivery-rate sample (inspection hook for tests
    /// and instrumentation; the policy gets it via `AckSample`).
    pub(super) last_rate: Option<RateSample>,
    /// The paced-send timer; armed only while a policy paces.
    pub(super) pace_timer: TimerSlot,
    /// Earliest time the next paced transmission may leave.
    pub(super) next_send_time: SimTime,
    /// Times a send was deferred to the pace timer (must stay zero for
    /// unpaced policies — the byte-identity contract with the pre-pacing
    /// engine).
    pub(super) pace_deferrals: u64,
    /// Test support: overrides the policy's pacing rate when `Some`.
    pub(super) pace_override: Option<f64>,
    /// When the window was last reduced in response to an ECN echo (the
    /// response is rate-limited to once per RTT, like RFC 3168's CWR).
    pub(super) last_ecn_cut: Option<SimTime>,
    /// Growth is suppressed for the ACK that carried the ECN echo.
    pub(super) hold_growth: bool,
    /// SACK scoreboard: segments above `snd_una` the receiver holds.
    pub(super) sacked: BTreeSet<SeqNo>,
    /// Next hole candidate during a SACK recovery episode.
    pub(super) sack_rtx_next: SeqNo,

    pub(super) counters: TcpCounters,
    /// `(time, cwnd)` trace; allocated only when
    /// [`TcpConfig::trace_cwnd`] asks for it.
    pub(super) trace: Option<TimeSeries>,
}

impl TcpSender {
    /// Creates a sender for `flow`, living on node `local`, sending to
    /// `remote`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TcpConfig::validate`]).
    pub fn new(cfg: TcpConfig, flow: FlowId, local: NodeId, remote: NodeId) -> Self {
        cfg.validate();
        let policy = Policy::for_config(&cfg);
        let mut sender = TcpSender {
            cfg,
            flow,
            local,
            remote,
            snd_una: SeqNo::ZERO,
            snd_nxt: SeqNo::ZERO,
            app_limit: SeqNo::ZERO,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            dup_acks: 0,
            phase: Phase::SlowStart,
            window: SendWindow::with_capacity(cfg.advertised_window as usize + 4),
            rtt: RttEstimator::new(cfg.tick, cfg.min_rto, cfg.max_rto),
            rto_timer: TimerSlot::new(),
            policy,
            delivered: 0,
            delivered_time: SimTime::ZERO,
            min_rtt: None,
            last_rate: None,
            pace_timer: TimerSlot::new(),
            next_send_time: SimTime::ZERO,
            pace_deferrals: 0,
            pace_override: None,
            last_ecn_cut: None,
            hold_growth: false,
            sacked: BTreeSet::new(),
            sack_rtx_next: SeqNo::ZERO,
            counters: TcpCounters::default(),
            trace: cfg.trace_cwnd.then(TimeSeries::new),
        };
        if let Some(trace) = sender.trace.as_mut() {
            trace.record(SimTime::ZERO, sender.cwnd);
        }
        sender
    }

    /// The current congestion window, in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// The current slow-start threshold, in packets.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Packets in flight (sent, not yet cumulatively acknowledged).
    pub fn in_flight(&self) -> u64 {
        self.snd_una.distance_to(self.snd_nxt)
    }

    /// Segments submitted by the application but not yet transmitted.
    pub fn backlog(&self) -> u64 {
        self.snd_nxt.distance_to(self.app_limit)
    }

    /// Oldest unacknowledged sequence number.
    pub fn snd_una(&self) -> SeqNo {
        self.snd_una
    }

    /// Next fresh sequence number.
    pub fn snd_nxt(&self) -> SeqNo {
        self.snd_nxt
    }

    /// True while the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.phase == Phase::SlowStart
    }

    /// True while the sender is in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        matches!(self.phase, Phase::FastRecovery { .. })
    }

    /// Sender counters.
    pub fn counters(&self) -> TcpCounters {
        self.counters
    }

    /// The RTT estimator (for inspection).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// The `(time, cwnd)` trace; `None` unless [`TcpConfig::trace_cwnd`]
    /// was set (no storage is allocated for untraced senders).
    pub fn cwnd_trace(&self) -> Option<&TimeSeries> {
        self.trace.as_ref()
    }

    /// Vegas's minimum observed RTT in seconds, if this is a Vegas sender
    /// with at least one measurement.
    pub fn vegas_base_rtt(&self) -> Option<f64> {
        self.policy.base_rtt()
    }

    /// When the oldest in-flight segment was last (re)transmitted, or
    /// `None` with nothing outstanding. A test/instrumentation hook: it
    /// lets a harness deliver an ACK at an exact RTT after the send.
    pub fn oldest_unacked_sent_at(&self) -> Option<SimTime> {
        self.window.front_last_sent()
    }

    /// Total segments cumulatively delivered (the delivery-rate
    /// sampler's monotone counter).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The minimum Karn-valid RTT observed so far.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// The most recent delivery-rate sample, if any ACK has produced one
    /// (inspection hook for tests and instrumentation).
    pub fn last_rate_sample(&self) -> Option<RateSample> {
        self.last_rate
    }

    /// The pacing rate currently in force: the test override if set,
    /// otherwise whatever the policy asks for.
    pub fn pacing_rate(&self) -> Option<f64> {
        self.pace_override.or_else(|| self.policy.pacing_rate())
    }

    /// Times a send was deferred to the paced-send timer. Stays zero for
    /// any policy whose `pacing_rate()` is `None` — that path is
    /// byte-identical to the pre-pacing engine.
    pub fn pace_deferrals(&self) -> u64 {
        self.pace_deferrals
    }

    /// Test support: forces pacing at the given rate (packets/second)
    /// regardless of the policy. `f64::INFINITY` exercises the paced
    /// send path with zero inter-send spacing.
    pub fn force_pacing_rate(&mut self, rate: Option<f64>) {
        self.pace_override = rate;
    }

    /// Test support: overrides the slow-start threshold so a harness can
    /// reach congestion avoidance in a handful of ACKs.
    pub fn force_ssthresh(&mut self, ssthresh: f64) {
        self.ssthresh = ssthresh;
    }

    /// Test support: jumps straight to congestion avoidance with the
    /// given window and threshold, bypassing slow start (no trace entry
    /// is recorded — the jump is scaffolding, not simulated behavior).
    pub fn force_congestion_avoidance(&mut self, cwnd: f64, ssthresh: f64) {
        self.phase = Phase::CongestionAvoidance;
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
    }

    pub(super) fn set_cwnd(&mut self, now: SimTime, value: f64) {
        self.cwnd = value;
        if let Some(trace) = self.trace.as_mut() {
            trace.record(now, value);
        }
    }
}
