//! The TCP sender, split along the two-layer architecture:
//!
//! * [`state`] — the [`TcpSender`] state machine itself: connection
//!   state, window/threshold storage, accessors, construction;
//! * [`ack`] — the ACK path: cumulative and duplicate ACKs, SACK
//!   scoreboard maintenance, loss detection, recovery entry/exit, ECN;
//! * [`send`] — transmission: the application send buffer, the usable
//!   window, and segment (re)transmission;
//! * [`timer`] — the retransmission timer: RTO arming and expiry.
//!
//! All *policy* decisions (how much to grow or cut the window) are
//! delegated to the sender's [`Policy`](crate::cc::Policy) through the
//! [`CongestionControl`](crate::cc::CongestionControl) trait; these
//! modules implement only the reliability engine.

mod ack;
mod send;
mod state;
mod timer;

pub use state::TcpSender;
