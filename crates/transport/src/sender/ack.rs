//! The ACK path: cumulative and duplicate acknowledgments, SACK
//! scoreboard maintenance, delivery-rate sampling, loss detection,
//! recovery entry and exit, and the ECN echo response.

use tcpburst_des::{Scheduler, SimDuration, SimTime};
use tcpburst_net::{SackBlocks, SeqNo};

use crate::cc::{
    AckSample, CongestionControl, LossContext, LossResponse, RateSample, RoundAdjust, RoundSample,
};
use crate::event::TransportEvent;
use crate::sender::state::Phase;
use crate::sender::TcpSender;

impl TcpSender {
    /// Handles a cumulative acknowledgment. `ece` is the ACK's ECN-echo
    /// flag (ignored unless this connection negotiated ECN,
    /// [`TcpConfig::ecn`](crate::TcpConfig::ecn)); `sack` carries the
    /// receiver's selective acknowledgments (ignored unless the variant
    /// is [`TcpVariant::Sack`](crate::TcpVariant::Sack)).
    pub fn on_ack<E: From<TransportEvent>>(
        &mut self,
        ack: SeqNo,
        ece: bool,
        sack: SackBlocks,
        sched: &mut Scheduler<E>,
        out: &mut Vec<tcpburst_net::Packet>,
    ) {
        self.counters.acks_received += 1;
        if ece && self.cfg.ecn {
            self.on_ecn_echo(sched.now());
        }
        if self.cfg.variant.uses_sack() {
            for (s, e) in sack.iter() {
                let lo = s.max(self.snd_una);
                let hi = e.min(self.snd_nxt);
                let mut q = lo;
                while q < hi {
                    self.sacked.insert(q);
                    q = q.next();
                }
            }
        }
        if ack > self.snd_una {
            self.on_new_ack(ack, sched, out);
        } else if self.in_flight() > 0 {
            self.on_dup_ack(sched, out);
        }
    }

    /// The lowest un-SACKed hole in `[self.sack_rtx_next, upto)` that is
    /// *lost* by RFC 3517's DupThresh heuristic: at least three SACKed
    /// segments lie above it. Merely in-flight segments (no evidence above
    /// them) are left alone.
    fn next_sack_hole(&self, upto: SeqNo) -> Option<SeqNo> {
        let mut q = self.sack_rtx_next.max(self.snd_una);
        while q < upto {
            if !self.sacked.contains(&q) {
                let evidence = self.sacked.range(q..).take(3).count();
                if evidence >= 3 {
                    return Some(q);
                }
                // Not enough SACK evidence above this hole; anything higher
                // has even less, so stop scanning.
                return None;
            }
            q = q.next();
        }
        None
    }

    /// The loss-signal context handed to the policy: the state it may need
    /// to size its response, gathered once.
    fn loss_context(&self, now: SimTime) -> LossContext {
        LossContext {
            now,
            flight: self.in_flight() as f64,
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            resume_from: self.snd_una,
            min_rtt: self.min_rtt,
        }
    }

    /// RFC 3168 response, simplified: cut the window at most once per
    /// smoothed RTT (the policy decides how deep the cut goes); no
    /// retransmission is needed because nothing was lost.
    fn on_ecn_echo(&mut self, now: SimTime) {
        if self.in_fast_recovery() {
            return; // already responding to loss
        }
        let holdoff = self
            .rtt
            .srtt()
            .unwrap_or(self.cfg.min_rto)
            .max(self.cfg.tick);
        if let Some(last) = self.last_ecn_cut {
            if now.saturating_since(last) < holdoff {
                return;
            }
        }
        self.last_ecn_cut = Some(now);
        self.counters.ecn_window_cuts += 1;
        self.hold_growth = true;
        let loss = self.loss_context(now);
        self.ssthresh = self.policy.on_ecn_cwnd(&loss);
        self.set_cwnd(now, self.ssthresh);
        if self.phase == Phase::SlowStart {
            self.phase = Phase::CongestionAvoidance;
        }
    }

    fn on_new_ack<E: From<TransportEvent>>(
        &mut self,
        ack: SeqNo,
        sched: &mut Scheduler<E>,
        out: &mut Vec<tcpburst_net::Packet>,
    ) {
        let now = sched.now();
        let newly_acked = self.snd_una.distance_to(ack);

        // Retire the acknowledged window slots (the window is front-aligned
        // with `snd_una`, so that is exactly the first `newly_acked` slots).
        // The newest segment that was transmitted exactly once anchors both
        // the RTT sample and the delivery-rate sample (Karn's rule: a
        // retransmitted segment's stamps are ambiguous).
        let mut anchor = None;
        for _ in 0..newly_acked {
            let Some(seg) = self.window.pop_front() else {
                break;
            };
            if !seg.retransmitted {
                anchor = Some(seg);
            }
        }
        // Advance the connection's delivered count before deriving the rate
        // sample so the sample's `delivered` includes this very ACK.
        self.delivered += newly_acked;
        self.delivered_time = now;
        let mut rtt = None;
        let mut rate = None;
        if let Some(seg) = anchor {
            let s = now.saturating_since(seg.last_sent);
            self.rtt.sample(s);
            self.counters.rtt_samples += 1;
            self.policy.on_rtt_sample(s);
            rtt = Some(s);
            self.min_rtt = Some(match self.min_rtt {
                Some(m) => m.min(s),
                None => s,
            });
            // Delivery rate over the segment's flight: what the connection
            // delivered between this segment's departure and its ACK.
            let interval = now.saturating_since(seg.delivered_time);
            if !interval.is_zero() {
                rate = Some(RateSample {
                    delivery_rate: (self.delivered - seg.delivered) as f64
                        / interval.as_secs_f64(),
                    interval,
                    delivered: self.delivered,
                    prior_delivered: seg.delivered,
                    is_app_limited: seg.app_limited,
                });
            }
        }
        self.last_rate = rate;

        self.snd_una = ack;
        if self.snd_nxt < self.snd_una {
            // A segment from before a go-back-N rewind was still in flight
            // and got acknowledged; fast-forward past it.
            self.snd_nxt = self.snd_una;
        }
        if !self.sacked.is_empty() {
            self.sacked = self.sacked.split_off(&self.snd_una);
        }

        match self.phase {
            Phase::FastRecovery { recover } => {
                let full = ack >= recover;
                if !full && self.policy.holds_recovery_on_partial_ack() {
                    // Partial ACK: the cumulative point is the next lost
                    // segment (for SACK, even if an earlier retransmission
                    // of it was lost too, RFC 3517 §5 step C; for NewReno,
                    // RFC 6582). Repair it, deflate by the amount
                    // acknowledged, stay in recovery.
                    self.set_cwnd(now, (self.cwnd - newly_acked as f64 + 1.0).max(1.0));
                    self.transmit(self.snd_una, now, out);
                    if self.cfg.variant.uses_sack() {
                        self.sack_rtx_next = self.sack_rtx_next.max(self.snd_una.next());
                    }
                    self.arm_rto(sched);
                } else {
                    // Reno and Vegas leave recovery on any new ACK (this
                    // is precisely why a multi-loss window in Reno
                    // usually ends in a timeout); NewReno and SACK leave
                    // on a full ACK.
                    let deflated = self.policy.post_recovery_cwnd(self.ssthresh);
                    self.set_cwnd(now, deflated);
                    self.phase = if self.cwnd < self.ssthresh {
                        Phase::SlowStart
                    } else {
                        Phase::CongestionAvoidance
                    };
                    self.dup_acks = 0;
                }
            }
            Phase::SlowStart | Phase::CongestionAvoidance => {
                self.dup_acks = 0;
                if self.hold_growth {
                    // RFC 3168: no window increase on the ACK that echoed
                    // congestion.
                    self.hold_growth = false;
                } else {
                    self.grow_window(now, newly_acked, rtt, rate);
                }
            }
        }

        if self.in_flight() == 0 {
            // Everything acknowledged: delete the queued RTO firing in place
            // instead of letting a dead event travel through the queue.
            self.rto_timer.cancel_scheduled(sched);
        } else {
            self.arm_rto(sched);
        }
        self.send_pending(sched, out);

        // The policy's once-per-round decision (Vegas). This runs after
        // `send_pending` so the next epoch marker covers the full flight
        // just released — the epoch must span one whole window, not end at
        // its first ACK.
        let round = RoundSample {
            ack,
            snd_nxt: self.snd_nxt,
            cwnd: self.cwnd,
            in_slow_start: self.phase == Phase::SlowStart,
            in_fast_recovery: matches!(self.phase, Phase::FastRecovery { .. }),
            advertised: f64::from(self.cfg.advertised_window),
        };
        if let Some(adjust) = self.policy.on_round(round) {
            match adjust {
                RoundAdjust::Hold => {}
                RoundAdjust::SetCwnd(w) => self.set_cwnd(now, w),
                RoundAdjust::ExitSlowStart { cwnd, ssthresh } => {
                    self.set_cwnd(now, cwnd);
                    self.ssthresh = ssthresh;
                    if self.phase == Phase::SlowStart {
                        self.phase = Phase::CongestionAvoidance;
                    }
                }
            }
            // An increase may have opened the window.
            self.send_pending(sched, out);
        }
    }

    fn on_dup_ack<E: From<TransportEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        out: &mut Vec<tcpburst_net::Packet>,
    ) {
        let now = sched.now();
        self.counters.dup_acks_received += 1;
        self.dup_acks += 1;

        if self.in_fast_recovery() {
            // Window inflation: each dup ACK signals a departure.
            self.set_cwnd(now, self.cwnd + 1.0);
            if self.cfg.variant.uses_sack() {
                // The scoreboard lets us repair further holes without
                // waiting for partial ACKs.
                if let Phase::FastRecovery { recover } = self.phase {
                    if let Some(hole) = self.next_sack_hole(recover) {
                        self.transmit(hole, now, out);
                        self.sack_rtx_next = hole.next();
                        return;
                    }
                }
            }
            self.send_pending(sched, out);
            return;
        }

        let early = match self.window.front_last_sent() {
            Some(sent) => self.policy.early_retransmit_due(self.dup_acks, sent, now),
            None => false,
        };
        if self.dup_acks >= 3 || early {
            self.enter_loss_recovery(sched, out);
        }
    }

    fn enter_loss_recovery<E: From<TransportEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        out: &mut Vec<tcpburst_net::Packet>,
    ) {
        let now = sched.now();
        self.counters.fast_retransmits += 1;
        let loss = self.loss_context(now);
        match self.policy.on_loss_signal(&loss) {
            LossResponse::Collapse { ssthresh } => {
                // Tahoe: fast retransmit, then slow-start from scratch.
                self.ssthresh = ssthresh;
                self.set_cwnd(now, 1.0);
                self.phase = Phase::SlowStart;
                self.dup_acks = 0;
                self.snd_nxt = self.snd_una; // go-back-N
                self.send_pending(sched, out);
            }
            LossResponse::FastRecovery { ssthresh } => {
                self.ssthresh = ssthresh;
                self.phase = Phase::FastRecovery { recover: self.snd_nxt };
                self.transmit(self.snd_una, now, out);
                self.sack_rtx_next = self.snd_una.next();
                self.set_cwnd(now, self.ssthresh + 3.0);
                self.arm_rto(sched);
            }
        }
    }

    /// Per-ACK window growth outside recovery; the policy sees the full
    /// [`AckSample`] and returns the new window (or holds), the engine
    /// applies the slow-start exit.
    fn grow_window(
        &mut self,
        now: SimTime,
        newly_acked: u64,
        rtt: Option<SimDuration>,
        rate: Option<RateSample>,
    ) {
        let sample = AckSample {
            now,
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            in_slow_start: self.phase == Phase::SlowStart,
            advertised: f64::from(self.cfg.advertised_window),
            newly_acked,
            flight: self.in_flight() as f64,
            rtt,
            srtt: self.rtt.srtt(),
            min_rtt: self.min_rtt,
            rate,
        };
        if let Some(w) = self.policy.on_ack(&sample) {
            self.set_cwnd(now, w);
        }
        if self.phase == Phase::SlowStart && self.cwnd >= self.ssthresh {
            self.phase = Phase::CongestionAvoidance;
        }
    }
}
