//! The sender's timers: RTO arming and expiry, and the paced-send timer.

use tcpburst_des::{Scheduler, TimerGeneration};
use tcpburst_net::Packet;

use crate::cc::{CongestionControl, LossContext};
use crate::event::{TimerKind, TransportEvent};
use crate::sender::state::Phase;
use crate::sender::TcpSender;

impl TcpSender {
    /// Handles a timer firing addressed to this sender.
    ///
    /// Returns `true` if the firing was live (matched the current arming)
    /// and `false` if it was stale or misrouted — callers use this to count
    /// how much dead-timer traffic still reaches dispatch (it should be
    /// nearly zero with eager cancellation; see
    /// [`TimerSlot::schedule`](tcpburst_des::TimerSlot::schedule)).
    pub fn on_timer<E: From<TransportEvent>>(
        &mut self,
        kind: TimerKind,
        generation: TimerGeneration,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) -> bool {
        match kind {
            TimerKind::Rto => self.on_rto_timer(generation, sched, out),
            TimerKind::Pace => self.on_pace_timer(generation, sched, out),
            TimerKind::DelAck => false, // misrouted: that timer is the receiver's
        }
    }

    /// The paced-send timer: the pacing clock has caught up with the next
    /// transmission slot, so release whatever the window now permits.
    fn on_pace_timer<E: From<TransportEvent>>(
        &mut self,
        generation: TimerGeneration,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) -> bool {
        if !self.pace_timer.fires(generation) {
            return false;
        }
        self.pace_timer.note_popped();
        self.pace_timer.disarm();
        self.send_pending(sched, out);
        true
    }

    fn on_rto_timer<E: From<TransportEvent>>(
        &mut self,
        generation: TimerGeneration,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) -> bool {
        if !self.rto_timer.fires(generation) {
            return false; // stale firing
        }
        self.rto_timer.note_popped();
        let now = sched.now();
        let deadline = self.rto_timer.deadline().expect("a live firing is armed");
        if deadline > now {
            // Coalesced re-arms (one per ACK) pushed the logical deadline
            // past this queued firing; nothing expired. Queue the real one.
            let flow = self.flow;
            self.rto_timer.schedule(sched, deadline, |generation| {
                TransportEvent {
                    flow,
                    kind: TimerKind::Rto,
                    generation,
                }
                .into()
            });
            return true;
        }
        self.rto_timer.disarm();
        if self.in_flight() == 0 {
            return true;
        }
        self.counters.timeouts += 1;

        // Classic timeout response: the policy picks the new threshold,
        // the engine collapses the window to one segment, backs the timer
        // off, and resends from the hole (go-back-N, like the ns agents).
        let loss = LossContext {
            now,
            flight: self.in_flight() as f64,
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            resume_from: self.snd_una,
            min_rtt: self.min_rtt,
        };
        self.ssthresh = self.policy.on_rto(&loss);
        self.set_cwnd(now, 1.0);
        self.phase = Phase::SlowStart;
        self.dup_acks = 0;
        self.rtt.back_off();
        self.snd_nxt = self.snd_una;
        self.sacked.clear();
        self.send_pending(sched, out);
        // send_pending arms the timer only if something went out; make sure
        // a zombie connection still retries.
        if !self.rto_timer.is_armed() {
            self.arm_rto(sched);
        }
        true
    }

    pub(super) fn arm_rto<E: From<TransportEvent>>(&mut self, sched: &mut Scheduler<E>) {
        let deadline = sched.now() + self.rtt.rto();
        let flow = self.flow;
        // Coalesced re-arm: the queued earlier firing stays put and the
        // deadline only moves in the slot; its early pop re-schedules at the
        // real deadline (see `on_timer`). A busy connection thus re-arms
        // with a field store instead of a queue delete + push per ACK.
        self.rto_timer.schedule_coalesced(sched, deadline, |generation| {
            TransportEvent {
                flow,
                kind: TimerKind::Rto,
                generation,
            }
            .into()
        });
    }
}
