//! Cubic: window growth as a cubic function of time since the last cut
//! (RFC 8312), with the TCP-friendly region and fast convergence.
//!
//! After a loss at window `w_max`, the window re-grows along
//! `W(t) = C·(t − K)³ + w_max` — concave while approaching the old
//! plateau, briefly flat around it, then convex while probing beyond —
//! where `K = ∛(w_max·(1 − β)/C)` is the time to return to `w_max`.
//! Growth is driven by *time*, not ACK cadence, which is exactly why the
//! policy needs the [`AckSample`] context's clock rather than the old
//! positional per-ACK hook. In the TCP-friendly region the window also
//! tracks an AIMD estimate `w_est` (growing `3(1−β)/(1+β)` per RTT) and
//! takes whichever is larger, so Cubic never does worse than Reno on
//! short-RTT paths like the paper's 44 ms dumbbell.

use tcpburst_des::SimTime;

use crate::cc::reno::reno_ack_cwnd;
use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};

/// RFC 8312's scaling constant `C`, in packets per second cubed.
const C: f64 = 0.4;
/// RFC 8312's multiplicative decrease factor `β`.
const BETA: f64 = 0.7;

/// The Cubic policy state: the pre-loss plateau, the epoch clock, and
/// the TCP-friendly AIMD estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cubic {
    /// Window at the most recent loss (the plateau the cubic aims back at).
    w_max: f64,
    /// Time-to-plateau `K` for the current epoch, in seconds.
    k: f64,
    /// When the current growth epoch opened (first ACK after a cut);
    /// `None` right after a loss, lazily re-opened on the next ACK.
    epoch_start: Option<SimTime>,
    /// The TCP-friendly AIMD window estimate for the current epoch.
    w_est: f64,
}

impl Cubic {
    /// Creates the policy with an empty history (the first slow start is
    /// plain Reno until the first loss establishes a plateau).
    pub fn new() -> Self {
        Cubic::default()
    }

    /// Registers a window cut: remembers the plateau (with RFC 8312 §4.6
    /// fast convergence — a shrinking flow releases its share sooner by
    /// aiming below the old plateau) and closes the growth epoch.
    fn register_loss(&mut self, cwnd: f64) -> f64 {
        self.w_max = if cwnd < self.w_max {
            // Fast convergence: the available bandwidth shrank.
            cwnd * (2.0 - BETA) / 2.0
        } else {
            cwnd
        };
        self.epoch_start = None;
        (cwnd * BETA).max(2.0)
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        if sample.in_slow_start {
            // Slow start is Reno's; the cubic takes over from the first
            // congestion-avoidance ACK.
            return Some(reno_ack_cwnd(sample.cwnd, sample.ssthresh, sample.advertised));
        }
        if self.epoch_start.is_none() {
            self.k = if self.w_max > sample.cwnd {
                ((self.w_max - sample.cwnd) / C).cbrt()
            } else {
                0.0
            };
            self.w_est = sample.cwnd;
            self.epoch_start = Some(sample.now);
        }
        let epoch_start = self.epoch_start.expect("epoch opened above");
        // Project one RTT ahead (RFC 8312 computes W_cubic(t + RTT)).
        let rtt = sample.srtt.map_or(0.0, |d| d.as_secs_f64());
        let t = sample.now.saturating_since(epoch_start).as_secs_f64() + rtt;
        let target = C * (t - self.k).powi(3) + self.w_max;
        // TCP-friendly region: an AIMD flow with the same loss cadence
        // would add 3(1−β)/(1+β) packets per RTT.
        let aimd_gain = 3.0 * (1.0 - BETA) / (1.0 + BETA);
        self.w_est += aimd_gain * sample.newly_acked as f64 / sample.cwnd;
        let goal = target.max(self.w_est);
        let next = if goal > sample.cwnd {
            sample.cwnd + (goal - sample.cwnd) / sample.cwnd
        } else {
            // At or above the cubic's current value (the plateau): hold.
            sample.cwnd
        };
        Some(next.min(sample.advertised).max(1.0))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: self.register_loss(loss.cwnd.min(loss.flight.max(1.0))),
        }
    }

    fn on_rto(&mut self, loss: &LossContext) -> f64 {
        self.register_loss(loss.cwnd.min(loss.flight.max(1.0)))
    }

    fn on_ecn_cwnd(&mut self, loss: &LossContext) -> f64 {
        self.register_loss(loss.cwnd.min(loss.flight.max(1.0)))
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        // Modern stacks pair Cubic with NewReno/SACK-style recovery.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpburst_des::SimDuration;

    fn ack_at(now_ms: u64, cwnd: f64, ssthresh: f64) -> AckSample {
        AckSample {
            now: SimTime::from_millis(now_ms),
            cwnd,
            ssthresh,
            in_slow_start: cwnd < ssthresh,
            advertised: 64.0,
            newly_acked: 1,
            flight: cwnd,
            rtt: Some(SimDuration::from_millis(44)),
            srtt: Some(SimDuration::from_millis(44)),
            min_rtt: Some(SimDuration::from_millis(44)),
            rate: None,
        }
    }

    #[test]
    fn slow_start_is_reno() {
        let mut c = Cubic::new();
        let got = c.on_ack(&ack_at(0, 4.0, 100.0)).unwrap();
        assert_eq!(got, 5.0);
    }

    #[test]
    fn loss_cuts_by_beta_and_sets_plateau() {
        let mut c = Cubic::new();
        let LossResponse::FastRecovery { ssthresh } =
            c.on_loss_signal(&LossContext::synthetic(20.0))
        else {
            panic!("Cubic must use fast recovery");
        };
        assert!((ssthresh - 14.0).abs() < 1e-12, "ssthresh {ssthresh}");
        assert_eq!(c.w_max, 20.0);
    }

    #[test]
    fn fast_convergence_lowers_the_plateau_on_back_to_back_losses() {
        let mut c = Cubic::new();
        c.on_loss_signal(&LossContext::synthetic(20.0));
        // Second loss at a smaller window: aim below it.
        c.on_loss_signal(&LossContext::synthetic(10.0));
        assert!((c.w_max - 10.0 * (2.0 - BETA) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn growth_is_concave_toward_the_plateau_then_convex_beyond() {
        let big = |now_ms: u64, cwnd: f64| AckSample {
            advertised: 1e9,
            srtt: Some(SimDuration::from_millis(100)),
            ..ack_at(now_ms, cwnd, 2.0)
        };
        let mut c = Cubic::new();
        c.on_loss_signal(&LossContext::synthetic(300.0));
        // Re-grow from the post-loss window, delivering `cwnd` ACKs per
        // 100 ms round trip so the window tracks the cubic instead of
        // lagging it; record the per-round increment. K = ∛(90/0.4) ≈ 6.1 s
        // ≈ round 61, so round 60 sits at the plateau.
        let mut cwnd = 210.0;
        let mut per_round = Vec::new();
        for round in 0..120u64 {
            let before = cwnd;
            for _ in 0..before as u64 {
                cwnd = c.on_ack(&big(round * 100, cwnd)).unwrap();
            }
            per_round.push(cwnd - before);
        }
        // The window must pass the old plateau and keep probing.
        assert!(cwnd > 300.0, "cwnd {cwnd} never crossed the plateau");
        // Concave: growth decelerates into the plateau; convex: it
        // re-accelerates while probing beyond it.
        let (early, plateau, late) = (per_round[5], per_round[60], per_round[115]);
        assert!(
            early > 4.0 * plateau,
            "no deceleration into the plateau: early {early}, plateau {plateau}"
        );
        assert!(
            late > 4.0 * plateau,
            "no re-acceleration past the plateau: late {late}, plateau {plateau}"
        );
    }

    #[test]
    fn window_never_exceeds_advertised() {
        let mut c = Cubic::new();
        c.on_loss_signal(&LossContext::synthetic(20.0));
        let mut cwnd = 14.0;
        for ms in (0..200_000).step_by(1000) {
            cwnd = c.on_ack(&ack_at(ms, cwnd, 2.0)).unwrap();
            assert!(cwnd <= 64.0);
        }
        assert_eq!(cwnd, 64.0);
    }
}
