//! Generalized AIMD: the Ott–Swanson `(alpha, beta)` policy family.
//!
//! *Asymptotic behavior of a generalized TCP congestion avoidance
//! algorithm* (Ott & Swanson) parameterizes TCP's window dynamics: per
//! round trip the window grows by `cwnd^alpha` packets (so each ACK
//! contributes `cwnd^alpha / cwnd`) and a loss event removes
//! `cwnd^beta / 2` packets. Reno is the `(0, 1)` point of the family —
//! and because IEEE-754 guarantees `x^0 == 1.0` and `x^1 == x` exactly
//! (and `x − x/2 == x/2` by Sterbenz's lemma), `GeneralizedAimd`
//! with the default exponents reproduces Reno **bit-for-bit**, which the
//! golden-trace tests and an equivalence proptest enforce.

use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};
use crate::config::GaimdParams;

/// The generalized-AIMD policy. Slow start, fast recovery, and timeout
/// handling are inherited from the Reno-shaped engine defaults; only the
/// congestion-avoidance increase and the loss decrease are exponentiated.
#[derive(Debug, Clone, Copy)]
pub struct GeneralizedAimd {
    params: GaimdParams,
}

impl GeneralizedAimd {
    /// Creates the policy with the given exponents (validated by
    /// [`TcpConfig::validate`](crate::TcpConfig::validate):
    /// `alpha ∈ [0, 1)`, `beta ∈ (0, 1]`).
    pub fn new(params: GaimdParams) -> Self {
        GeneralizedAimd { params }
    }

    /// The configured exponents.
    pub fn params(&self) -> GaimdParams {
        self.params
    }

    /// `ssthresh` after a congestion event with `flight` packets
    /// outstanding: `flight − flight^beta / 2`, floored at two packets.
    fn decrease_ssthresh(&self, flight: f64) -> f64 {
        (flight - flight.powf(self.params.beta) / 2.0).max(2.0)
    }
}

impl CongestionControl for GeneralizedAimd {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        Some(if sample.cwnd < sample.ssthresh {
            (sample.cwnd + 1.0).min(sample.advertised)
        } else {
            (sample.cwnd + sample.cwnd.powf(self.params.alpha) / sample.cwnd)
                .min(sample.advertised)
        })
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: self.decrease_ssthresh(loss.flight),
        }
    }

    fn on_rto(&mut self, loss: &LossContext) -> f64 {
        self.decrease_ssthresh(loss.flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::reno::{reno_ack_cwnd, reno_loss_ssthresh};

    fn ack(cwnd: f64, ssthresh: f64, advertised: f64) -> AckSample {
        AckSample {
            now: tcpburst_des::SimTime::ZERO,
            cwnd,
            ssthresh,
            in_slow_start: cwnd < ssthresh,
            advertised,
            newly_acked: 1,
            flight: cwnd.max(1.0),
            rtt: None,
            srtt: None,
            min_rtt: None,
            rate: None,
        }
    }

    #[test]
    fn default_exponents_match_reno_bitwise() {
        let mut g = GeneralizedAimd::new(GaimdParams::default());
        for cwnd in [1.0, 2.0, 3.7, 10.0, 19.999, 20.0] {
            let got = g.on_ack(&ack(cwnd, 2.0, 20.0)).unwrap();
            assert_eq!(got.to_bits(), reno_ack_cwnd(cwnd, 2.0, 20.0).to_bits());
        }
        for flight in [1.0, 3.0, 7.0, 13.0, 20.0] {
            let ctx = LossContext::synthetic(flight);
            let LossResponse::FastRecovery { ssthresh } = g.on_loss_signal(&ctx) else {
                panic!("GAIMD must use fast recovery");
            };
            assert_eq!(ssthresh.to_bits(), reno_loss_ssthresh(flight).to_bits());
        }
    }

    #[test]
    fn sublinear_exponents_soften_both_directions() {
        let mut g = GeneralizedAimd::new(GaimdParams {
            alpha: 0.5,
            beta: 0.5,
        });
        // alpha = 0.5 at cwnd 16: grow by 4/16 = 0.25 per ACK (> Reno's
        // 1/16), still capped by the advertised window.
        let grown = g.on_ack(&ack(16.0, 2.0, 20.0)).unwrap();
        assert!((grown - 16.25).abs() < 1e-12, "grown {grown}");
        // beta = 0.5 at flight 16: shed sqrt(16)/2 = 2 packets instead of 8.
        let LossResponse::FastRecovery { ssthresh } =
            g.on_loss_signal(&LossContext::synthetic(16.0))
        else {
            panic!("GAIMD must use fast recovery");
        };
        assert!((ssthresh - 14.0).abs() < 1e-12, "ssthresh {ssthresh}");
    }

    #[test]
    fn thresholds_never_fall_below_two() {
        let mut g = GeneralizedAimd::new(GaimdParams {
            alpha: 0.9,
            beta: 1.0,
        });
        let LossResponse::FastRecovery { ssthresh } =
            g.on_loss_signal(&LossContext::synthetic(1.0))
        else {
            panic!("GAIMD must use fast recovery");
        };
        assert_eq!(ssthresh, 2.0);
        assert_eq!(g.on_rto(&LossContext::synthetic(0.0)), 2.0);
    }
}
