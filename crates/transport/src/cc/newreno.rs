//! NewReno: Reno that survives multi-loss windows (RFC 6582).

use crate::cc::reno::{reno_ack_cwnd, reno_loss_ssthresh};
use crate::cc::{CongestionControl, LossResponse};

/// NewReno shares Reno's window arithmetic but stays in fast recovery
/// across partial ACKs: the engine retransmits the next hole and
/// deflates, instead of ending the episode, until the whole pre-loss
/// flight is acknowledged.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewReno;

impl CongestionControl for NewReno {
    fn on_ack_cwnd(
        &mut self,
        cwnd: f64,
        ssthresh: f64,
        _in_slow_start: bool,
        advertised: f64,
    ) -> Option<f64> {
        Some(reno_ack_cwnd(cwnd, ssthresh, advertised))
    }

    fn on_loss_signal(&mut self, flight: f64) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: reno_loss_ssthresh(flight),
        }
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        true
    }
}
