//! NewReno: Reno that survives multi-loss windows (RFC 6582).

use crate::cc::reno::{reno_ack_cwnd, reno_loss_ssthresh};
use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};

/// NewReno shares Reno's window arithmetic but stays in fast recovery
/// across partial ACKs: the engine retransmits the next hole and
/// deflates, instead of ending the episode, until the whole pre-loss
/// flight is acknowledged.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewReno;

impl CongestionControl for NewReno {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        Some(reno_ack_cwnd(sample.cwnd, sample.ssthresh, sample.advertised))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: reno_loss_ssthresh(loss.flight),
        }
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        true
    }
}
