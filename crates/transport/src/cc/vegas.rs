//! TCP Vegas per-RTT congestion avoidance (Brakmo & Peterson 1995).
//!
//! Vegas compares the *expected* throughput `cwnd / baseRTT` with the
//! *actual* throughput `cwnd / RTT` once per round-trip. The difference,
//! scaled by `baseRTT`, estimates how many of this connection's packets are
//! sitting in the bottleneck queue; Vegas steers that estimate into the
//! `[α, β]` band with linear window moves, and leaves slow start (where the
//! window doubles only every *other* RTT) as soon as the estimate exceeds
//! `γ`.

use tcpburst_des::{SimDuration, SimTime};
use tcpburst_net::SeqNo;

use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse, RoundAdjust, RoundSample};
use crate::config::VegasParams;
use crate::rtt::RttEstimator;

/// What the Vegas controller decided at an RTT-epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VegasDecision {
    /// Not enough data this epoch; leave the window alone.
    NoMeasurement,
    /// Fewer than `alpha` packets queued: linear increase.
    Increase,
    /// Within the `[alpha, beta]` band: hold.
    Hold,
    /// More than `beta` packets queued: linear decrease.
    Decrease,
    /// (Slow start only) more than `gamma` packets queued: leave slow start.
    ExitSlowStart,
}

/// The Vegas policy: per-RTT `diff`-based window moves through
/// [`CongestionControl::on_round`], every-other-RTT slow-start growth,
/// a gentler 3/4 loss cut, and a fine-grained early-retransmission check
/// on the first two duplicate ACKs.
#[derive(Debug, Clone)]
pub struct Vegas {
    params: VegasParams,
    /// Smallest RTT ever observed (propagation + minimum queueing).
    base_rtt: Option<f64>,
    /// Sum/count of RTT samples within the current epoch.
    rtt_sum: f64,
    rtt_count: u32,
    /// The epoch ends when the cumulative ACK passes this sequence number.
    epoch_end: SeqNo,
    /// Slow-start parity: Vegas grows the window only every other RTT.
    grow_this_epoch: bool,
    /// Fine-grained estimator for the early dup-ACK retransmission check.
    pub(crate) fine: RttEstimator,
}

impl Vegas {
    /// Creates the policy with the given thresholds; `max_rto` bounds the
    /// fine-grained early-retransmission timer.
    pub fn new(params: VegasParams, max_rto: SimDuration) -> Self {
        Vegas {
            params,
            base_rtt: None,
            rtt_sum: 0.0,
            rtt_count: 0,
            epoch_end: SeqNo(1),
            grow_this_epoch: true,
            fine: RttEstimator::new(SimDuration::from_nanos(1), SimDuration::from_millis(1), max_rto),
        }
    }

    /// True if slow-start window growth is allowed in the current epoch.
    pub(crate) fn may_grow_in_slow_start(&self) -> bool {
        self.grow_this_epoch
    }

    /// True when `ack` closes the current measurement epoch.
    pub(crate) fn epoch_closed_by(&self, ack: SeqNo) -> bool {
        ack >= self.epoch_end
    }

    /// Vegas's backlog estimate: `diff = cwnd · (1 − baseRTT/RTT)` packets,
    /// using the epoch's average RTT. `None` without samples.
    pub(crate) fn diff_packets(&self, cwnd: f64) -> Option<f64> {
        let base = self.base_rtt?;
        if self.rtt_count == 0 {
            return None;
        }
        let avg = self.rtt_sum / f64::from(self.rtt_count);
        if avg <= 0.0 {
            return None;
        }
        Some(cwnd * (1.0 - base / avg))
    }

    /// Closes the epoch: makes the once-per-RTT decision, flips the
    /// slow-start parity and resets the accumulators. `next_end` should be
    /// the sender's `snd_nxt` (the epoch closes when everything currently
    /// outstanding has been acknowledged).
    pub(crate) fn close_epoch(
        &mut self,
        cwnd: f64,
        in_slow_start: bool,
        ack: SeqNo,
        next_end: SeqNo,
    ) -> VegasDecision {
        let decision = match self.diff_packets(cwnd) {
            None => VegasDecision::NoMeasurement,
            Some(diff) => {
                if in_slow_start {
                    if diff > self.params.gamma {
                        VegasDecision::ExitSlowStart
                    } else {
                        VegasDecision::Hold
                    }
                } else if diff < self.params.alpha {
                    VegasDecision::Increase
                } else if diff > self.params.beta {
                    VegasDecision::Decrease
                } else {
                    VegasDecision::Hold
                }
            }
        };
        self.rtt_sum = 0.0;
        self.rtt_count = 0;
        self.grow_this_epoch = !self.grow_this_epoch;
        self.epoch_end = next_end.max(ack.next());
        decision
    }

    /// Resets epoch bookkeeping after a timeout (`base_rtt` survives — the
    /// path did not change, the queue did).
    pub(crate) fn reset_epoch(&mut self, next_end: SeqNo) {
        self.rtt_sum = 0.0;
        self.rtt_count = 0;
        self.grow_this_epoch = true;
        self.epoch_end = next_end;
    }
}

impl CongestionControl for Vegas {
    /// Vegas grows per-ACK only in slow start, and only on its growth-parity
    /// RTTs; congestion-avoidance moves happen once per round in
    /// [`on_round`](CongestionControl::on_round).
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        (sample.in_slow_start && self.may_grow_in_slow_start())
            .then(|| (sample.cwnd + 1.0).min(sample.advertised))
    }

    /// Vegas cuts less aggressively (to 3/4) because its loss was detected
    /// early, before the queue collapsed.
    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: (loss.flight * 0.75).max(2.0),
        }
    }

    fn on_rto(&mut self, loss: &LossContext) -> f64 {
        self.reset_epoch(loss.resume_from.next());
        (loss.flight / 2.0).max(2.0)
    }

    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        let secs = rtt.as_secs_f64();
        self.base_rtt = Some(match self.base_rtt {
            None => secs,
            Some(b) => b.min(secs),
        });
        self.rtt_sum += secs;
        self.rtt_count += 1;
        self.fine.sample(rtt);
    }

    fn on_round(&mut self, round: RoundSample) -> Option<RoundAdjust> {
        if !self.epoch_closed_by(round.ack) {
            return None;
        }
        let decision = self.close_epoch(round.cwnd, round.in_slow_start, round.ack, round.snd_nxt);
        // During fast recovery the window is managed by the loss machinery
        // (inflation/deflation); close the epoch to keep the measurement
        // cadence but skip the adjustment.
        let decision = if round.in_fast_recovery {
            VegasDecision::Hold
        } else {
            decision
        };
        Some(match decision {
            VegasDecision::Increase => RoundAdjust::SetCwnd((round.cwnd + 1.0).min(round.advertised)),
            VegasDecision::Decrease => RoundAdjust::SetCwnd((round.cwnd - 1.0).max(2.0)),
            VegasDecision::ExitSlowStart => RoundAdjust::ExitSlowStart {
                // Brakmo: back off by one eighth and switch to the linear
                // regime.
                cwnd: (round.cwnd * 7.0 / 8.0).max(2.0),
                ssthresh: 2.0,
            },
            VegasDecision::Hold | VegasDecision::NoMeasurement => RoundAdjust::Hold,
        })
    }

    /// The fine-grained timeout check Brakmo applies to the first and second
    /// duplicate ACKs.
    fn early_retransmit_due(&self, dup_acks: u32, last_sent: SimTime, now: SimTime) -> bool {
        dup_acks <= 2 && now.saturating_since(last_sent) > self.fine.rto()
    }

    fn base_rtt(&self) -> Option<f64> {
        self.base_rtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vegas() -> Vegas {
        Vegas::new(VegasParams::default(), SimDuration::from_secs(64))
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn base_rtt_tracks_minimum() {
        let mut v = vegas();
        v.on_rtt_sample(ms(50));
        v.on_rtt_sample(ms(44));
        v.on_rtt_sample(ms(90));
        assert_eq!(v.base_rtt(), Some(0.044));
    }

    #[test]
    fn diff_is_zero_at_base_rtt() {
        let mut v = vegas();
        v.on_rtt_sample(ms(44));
        let diff = v.diff_packets(10.0).unwrap();
        assert!(diff.abs() < 1e-9, "no queueing ⇒ diff 0, got {diff}");
    }

    #[test]
    fn diff_estimates_queued_packets() {
        let mut v = vegas();
        v.on_rtt_sample(ms(44)); // establishes base
        // Second epoch: all samples at 88 ms (queueing doubled the RTT).
        v.close_epoch(10.0, false, SeqNo(1), SeqNo(10));
        v.on_rtt_sample(ms(88));
        // diff = cwnd (1 - 44/88) = 5 packets queued.
        let diff = v.diff_packets(10.0).unwrap();
        assert!((diff - 5.0).abs() < 1e-9, "diff {diff}");
    }

    #[test]
    fn decisions_follow_alpha_beta_band() {
        let mut v = vegas();
        v.on_rtt_sample(ms(44));
        v.close_epoch(10.0, false, SeqNo(1), SeqNo(5));

        // diff ≈ 0 < alpha ⇒ increase.
        v.on_rtt_sample(ms(44));
        assert_eq!(
            v.close_epoch(10.0, false, SeqNo(5), SeqNo(10)),
            VegasDecision::Increase
        );

        // diff = 20·(1−44/49.5) = 2.22 ⇒ within [1, 3]: hold.
        v.on_rtt_sample(SimDuration::from_micros(49_500));
        assert_eq!(
            v.close_epoch(20.0, false, SeqNo(10), SeqNo(20)),
            VegasDecision::Hold
        );

        // diff = 20·(1−44/88) = 10 > beta ⇒ decrease.
        v.on_rtt_sample(ms(88));
        assert_eq!(
            v.close_epoch(20.0, false, SeqNo(20), SeqNo(30)),
            VegasDecision::Decrease
        );
    }

    #[test]
    fn slow_start_exits_past_gamma() {
        let mut v = vegas();
        v.on_rtt_sample(ms(44));
        v.close_epoch(4.0, true, SeqNo(1), SeqNo(4));
        // diff = 8·(1−44/88) = 4 > gamma = 1 ⇒ exit.
        v.on_rtt_sample(ms(88));
        assert_eq!(
            v.close_epoch(8.0, true, SeqNo(4), SeqNo(12)),
            VegasDecision::ExitSlowStart
        );
    }

    #[test]
    fn slow_start_growth_alternates_epochs() {
        let mut v = vegas();
        assert!(v.may_grow_in_slow_start());
        v.on_rtt_sample(ms(44));
        v.close_epoch(2.0, true, SeqNo(1), SeqNo(2));
        assert!(!v.may_grow_in_slow_start());
        v.on_rtt_sample(ms(44));
        v.close_epoch(2.0, true, SeqNo(2), SeqNo(4));
        assert!(v.may_grow_in_slow_start());
    }

    #[test]
    fn epoch_without_samples_yields_no_measurement() {
        let mut v = vegas();
        assert_eq!(
            v.close_epoch(2.0, false, SeqNo(1), SeqNo(3)),
            VegasDecision::NoMeasurement
        );
    }

    #[test]
    fn epoch_end_never_stalls() {
        let mut v = vegas();
        v.on_rtt_sample(ms(44));
        // Even if snd_nxt == ack (idle flow), the next epoch end moves past
        // the ack so the epoch cannot close repeatedly on one ACK.
        v.close_epoch(1.0, false, SeqNo(7), SeqNo(7));
        assert!(!v.epoch_closed_by(SeqNo(7)));
        assert!(v.epoch_closed_by(SeqNo(8)));
    }

    #[test]
    fn early_retransmit_uses_fine_timer() {
        let mut v = vegas();
        v.on_rtt_sample(ms(40));
        let rto = v.fine.rto();
        let sent = SimTime::from_millis(100);
        assert!(!v.early_retransmit_due(1, sent, sent + rto / 2));
        assert!(v.early_retransmit_due(1, sent, sent + rto + ms(1)));
        // Past the second duplicate the ordinary DupThresh path takes over.
        assert!(!v.early_retransmit_due(3, sent, sent + rto + ms(1)));
    }
}
