//! HighSpeed TCP (RFC 3649) growth with a Westwood-style
//! bandwidth-estimate loss response.
//!
//! RFC 3649 replaces Reno's one-packet-per-RTT increase and one-half
//! decrease with window-dependent `a(w)` / `b(w)`: below `w = 38`
//! packets the response is exactly Reno's, and above it the increase
//! grows (and the decrease shrinks) along the RFC's log-interpolated
//! response function, so large windows recover in far fewer round trips.
//!
//! The loss response is Westwood's "faster recovery": instead of blindly
//! applying `(1 − b(w))·flight`, the policy keeps an EWMA of the
//! engine's delivery-rate samples ([`AckSample::rate`], skipping
//! app-limited ones) and cuts to the measured `bandwidth × min-RTT` —
//! the pipe's actual capacity — whenever an estimate exists. Over a
//! drop-tail bottleneck that erases the queueing share of the window
//! while keeping the path full, which is the behavior the delivery-rate
//! sampler was added to enable.

use crate::cc::reno::reno_ack_cwnd;
use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};

/// Below this window the response is exactly Reno's (RFC 3649 §4).
const LOW_WINDOW: f64 = 38.0;
/// The window at which the response is tuned for `p = 10^-7`.
const HIGH_WINDOW: f64 = 83_000.0;
/// Decrease fraction at `HIGH_WINDOW`.
const HIGH_DECREASE: f64 = 0.1;
/// EWMA gain for the bandwidth estimate (Westwood's low-pass filter).
const BWE_GAIN: f64 = 1.0 / 8.0;

/// RFC 3649 §4 decrease fraction `b(w)`: 0.5 at `LOW_WINDOW`,
/// log-interpolated down to 0.1 at `HIGH_WINDOW`.
fn decrease_fraction(w: f64) -> f64 {
    if w <= LOW_WINDOW {
        return 0.5;
    }
    let frac = (w.ln() - LOW_WINDOW.ln()) / (HIGH_WINDOW.ln() - LOW_WINDOW.ln());
    0.5 + frac.min(1.0) * (HIGH_DECREASE - 0.5)
}

/// RFC 3649 §4 increase `a(w)`, from the response function
/// `p(w) = 0.078 / w^1.2`: `a(w) = w²·p(w)·2·b(w) / (2 − b(w))`,
/// which is 1 (Reno) at and below `LOW_WINDOW`.
fn increase_packets(w: f64) -> f64 {
    if w <= LOW_WINDOW {
        return 1.0;
    }
    let b = decrease_fraction(w);
    let p = 0.078 / w.powf(1.2);
    (w * w * p * 2.0 * b / (2.0 - b)).max(1.0)
}

/// The HighSpeed policy with a Westwood bandwidth estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hstcp {
    /// EWMA of the delivery rate, in packets per second.
    bwe: Option<f64>,
}

impl Hstcp {
    /// Creates the policy with no bandwidth history (the first loss falls
    /// back to the analytic `(1 − b(w))` cut).
    pub fn new() -> Self {
        Hstcp::default()
    }

    /// The current bandwidth estimate, in packets per second.
    pub fn bandwidth_estimate(&self) -> Option<f64> {
        self.bwe
    }

    /// Westwood cut: the pipe's capacity `BWE × minRTT` in packets, or
    /// the RFC 3649 analytic decrease when no estimate exists yet.
    fn loss_ssthresh(&self, loss: &LossContext) -> f64 {
        let analytic = ((1.0 - decrease_fraction(loss.cwnd)) * loss.flight).max(2.0);
        match (self.bwe, loss.min_rtt) {
            (Some(bwe), Some(min_rtt)) => (bwe * min_rtt.as_secs_f64()).max(2.0),
            _ => analytic,
        }
    }
}

impl CongestionControl for Hstcp {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        // Feed the Westwood filter from the ACK's delivery-rate sample;
        // app-limited samples under-report the path and are skipped.
        if let Some(rate) = sample.rate {
            if !rate.is_app_limited {
                self.bwe = Some(match self.bwe {
                    None => rate.delivery_rate,
                    Some(bwe) => bwe + BWE_GAIN * (rate.delivery_rate - bwe),
                });
            }
        }
        if sample.in_slow_start {
            return Some(reno_ack_cwnd(sample.cwnd, sample.ssthresh, sample.advertised));
        }
        let next = sample.cwnd + increase_packets(sample.cwnd) / sample.cwnd;
        Some(next.min(sample.advertised))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: self.loss_ssthresh(loss),
        }
    }

    fn on_rto(&mut self, loss: &LossContext) -> f64 {
        self.loss_ssthresh(loss)
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::RateSample;
    use tcpburst_des::{SimDuration, SimTime};

    fn ack(cwnd: f64, rate: Option<RateSample>) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            cwnd,
            ssthresh: 2.0,
            in_slow_start: false,
            advertised: 1e9,
            newly_acked: 1,
            flight: cwnd,
            rtt: Some(SimDuration::from_millis(44)),
            srtt: Some(SimDuration::from_millis(44)),
            min_rtt: Some(SimDuration::from_millis(44)),
            rate,
        }
    }

    fn rate(pps: f64, app_limited: bool) -> RateSample {
        RateSample {
            delivery_rate: pps,
            interval: SimDuration::from_millis(44),
            delivered: 100,
            prior_delivered: 90,
            is_app_limited: app_limited,
        }
    }

    #[test]
    fn reno_region_below_the_low_window() {
        assert_eq!(increase_packets(10.0), 1.0);
        assert_eq!(decrease_fraction(10.0), 0.5);
        let mut h = Hstcp::new();
        let got = h.on_ack(&ack(10.0, None)).unwrap();
        assert_eq!(got.to_bits(), (10.0f64 + 0.1).to_bits());
    }

    #[test]
    fn response_scales_up_past_the_low_window() {
        // From the response function at w = 1000: b ≈ 0.33, and
        // a = w²·p·2b/(2−b) ≈ 7.7 — an order of magnitude past Reno.
        let a = increase_packets(1000.0);
        let b = decrease_fraction(1000.0);
        assert!((6.0..10.0).contains(&a), "a(1000) = {a}");
        assert!((0.30..0.36).contains(&b), "b(1000) = {b}");
        // Monotone: bigger windows grow faster and cut shallower.
        assert!(increase_packets(10_000.0) > a);
        assert!(decrease_fraction(10_000.0) < b);
    }

    #[test]
    fn bandwidth_estimate_tracks_samples_and_skips_app_limited() {
        let mut h = Hstcp::new();
        h.on_ack(&ack(10.0, Some(rate(500.0, false))));
        assert_eq!(h.bandwidth_estimate(), Some(500.0));
        // App-limited samples leave the filter untouched.
        h.on_ack(&ack(10.0, Some(rate(50.0, true))));
        assert_eq!(h.bandwidth_estimate(), Some(500.0));
        // Valid samples move the EWMA by 1/8 of the difference.
        h.on_ack(&ack(10.0, Some(rate(900.0, false))));
        assert_eq!(h.bandwidth_estimate(), Some(550.0));
    }

    #[test]
    fn westwood_cut_uses_bandwidth_times_min_rtt() {
        let mut h = Hstcp::new();
        h.on_ack(&ack(10.0, Some(rate(500.0, false))));
        let loss = LossContext {
            min_rtt: Some(SimDuration::from_millis(40)),
            ..LossContext::synthetic(18.0)
        };
        let LossResponse::FastRecovery { ssthresh } = h.on_loss_signal(&loss) else {
            panic!("HSTCP must use fast recovery");
        };
        // 500 pkt/s × 0.040 s = 20 packets of pipe.
        assert!((ssthresh - 20.0).abs() < 1e-9, "ssthresh {ssthresh}");
    }

    #[test]
    fn analytic_cut_without_an_estimate() {
        let mut h = Hstcp::new();
        let LossResponse::FastRecovery { ssthresh } =
            h.on_loss_signal(&LossContext::synthetic(18.0))
        else {
            panic!("HSTCP must use fast recovery");
        };
        assert!((ssthresh - 9.0).abs() < 1e-12, "ssthresh {ssthresh}");
        assert_eq!(h.on_rto(&LossContext::synthetic(0.0)), 2.0);
    }
}
