//! SACK: Reno window arithmetic over scoreboard-driven repair.

use crate::cc::reno::{reno_ack_cwnd, reno_loss_ssthresh};
use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};

/// The SACK policy is pure Reno on the window side; what distinguishes
/// the variant — the RFC 2018 scoreboard and RFC 3517 hole repair — is
/// loss *detection*, which lives in the reliability engine. Like
/// NewReno, a partial ACK keeps the episode alive so multiple holes are
/// repaired in one recovery instead of stalling into a timeout.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sack;

impl CongestionControl for Sack {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        Some(reno_ack_cwnd(sample.cwnd, sample.ssthresh, sample.advertised))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: reno_loss_ssthresh(loss.flight),
        }
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        true
    }
}
