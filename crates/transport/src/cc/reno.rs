//! Reno: the classic AIMD window arithmetic (Jacobson '88 plus fast
//! recovery), the paper's workhorse.

use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};

/// Reno window arithmetic: `cwnd += 1` per ACK below `ssthresh`,
/// `cwnd += 1/cwnd` above it, halve on loss, enter fast recovery. A
/// partial ACK ends recovery (the engine's default) — which is exactly
/// why multi-loss windows in Reno tend to end in a timeout, the
/// synchronizing event the paper highlights.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reno;

/// The shared Reno-family per-ACK growth rule: slow start below
/// `ssthresh`, `1/cwnd` congestion avoidance above, capped by the
/// advertised window.
pub(crate) fn reno_ack_cwnd(cwnd: f64, ssthresh: f64, advertised: f64) -> f64 {
    if cwnd < ssthresh {
        (cwnd + 1.0).min(advertised)
    } else {
        (cwnd + 1.0 / cwnd).min(advertised)
    }
}

/// The shared Reno-family loss cut: half the flight, floored at two
/// packets.
pub(crate) fn reno_loss_ssthresh(flight: f64) -> f64 {
    (flight / 2.0).max(2.0)
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        Some(reno_ack_cwnd(sample.cwnd, sample.ssthresh, sample.advertised))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::FastRecovery {
            ssthresh: reno_loss_ssthresh(loss.flight),
        }
    }
}
