//! BBR-lite: model-based congestion control over a windowed
//! max-bandwidth × min-RTT estimate, with paced sending.
//!
//! Where every other policy here reacts to *loss*, BBR builds an
//! explicit model of the path — the bottleneck bandwidth (the windowed
//! maximum of the engine's delivery-rate samples, [`AckSample::rate`])
//! and the round-trip propagation delay (the windowed minimum RTT) — and
//! operates at their product, the bandwidth-delay product. Transmissions
//! are *paced* at a gain times the bandwidth estimate via
//! [`pacing_rate`](CongestionControl::pacing_rate), which the engine
//! turns into paced-send timer events; the congestion window is only a
//! backstop (`cwnd_gain × BDP`).
//!
//! This is the "lite" state machine: **Startup** (gain 2/ln 2 ≈ 2.885,
//! doubling the delivery rate every round until it stops growing),
//! **Drain** (inverse gain, bleeding the queue Startup built), and
//! **ProbeBw** (an eight-phase gain cycle `1.25, 0.75, 1, …, 1` that
//! probes for more bandwidth and then yields). ProbeRtt is omitted: the
//! paper's scenarios run fixed-propagation dumbbells where the windowed
//! min-RTT never stales.
//!
//! Rounds are counted the way BBR's rate sampler does: a round ends when
//! an ACK's [`RateSample::prior_delivered`] reaches the `delivered`
//! count recorded at the previous round's end.

use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};

/// Startup/Drain gain `2 / ln 2`: fills the pipe in one round.
const STARTUP_GAIN: f64 = 2.885;
/// ProbeBw pacing-gain cycle (one phase per round).
const PROBE_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// cwnd backstop: this many BDPs in flight outside Startup.
const CWND_GAIN: f64 = 2.0;
/// Bandwidth samples survive this many rounds in the max filter.
const BW_WINDOW_ROUNDS: u64 = 10;
/// Startup ends after this many rounds without 25% bandwidth growth.
const FULL_BW_ROUNDS: u32 = 3;
/// Minimum congestion window, in packets (keeps ACK clocking alive).
const MIN_CWND: f64 = 4.0;

/// Which phase of the BBR state machine the flow is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw,
}

/// The BBR-lite policy.
#[derive(Debug, Clone)]
pub struct Bbr {
    mode: Mode,
    /// Windowed max filter over `(round, bandwidth)` samples, kept as a
    /// monotonically decreasing deque (front is the running maximum).
    bw_filter: Vec<(u64, f64)>,
    /// Completed round trips.
    round: u64,
    /// The `delivered` count that ends the current round.
    next_round_delivered: u64,
    /// Best bandwidth seen when the Startup plateau check last ran.
    full_bw: f64,
    /// Consecutive plateau rounds observed in Startup.
    full_bw_rounds: u32,
    /// Index into [`PROBE_CYCLE`].
    cycle_index: usize,
}

impl Default for Bbr {
    fn default() -> Self {
        Bbr::new()
    }
}

impl Bbr {
    /// Creates the policy in Startup with an empty path model.
    pub fn new() -> Self {
        Bbr {
            mode: Mode::Startup,
            bw_filter: Vec::new(),
            round: 0,
            next_round_delivered: 0,
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_index: 0,
        }
    }

    /// The bottleneck-bandwidth estimate, in packets per second.
    pub fn bottleneck_bw(&self) -> Option<f64> {
        self.bw_filter.first().map(|&(_, bw)| bw)
    }

    /// The current pacing gain.
    fn pacing_gain(&self) -> f64 {
        match self.mode {
            Mode::Startup => STARTUP_GAIN,
            Mode::Drain => 1.0 / STARTUP_GAIN,
            Mode::ProbeBw => PROBE_CYCLE[self.cycle_index],
        }
    }

    /// Inserts a bandwidth sample and expires entries older than the
    /// filter window, keeping the deque max-monotone.
    fn update_bw(&mut self, bw: f64) {
        while let Some(&(r, _)) = self.bw_filter.first() {
            if r + BW_WINDOW_ROUNDS < self.round {
                self.bw_filter.remove(0);
            } else {
                break;
            }
        }
        while let Some(&(_, tail)) = self.bw_filter.last() {
            if tail <= bw {
                self.bw_filter.pop();
            } else {
                break;
            }
        }
        self.bw_filter.push((self.round, bw));
    }

    /// The bandwidth-delay product in packets, if the model has both
    /// halves.
    fn bdp_packets(&self, min_rtt: Option<tcpburst_des::SimDuration>) -> Option<f64> {
        let bw = self.bottleneck_bw()?;
        let rtt = min_rtt?.as_secs_f64();
        Some(bw * rtt)
    }

    /// Per-round state transitions: the Startup plateau check and the
    /// ProbeBw gain cycle.
    fn on_round_end(&mut self, flight: f64, min_rtt: Option<tcpburst_des::SimDuration>) {
        match self.mode {
            Mode::Startup => {
                let bw = self.bottleneck_bw().unwrap_or(0.0);
                if bw > self.full_bw * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= FULL_BW_ROUNDS {
                        self.mode = Mode::Drain;
                    }
                }
            }
            Mode::Drain => {
                if let Some(bdp) = self.bdp_packets(min_rtt) {
                    if flight <= bdp {
                        self.mode = Mode::ProbeBw;
                        self.cycle_index = 2; // start in a cruise phase
                    }
                }
            }
            Mode::ProbeBw => {
                self.cycle_index = (self.cycle_index + 1) % PROBE_CYCLE.len();
            }
        }
    }
}

impl CongestionControl for Bbr {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        if let Some(rate) = sample.rate {
            if rate.prior_delivered >= self.next_round_delivered {
                self.next_round_delivered = rate.delivered;
                self.round += 1;
                self.on_round_end(sample.flight, sample.min_rtt);
            }
            // An app-limited sample can't raise the estimate but may
            // confirm it (BBR's filter rule).
            if !rate.is_app_limited || rate.delivery_rate >= self.bottleneck_bw().unwrap_or(0.0)
            {
                self.update_bw(rate.delivery_rate);
            }
        }
        let Some(bdp) = self.bdp_packets(sample.min_rtt) else {
            // No model yet: grow like slow start so the first flight
            // leaves the ground and produces rate samples.
            return Some((sample.cwnd + 1.0).min(sample.advertised));
        };
        let gain = match self.mode {
            Mode::Startup | Mode::Drain => STARTUP_GAIN,
            Mode::ProbeBw => CWND_GAIN,
        };
        Some((gain * bdp).max(MIN_CWND).min(sample.advertised))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        // BBR does not treat loss as a capacity signal; recovery deflates
        // to the model's BDP (or Reno's cut while the model is empty).
        let ssthresh = self
            .bdp_packets(loss.min_rtt)
            .unwrap_or(loss.flight / 2.0)
            .max(2.0);
        LossResponse::FastRecovery { ssthresh }
    }

    fn on_rto(&mut self, loss: &LossContext) -> f64 {
        // A timeout means the model is stale: restart discovery.
        self.mode = Mode::Startup;
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.bdp_packets(loss.min_rtt)
            .unwrap_or(loss.flight / 2.0)
            .max(2.0)
    }

    fn pacing_rate(&self) -> Option<f64> {
        Some(self.pacing_gain() * self.bottleneck_bw()?)
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::RateSample;
    use tcpburst_des::{SimDuration, SimTime};

    fn ack(cwnd: f64, rate: Option<RateSample>) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            cwnd,
            ssthresh: 1e9,
            in_slow_start: true,
            advertised: 64.0,
            newly_acked: 1,
            flight: cwnd,
            rtt: Some(SimDuration::from_millis(50)),
            srtt: Some(SimDuration::from_millis(50)),
            min_rtt: Some(SimDuration::from_millis(50)),
            rate,
        }
    }

    fn rate(pps: f64, prior: u64, delivered: u64) -> RateSample {
        RateSample {
            delivery_rate: pps,
            interval: SimDuration::from_millis(50),
            delivered,
            prior_delivered: prior,
            is_app_limited: false,
        }
    }

    #[test]
    fn unpaced_and_slow_start_like_before_the_first_sample() {
        let mut b = Bbr::new();
        assert_eq!(b.pacing_rate(), None);
        assert_eq!(b.on_ack(&ack(4.0, None)), Some(5.0));
    }

    #[test]
    fn pacing_rate_is_gain_times_bottleneck_bw() {
        let mut b = Bbr::new();
        b.on_ack(&ack(4.0, Some(rate(100.0, 0, 5))));
        let paced = b.pacing_rate().expect("model exists");
        assert!((paced - STARTUP_GAIN * 100.0).abs() < 1e-9, "rate {paced}");
    }

    #[test]
    fn max_filter_keeps_the_best_recent_sample() {
        let mut b = Bbr::new();
        b.update_bw(100.0);
        b.update_bw(80.0);
        assert_eq!(b.bottleneck_bw(), Some(100.0));
        b.update_bw(150.0);
        assert_eq!(b.bottleneck_bw(), Some(150.0));
        // Expire the old maximum out of the window.
        b.round += BW_WINDOW_ROUNDS + 1;
        b.update_bw(90.0);
        assert_eq!(b.bottleneck_bw(), Some(90.0));
    }

    #[test]
    fn startup_plateaus_into_drain_then_probe_bw() {
        let mut b = Bbr::new();
        let mut delivered = 0u64;
        // Rounds with flat bandwidth: Startup must exit after three.
        for _ in 0..12 {
            let prior = delivered;
            delivered += 10;
            b.on_ack(&ack(4.0, Some(rate(100.0, prior, delivered))));
        }
        assert_eq!(b.mode, Mode::ProbeBw, "mode {:?}", b.mode);
        // In ProbeBw the cwnd backstop is CWND_GAIN × BDP = 2 × 5 = 10.
        let w = b.on_ack(&ack(10.0, None)).unwrap();
        assert!((w - 10.0).abs() < 1e-9, "cwnd {w}");
    }

    #[test]
    fn probe_bw_cycles_through_the_gain_table() {
        let mut b = Bbr::new();
        b.mode = Mode::ProbeBw;
        b.cycle_index = 0;
        b.update_bw(100.0);
        assert_eq!(b.pacing_rate(), Some(125.0));
        b.on_round_end(4.0, Some(SimDuration::from_millis(50)));
        assert_eq!(b.pacing_rate(), Some(75.0));
    }

    #[test]
    fn loss_keeps_the_model_and_rto_restarts_discovery() {
        let mut b = Bbr::new();
        b.update_bw(200.0);
        let loss = LossContext {
            min_rtt: Some(SimDuration::from_millis(50)),
            ..LossContext::synthetic(12.0)
        };
        let LossResponse::FastRecovery { ssthresh } = b.on_loss_signal(&loss) else {
            panic!("BBR must use fast recovery");
        };
        assert!((ssthresh - 10.0).abs() < 1e-9, "ssthresh {ssthresh}");
        b.mode = Mode::ProbeBw;
        b.on_rto(&loss);
        assert_eq!(b.mode, Mode::Startup);
    }
}
