//! Tahoe: Jacobson '88 without fast recovery.

use crate::cc::reno::{reno_ack_cwnd, reno_loss_ssthresh};
use crate::cc::{AckSample, CongestionControl, LossContext, LossResponse};

/// Tahoe treats every loss signal alike: halve into `ssthresh`, collapse
/// to a one-segment window, and slow-start from scratch (the engine
/// performs the go-back-N rewind). Growth rules are Reno's.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tahoe;

impl CongestionControl for Tahoe {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        Some(reno_ack_cwnd(sample.cwnd, sample.ssthresh, sample.advertised))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        LossResponse::Collapse {
            ssthresh: reno_loss_ssthresh(loss.flight),
        }
    }
}
