//! Tahoe: Jacobson '88 without fast recovery.

use crate::cc::reno::{reno_ack_cwnd, reno_loss_ssthresh};
use crate::cc::{CongestionControl, LossResponse};

/// Tahoe treats every loss signal alike: halve into `ssthresh`, collapse
/// to a one-segment window, and slow-start from scratch (the engine
/// performs the go-back-N rewind). Growth rules are Reno's.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tahoe;

impl CongestionControl for Tahoe {
    fn on_ack_cwnd(
        &mut self,
        cwnd: f64,
        ssthresh: f64,
        _in_slow_start: bool,
        advertised: f64,
    ) -> Option<f64> {
        Some(reno_ack_cwnd(cwnd, ssthresh, advertised))
    }

    fn on_loss_signal(&mut self, flight: f64) -> LossResponse {
        LossResponse::Collapse {
            ssthresh: reno_loss_ssthresh(flight),
        }
    }
}
