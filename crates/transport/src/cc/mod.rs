//! Pluggable congestion-control policies.
//!
//! The transport stack is split into two layers. The **reliability
//! engine** ([`TcpSender`](crate::TcpSender), in `sender/`) owns
//! sequencing, in-flight accounting, the retransmission queue, RTO
//! timers, and dup-ACK / SACK loss *detection*. Everything that decides
//! *window sizes* — how fast to grow, how hard to cut, what to do once
//! per round trip — lives behind the [`CongestionControl`] trait, with
//! one implementation per policy in this module tree:
//!
//! * [`Tahoe`] — any loss collapses to a one-segment slow start,
//! * [`Reno`] — AIMD with fast recovery,
//! * [`NewReno`] — Reno that stays in recovery across partial ACKs,
//! * [`Sack`] — Reno window arithmetic over scoreboard-driven repair,
//! * [`Vegas`] — Brakmo–Peterson delay-based avoidance (per-RTT hooks),
//! * [`GeneralizedAimd`] — the Ott–Swanson `(alpha, beta)` family,
//! * [`Cubic`] — RFC 8312 cubic growth with a TCP-friendly region,
//! * [`Hstcp`] — RFC 3649 HighSpeed response with a Westwood-style
//!   bandwidth-estimate loss cut,
//! * [`Bbr`] — a BBR-lite model (startup / drain / probe-bw over a
//!   windowed max-bandwidth × min-RTT estimate) that paces its sends.
//!
//! Every hook takes one *context* value — [`AckSample`] on the ACK path,
//! [`LossContext`] on the loss path — so adding a measurement (the
//! delivery-rate sample, say) never breaks existing implementations: they
//! simply ignore the new field. Rate-based policies additionally expose a
//! [`pacing_rate`](CongestionControl::pacing_rate); when it is `Some`,
//! the engine spaces transmissions at that rate with a paced-send timer,
//! and when it is `None` (every window-based policy) the send path is
//! byte-identical to the pre-pacing engine.
//!
//! The engine holds a [`Policy`] — a plain enum over the concrete
//! policies, so the per-ACK hot path is a jump table rather than a
//! `Box<dyn>` indirection. [`Policy::for_config`] is the **only** place
//! in the crate that branches on [`TcpVariant`]; the engine itself is
//! variant-agnostic and a new policy plugs in by adding an enum arm
//! here, plus a row in [`VARIANT_REGISTRY`] (which generates the CLI
//! help and parse errors), nothing else.

use tcpburst_des::{SimDuration, SimTime};
use tcpburst_net::SeqNo;

use crate::config::{TcpConfig, TcpVariant};

mod bbr;
mod cubic;
mod gaimd;
mod hstcp;
mod newreno;
mod reno;
mod sack;
mod tahoe;
mod vegas;

pub use bbr::Bbr;
pub use cubic::Cubic;
pub use gaimd::GeneralizedAimd;
pub use hstcp::Hstcp;
pub use newreno::NewReno;
pub use reno::Reno;
pub use sack::Sack;
pub use tahoe::Tahoe;
pub use vegas::Vegas;

/// A delivery-rate measurement in the spirit of BBR's rate sampler.
///
/// Every fresh segment is stamped at transmission with the connection's
/// `delivered` count and `delivered_time`; when the segment is
/// cumulatively acknowledged, the rate over its flight is
/// `(delivered_now − delivered_then) / (now − delivered_time_then)`.
/// Samples from retransmitted segments are discarded (Karn's rule), so a
/// sample is only present on ACKs that retire at least one
/// once-transmitted segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Measured delivery rate, in packets per second.
    pub delivery_rate: f64,
    /// The interval the rate was measured over.
    pub interval: SimDuration,
    /// Total segments delivered at sampling time.
    pub delivered: u64,
    /// The `delivered` total when the sampled segment was transmitted.
    /// BBR-style round counting compares this against a saved marker.
    pub prior_delivered: u64,
    /// True if the sampled segment drained the application backlog when
    /// it was sent: the flight was limited by the application, not the
    /// window, so the sample under-estimates the path's capacity.
    pub is_app_limited: bool,
}

/// The per-ACK context handed to [`CongestionControl::on_ack`]: one
/// struct instead of a positional argument list, so policies that need
/// time (Cubic), RTT (Vegas, BBR) or delivery rate (HSTCP/Westwood, BBR)
/// read the fields they care about and adding a field never breaks the
/// other implementations.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// The simulation clock at the ACK.
    pub now: SimTime,
    /// The congestion window before any growth, in packets.
    pub cwnd: f64,
    /// The current slow-start threshold, in packets.
    pub ssthresh: f64,
    /// True while the sender is in slow start.
    pub in_slow_start: bool,
    /// The receiver's advertised window, in packets.
    pub advertised: f64,
    /// Segments newly acknowledged by this cumulative ACK.
    pub newly_acked: u64,
    /// Packets still in flight after the ACK.
    pub flight: f64,
    /// This ACK's Karn-valid RTT measurement, if it produced one.
    pub rtt: Option<SimDuration>,
    /// The smoothed RTT (Jacobson/Karels), once at least one sample exists.
    pub srtt: Option<SimDuration>,
    /// The minimum RTT observed over the connection's lifetime.
    pub min_rtt: Option<SimDuration>,
    /// The delivery-rate sample this ACK produced, if any.
    pub rate: Option<RateSample>,
}

/// The context handed to the loss-path hooks
/// ([`on_loss_signal`](CongestionControl::on_loss_signal),
/// [`on_rto`](CongestionControl::on_rto),
/// [`on_ecn_cwnd`](CongestionControl::on_ecn_cwnd)): one struct for all
/// three signals, so a policy reads the fields it needs and a new field
/// never breaks the existing implementations.
#[derive(Debug, Clone, Copy)]
pub struct LossContext {
    /// The simulation clock at the loss signal.
    pub now: SimTime,
    /// Packets in flight when the signal fired.
    pub flight: f64,
    /// The congestion window before any cut, in packets.
    pub cwnd: f64,
    /// The slow-start threshold before any cut, in packets.
    pub ssthresh: f64,
    /// Where retransmission resumes (`snd_una`): on an RTO the engine
    /// rewinds `snd_nxt` here (go-back-N).
    pub resume_from: SeqNo,
    /// The minimum RTT observed over the connection's lifetime.
    pub min_rtt: Option<SimDuration>,
}

impl LossContext {
    /// A bare context for unit tests and harnesses that only exercise the
    /// `flight`-driven arithmetic.
    pub fn synthetic(flight: f64) -> Self {
        LossContext {
            now: SimTime::ZERO,
            flight,
            cwnd: flight.max(1.0),
            ssthresh: flight.max(2.0),
            resume_from: SeqNo::ZERO,
            min_rtt: None,
        }
    }
}

/// How a policy answers a fast-retransmit loss signal (the engine's
/// dup-ACK / early-retransmit detector fired).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossResponse {
    /// Collapse to a one-segment slow start and go-back-N (Tahoe): the
    /// engine sets `cwnd = 1`, rewinds `snd_nxt`, and resends.
    Collapse {
        /// The new slow-start threshold.
        ssthresh: f64,
    },
    /// Enter fast recovery: the engine retransmits the hole and inflates
    /// to `cwnd = ssthresh + 3` (three dup ACKs mean three departures).
    FastRecovery {
        /// The new slow-start threshold.
        ssthresh: f64,
    },
}

/// A per-round-trip measurement handed to [`CongestionControl::on_round`]
/// after every cumulative ACK (the policy decides whether it closes an
/// epoch).
#[derive(Debug, Clone, Copy)]
pub struct RoundSample {
    /// The cumulative ACK that triggered the hook.
    pub ack: SeqNo,
    /// The sender's next fresh sequence number (one past the flight).
    pub snd_nxt: SeqNo,
    /// The current congestion window, in packets.
    pub cwnd: f64,
    /// True while the sender is in slow start.
    pub in_slow_start: bool,
    /// True while the sender is in fast recovery.
    pub in_fast_recovery: bool,
    /// The receiver's advertised window, in packets.
    pub advertised: f64,
}

/// What a per-RTT policy decided at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundAdjust {
    /// Epoch closed, window untouched.
    Hold,
    /// Set the congestion window to this value.
    SetCwnd(f64),
    /// Leave slow start: set the window and threshold, switch to
    /// congestion avoidance.
    ExitSlowStart {
        /// The new congestion window.
        cwnd: f64,
        /// The new slow-start threshold.
        ssthresh: f64,
    },
}

/// A congestion-control policy: pure window arithmetic, driven by the
/// reliability engine's loss-detection and timer machinery.
///
/// Hooks that *return* a window or threshold never apply it themselves —
/// the engine does, so window changes happen only at hook call sites
/// (the property-tested contract). Implementations may keep internal
/// state (Vegas's RTT accumulators, BBR's bandwidth filter) but must
/// uphold two invariants the end-of-run auditor re-checks on every
/// scenario: any returned window is at least 1 packet, any returned
/// threshold at least 2.
pub trait CongestionControl {
    /// Per-ACK window growth outside recovery. Returns the new window,
    /// or `None` to leave it untouched (Vegas outside its slow-start
    /// growth parity). Implementations must cap at `sample.advertised`.
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64>;

    /// The engine's fast-retransmit detector fired. Returns the new
    /// threshold and whether to collapse or enter fast recovery.
    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse;

    /// The retransmission timer expired; the engine will collapse to
    /// `cwnd = 1` slow start and go back to `loss.resume_from`. Returns
    /// the new slow-start threshold.
    fn on_rto(&mut self, loss: &LossContext) -> f64 {
        (loss.flight / 2.0).max(2.0)
    }

    /// The window to deflate to when leaving fast recovery.
    fn post_recovery_cwnd(&mut self, ssthresh: f64) -> f64 {
        ssthresh.max(1.0)
    }

    /// The threshold (and window) to cut to on an ECN echo; the engine
    /// rate-limits the cut to once per RTT.
    fn on_ecn_cwnd(&mut self, loss: &LossContext) -> f64 {
        (loss.flight / 2.0).max(2.0)
    }

    /// The rate to space transmissions at, in packets per second, or
    /// `None` for windowed (back-to-back) sending. The engine re-reads
    /// this on every send opportunity and schedules a paced-send timer
    /// when the next transmission lands in the future; with `None` the
    /// send path is exactly the pre-pacing engine, no timer ever armed.
    fn pacing_rate(&self) -> Option<f64> {
        None
    }

    /// One Karn-valid RTT measurement (a never-retransmitted segment was
    /// acknowledged).
    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        let _ = rtt;
    }

    /// Called after every cumulative ACK with the current round's state.
    /// A per-RTT policy (Vegas) returns `Some` when the ACK closes its
    /// measurement epoch; `None` means "not an epoch boundary".
    fn on_round(&mut self, round: RoundSample) -> Option<RoundAdjust> {
        let _ = round;
        None
    }

    /// True if this dup ACK should trigger retransmission *before* the
    /// third duplicate (Vegas's fine-grained timer check).
    fn early_retransmit_due(&self, dup_acks: u32, last_sent: SimTime, now: SimTime) -> bool {
        let _ = (dup_acks, last_sent, now);
        false
    }

    /// True if a partial ACK keeps the sender in fast recovery (NewReno,
    /// SACK) instead of ending the episode (Reno, Vegas).
    fn holds_recovery_on_partial_ack(&self) -> bool {
        false
    }

    /// The minimum RTT this policy has observed, in seconds (Vegas).
    fn base_rtt(&self) -> Option<f64> {
        None
    }
}

/// One row of the policy registry: the CLI spelling, the variant it
/// selects, and a one-line summary for the generated help text.
#[derive(Debug, Clone, Copy)]
pub struct VariantInfo {
    /// The CLI spelling (`--variant <name>`).
    pub name: &'static str,
    /// The variant this name selects.
    pub variant: TcpVariant,
    /// One-line summary for generated help text.
    pub summary: &'static str,
    /// Extra value syntax accepted after the name, e.g. `":<a>,<b>"`.
    pub value_syntax: Option<&'static str>,
}

/// The policy registry, kept next to [`Policy::for_config`] so a new
/// variant lands in the CLI help, the parse-error suggestion list, and
/// the construction site in one edit. Order is the display order.
pub const VARIANT_REGISTRY: [VariantInfo; 9] = [
    VariantInfo {
        name: "tahoe",
        variant: TcpVariant::Tahoe,
        summary: "Jacobson '88: any loss collapses to a one-segment slow start",
        value_syntax: None,
    },
    VariantInfo {
        name: "reno",
        variant: TcpVariant::Reno,
        summary: "AIMD with fast recovery (the paper's workhorse)",
        value_syntax: None,
    },
    VariantInfo {
        name: "newreno",
        variant: TcpVariant::NewReno,
        summary: "Reno that stays in recovery across partial ACKs (RFC 6582)",
        value_syntax: None,
    },
    VariantInfo {
        name: "vegas",
        variant: TcpVariant::Vegas,
        summary: "Brakmo-Peterson delay-based congestion avoidance",
        value_syntax: None,
    },
    VariantInfo {
        name: "sack",
        variant: TcpVariant::Sack,
        summary: "Reno arithmetic over RFC 2018/3517 scoreboard repair",
        value_syntax: None,
    },
    VariantInfo {
        name: "gaimd",
        variant: TcpVariant::Gaimd,
        summary: "Ott-Swanson generalized AIMD with (alpha, beta) exponents",
        value_syntax: Some(":<alpha>,<beta>"),
    },
    VariantInfo {
        name: "cubic",
        variant: TcpVariant::Cubic,
        summary: "RFC 8312 cubic growth with TCP-friendly region",
        value_syntax: None,
    },
    VariantInfo {
        name: "hstcp",
        variant: TcpVariant::Hstcp,
        summary: "RFC 3649 HighSpeed response, Westwood bandwidth-estimate cut",
        value_syntax: None,
    },
    VariantInfo {
        name: "bbr",
        variant: TcpVariant::Bbr,
        summary: "BBR-lite: paced max-bandwidth x min-RTT model",
        value_syntax: None,
    },
];

/// Looks a variant up by its CLI spelling (the bare name, without any
/// `:<values>` suffix).
pub fn variant_by_name(name: &str) -> Option<TcpVariant> {
    VARIANT_REGISTRY
        .iter()
        .find(|info| info.name == name)
        .map(|info| info.variant)
}

/// The registry row for a variant (every variant has exactly one).
pub fn variant_info(variant: TcpVariant) -> &'static VariantInfo {
    VARIANT_REGISTRY
        .iter()
        .find(|info| info.variant == variant)
        .expect("every TcpVariant has a registry row")
}

/// The `|`-separated spelling list for help and error messages, e.g.
/// `tahoe|reno|newreno|vegas|sack|gaimd:<alpha>,<beta>|cubic|hstcp|bbr`.
pub fn variant_spellings() -> String {
    let mut s = String::new();
    for (i, info) in VARIANT_REGISTRY.iter().enumerate() {
        if i > 0 {
            s.push('|');
        }
        s.push_str(info.name);
        if let Some(syntax) = info.value_syntax {
            s.push_str(syntax);
        }
    }
    s
}

/// Enum dispatch over every shipped policy.
///
/// The sender's per-ACK path goes through this enum (a match compiles to
/// a jump table) instead of a `Box<dyn CongestionControl>`, keeping the
/// hot path allocation-free and within the `bench_des --regress` gate.
#[derive(Debug, Clone)]
pub enum Policy {
    /// See [`Tahoe`].
    Tahoe(Tahoe),
    /// See [`Reno`].
    Reno(Reno),
    /// See [`NewReno`].
    NewReno(NewReno),
    /// See [`Sack`].
    Sack(Sack),
    /// See [`Vegas`].
    Vegas(Vegas),
    /// See [`GeneralizedAimd`].
    Gaimd(GeneralizedAimd),
    /// See [`Cubic`].
    Cubic(Cubic),
    /// See [`Hstcp`].
    Hstcp(Hstcp),
    /// See [`Bbr`].
    Bbr(Bbr),
}

impl Policy {
    /// The policy-construction site: the **only** place in the transport
    /// crate that inspects [`TcpVariant`] to choose an algorithm
    /// (`scripts/verify.sh` greps `sender/` and `cc/` to keep it that
    /// way).
    pub fn for_config(cfg: &TcpConfig) -> Policy {
        match cfg.variant {
            TcpVariant::Tahoe => Policy::Tahoe(Tahoe),
            TcpVariant::Reno => Policy::Reno(Reno),
            TcpVariant::NewReno => Policy::NewReno(NewReno),
            TcpVariant::Sack => Policy::Sack(Sack),
            TcpVariant::Vegas => Policy::Vegas(Vegas::new(cfg.vegas, cfg.max_rto)),
            TcpVariant::Gaimd => Policy::Gaimd(GeneralizedAimd::new(cfg.gaimd)),
            TcpVariant::Cubic => Policy::Cubic(Cubic::new()),
            TcpVariant::Hstcp => Policy::Hstcp(Hstcp::new()),
            TcpVariant::Bbr => Policy::Bbr(Bbr::new()),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            Policy::Tahoe($p) => $body,
            Policy::Reno($p) => $body,
            Policy::NewReno($p) => $body,
            Policy::Sack($p) => $body,
            Policy::Vegas($p) => $body,
            Policy::Gaimd($p) => $body,
            Policy::Cubic($p) => $body,
            Policy::Hstcp($p) => $body,
            Policy::Bbr($p) => $body,
        }
    };
}

impl CongestionControl for Policy {
    fn on_ack(&mut self, sample: &AckSample) -> Option<f64> {
        dispatch!(self, p => p.on_ack(sample))
    }

    fn on_loss_signal(&mut self, loss: &LossContext) -> LossResponse {
        dispatch!(self, p => p.on_loss_signal(loss))
    }

    fn on_rto(&mut self, loss: &LossContext) -> f64 {
        dispatch!(self, p => p.on_rto(loss))
    }

    fn post_recovery_cwnd(&mut self, ssthresh: f64) -> f64 {
        dispatch!(self, p => p.post_recovery_cwnd(ssthresh))
    }

    fn on_ecn_cwnd(&mut self, loss: &LossContext) -> f64 {
        dispatch!(self, p => p.on_ecn_cwnd(loss))
    }

    fn pacing_rate(&self) -> Option<f64> {
        dispatch!(self, p => p.pacing_rate())
    }

    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        dispatch!(self, p => p.on_rtt_sample(rtt))
    }

    fn on_round(&mut self, round: RoundSample) -> Option<RoundAdjust> {
        dispatch!(self, p => p.on_round(round))
    }

    fn early_retransmit_due(&self, dup_acks: u32, last_sent: SimTime, now: SimTime) -> bool {
        dispatch!(self, p => p.early_retransmit_due(dup_acks, last_sent, now))
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        dispatch!(self, p => p.holds_recovery_on_partial_ack())
    }

    fn base_rtt(&self) -> Option<f64> {
        dispatch!(self, p => p.base_rtt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_variant_exactly_once() {
        for v in TcpVariant::ALL {
            let rows = VARIANT_REGISTRY
                .iter()
                .filter(|info| info.variant == v)
                .count();
            assert_eq!(rows, 1, "{v:?} must have exactly one registry row");
        }
        assert_eq!(VARIANT_REGISTRY.len(), TcpVariant::ALL.len());
    }

    #[test]
    fn names_round_trip_through_lookup() {
        for info in &VARIANT_REGISTRY {
            assert_eq!(variant_by_name(info.name), Some(info.variant));
            assert_eq!(variant_info(info.variant).name, info.name);
        }
        assert_eq!(variant_by_name("mosh"), None);
    }

    #[test]
    fn spellings_list_every_name_and_value_syntax() {
        let spellings = variant_spellings();
        for info in &VARIANT_REGISTRY {
            assert!(spellings.contains(info.name), "missing {}", info.name);
        }
        assert!(spellings.contains("gaimd:<alpha>,<beta>"));
    }

    #[test]
    fn only_bbr_paces_by_default() {
        for v in TcpVariant::ALL {
            let policy = Policy::for_config(&TcpConfig::paper(v));
            let paced = policy.pacing_rate().is_some();
            // BBR paces only once it has a bandwidth sample; fresh
            // policies are all unpaced so startup stays windowed.
            assert!(!paced, "{v:?} must start unpaced");
        }
    }
}
