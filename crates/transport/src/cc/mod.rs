//! Pluggable congestion-control policies.
//!
//! The transport stack is split into two layers. The **reliability
//! engine** ([`TcpSender`](crate::TcpSender), in `sender/`) owns
//! sequencing, in-flight accounting, the retransmission queue, RTO
//! timers, and dup-ACK / SACK loss *detection*. Everything that decides
//! *window sizes* — how fast to grow, how hard to cut, what to do once
//! per round trip — lives behind the [`CongestionControl`] trait, with
//! one implementation per policy in this module tree:
//!
//! * [`Tahoe`] — any loss collapses to a one-segment slow start,
//! * [`Reno`] — AIMD with fast recovery,
//! * [`NewReno`] — Reno that stays in recovery across partial ACKs,
//! * [`Sack`] — Reno window arithmetic over scoreboard-driven repair,
//! * [`Vegas`] — Brakmo–Peterson delay-based avoidance (per-RTT hooks),
//! * [`GeneralizedAimd`] — the Ott–Swanson `(alpha, beta)` family.
//!
//! The engine holds a [`Policy`] — a plain enum over the concrete
//! policies, so the per-ACK hot path is a jump table rather than a
//! `Box<dyn>` indirection. [`Policy::for_config`] is the **only** place
//! in the crate that branches on [`TcpVariant`]; the engine itself is
//! variant-agnostic and a new policy plugs in by adding an enum arm
//! here, nothing else.

use tcpburst_des::{SimDuration, SimTime};
use tcpburst_net::SeqNo;

use crate::config::{TcpConfig, TcpVariant};

mod gaimd;
mod newreno;
mod reno;
mod sack;
mod tahoe;
mod vegas;

pub use gaimd::GeneralizedAimd;
pub use newreno::NewReno;
pub use reno::Reno;
pub use sack::Sack;
pub use tahoe::Tahoe;
pub use vegas::Vegas;

/// How a policy answers a fast-retransmit loss signal (the engine's
/// dup-ACK / early-retransmit detector fired).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossResponse {
    /// Collapse to a one-segment slow start and go-back-N (Tahoe): the
    /// engine sets `cwnd = 1`, rewinds `snd_nxt`, and resends.
    Collapse {
        /// The new slow-start threshold.
        ssthresh: f64,
    },
    /// Enter fast recovery: the engine retransmits the hole and inflates
    /// to `cwnd = ssthresh + 3` (three dup ACKs mean three departures).
    FastRecovery {
        /// The new slow-start threshold.
        ssthresh: f64,
    },
}

/// A per-round-trip measurement handed to [`CongestionControl::on_round`]
/// after every cumulative ACK (the policy decides whether it closes an
/// epoch).
#[derive(Debug, Clone, Copy)]
pub struct RoundSample {
    /// The cumulative ACK that triggered the hook.
    pub ack: SeqNo,
    /// The sender's next fresh sequence number (one past the flight).
    pub snd_nxt: SeqNo,
    /// The current congestion window, in packets.
    pub cwnd: f64,
    /// True while the sender is in slow start.
    pub in_slow_start: bool,
    /// True while the sender is in fast recovery.
    pub in_fast_recovery: bool,
    /// The receiver's advertised window, in packets.
    pub advertised: f64,
}

/// What a per-RTT policy decided at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundAdjust {
    /// Epoch closed, window untouched.
    Hold,
    /// Set the congestion window to this value.
    SetCwnd(f64),
    /// Leave slow start: set the window and threshold, switch to
    /// congestion avoidance.
    ExitSlowStart {
        /// The new congestion window.
        cwnd: f64,
        /// The new slow-start threshold.
        ssthresh: f64,
    },
}

/// A congestion-control policy: pure window arithmetic, driven by the
/// reliability engine's loss-detection and timer machinery.
///
/// Hooks that *return* a window or threshold never apply it themselves —
/// the engine does, so window changes happen only at hook call sites
/// (the property-tested contract). Implementations may keep internal
/// state (Vegas's RTT accumulators) but must uphold two invariants the
/// end-of-run auditor re-checks on every scenario: any returned window
/// is at least 1 packet, any returned threshold at least 2.
pub trait CongestionControl {
    /// Per-ACK window growth outside recovery. Returns the new window,
    /// or `None` to leave it untouched (Vegas outside its slow-start
    /// growth parity). Implementations must cap at `advertised`.
    fn on_ack_cwnd(
        &mut self,
        cwnd: f64,
        ssthresh: f64,
        in_slow_start: bool,
        advertised: f64,
    ) -> Option<f64>;

    /// The engine's fast-retransmit detector fired with `flight` packets
    /// outstanding. Returns the new threshold and whether to collapse or
    /// enter fast recovery.
    fn on_loss_signal(&mut self, flight: f64) -> LossResponse;

    /// The retransmission timer expired with `flight` packets
    /// outstanding; the engine will collapse to `cwnd = 1` slow start and
    /// go back to `resume_from`. Returns the new slow-start threshold.
    fn on_rto(&mut self, flight: f64, resume_from: SeqNo) -> f64 {
        let _ = resume_from;
        (flight / 2.0).max(2.0)
    }

    /// The window to deflate to when leaving fast recovery.
    fn post_recovery_cwnd(&mut self, ssthresh: f64) -> f64 {
        ssthresh.max(1.0)
    }

    /// The threshold (and window) to cut to on an ECN echo; the engine
    /// rate-limits the cut to once per RTT.
    fn on_ecn_cwnd(&mut self, flight: f64) -> f64 {
        (flight / 2.0).max(2.0)
    }

    /// One Karn-valid RTT measurement (a never-retransmitted segment was
    /// acknowledged).
    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        let _ = rtt;
    }

    /// Called after every cumulative ACK with the current round's state.
    /// A per-RTT policy (Vegas) returns `Some` when the ACK closes its
    /// measurement epoch; `None` means "not an epoch boundary".
    fn on_round(&mut self, round: RoundSample) -> Option<RoundAdjust> {
        let _ = round;
        None
    }

    /// True if this dup ACK should trigger retransmission *before* the
    /// third duplicate (Vegas's fine-grained timer check).
    fn early_retransmit_due(&self, dup_acks: u32, last_sent: SimTime, now: SimTime) -> bool {
        let _ = (dup_acks, last_sent, now);
        false
    }

    /// True if a partial ACK keeps the sender in fast recovery (NewReno,
    /// SACK) instead of ending the episode (Reno, Vegas).
    fn holds_recovery_on_partial_ack(&self) -> bool {
        false
    }

    /// The minimum RTT this policy has observed, in seconds (Vegas).
    fn base_rtt(&self) -> Option<f64> {
        None
    }
}

/// Enum dispatch over every shipped policy.
///
/// The sender's per-ACK path goes through this enum (a match compiles to
/// a jump table) instead of a `Box<dyn CongestionControl>`, keeping the
/// hot path allocation-free and within the `bench_des --regress` gate.
#[derive(Debug, Clone)]
pub enum Policy {
    /// See [`Tahoe`].
    Tahoe(Tahoe),
    /// See [`Reno`].
    Reno(Reno),
    /// See [`NewReno`].
    NewReno(NewReno),
    /// See [`Sack`].
    Sack(Sack),
    /// See [`Vegas`].
    Vegas(Vegas),
    /// See [`GeneralizedAimd`].
    Gaimd(GeneralizedAimd),
}

impl Policy {
    /// The policy-construction site: the **only** place in the transport
    /// crate that inspects [`TcpVariant`] to choose an algorithm
    /// (`scripts/verify.sh` greps `sender/` and `cc/` to keep it that
    /// way).
    pub fn for_config(cfg: &TcpConfig) -> Policy {
        match cfg.variant {
            TcpVariant::Tahoe => Policy::Tahoe(Tahoe),
            TcpVariant::Reno => Policy::Reno(Reno),
            TcpVariant::NewReno => Policy::NewReno(NewReno),
            TcpVariant::Sack => Policy::Sack(Sack),
            TcpVariant::Vegas => Policy::Vegas(Vegas::new(cfg.vegas, cfg.max_rto)),
            TcpVariant::Gaimd => Policy::Gaimd(GeneralizedAimd::new(cfg.gaimd)),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            Policy::Tahoe($p) => $body,
            Policy::Reno($p) => $body,
            Policy::NewReno($p) => $body,
            Policy::Sack($p) => $body,
            Policy::Vegas($p) => $body,
            Policy::Gaimd($p) => $body,
        }
    };
}

impl CongestionControl for Policy {
    fn on_ack_cwnd(
        &mut self,
        cwnd: f64,
        ssthresh: f64,
        in_slow_start: bool,
        advertised: f64,
    ) -> Option<f64> {
        dispatch!(self, p => p.on_ack_cwnd(cwnd, ssthresh, in_slow_start, advertised))
    }

    fn on_loss_signal(&mut self, flight: f64) -> LossResponse {
        dispatch!(self, p => p.on_loss_signal(flight))
    }

    fn on_rto(&mut self, flight: f64, resume_from: SeqNo) -> f64 {
        dispatch!(self, p => p.on_rto(flight, resume_from))
    }

    fn post_recovery_cwnd(&mut self, ssthresh: f64) -> f64 {
        dispatch!(self, p => p.post_recovery_cwnd(ssthresh))
    }

    fn on_ecn_cwnd(&mut self, flight: f64) -> f64 {
        dispatch!(self, p => p.on_ecn_cwnd(flight))
    }

    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        dispatch!(self, p => p.on_rtt_sample(rtt))
    }

    fn on_round(&mut self, round: RoundSample) -> Option<RoundAdjust> {
        dispatch!(self, p => p.on_round(round))
    }

    fn early_retransmit_due(&self, dup_acks: u32, last_sent: SimTime, now: SimTime) -> bool {
        dispatch!(self, p => p.early_retransmit_due(dup_acks, last_sent, now))
    }

    fn holds_recovery_on_partial_ack(&self) -> bool {
        dispatch!(self, p => p.holds_recovery_on_partial_ack())
    }

    fn base_rtt(&self) -> Option<f64> {
        dispatch!(self, p => p.base_rtt())
    }
}
