//! The TCP sender: window management, loss recovery, retransmission timers.

use std::collections::{BTreeSet, VecDeque};

use tcpburst_des::{Scheduler, SimTime, TimerGeneration, TimerSlot};
use tcpburst_net::{Ecn, FlowId, NodeId, Packet, PacketKind, SackBlocks, SeqNo};
use tcpburst_stats::TimeSeries;

use crate::config::{TcpConfig, TcpVariant};
use crate::counters::TcpCounters;
use crate::event::{TimerKind, TransportEvent};
use crate::rtt::RttEstimator;
use crate::vegas::{Vegas, VegasDecision};

/// Congestion-control phase.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    SlowStart,
    CongestionAvoidance,
    /// Reno-style fast recovery; `recover` is `snd_nxt` at entry (NewReno
    /// stays in recovery until the cumulative ACK reaches it).
    FastRecovery { recover: SeqNo },
}

/// Book-keeping for one transmitted, not-yet-acknowledged segment.
#[derive(Debug, Clone, Copy)]
struct SendRecord {
    seq: SeqNo,
    last_sent: SimTime,
    retransmitted: bool,
}

/// The client-side endpoint of one TCP connection.
///
/// A sans-io state machine: the application submits segments with
/// [`on_app_packets`](TcpSender::on_app_packets) (they accumulate in an
/// unbounded send buffer, exactly the decoupling the paper's Section 3.2
/// analyzes), ACKs arrive through [`on_ack`](TcpSender::on_ack), timer
/// firings through [`on_timer`](TcpSender::on_timer), and every outbound
/// segment is pushed to the caller's `Vec<Packet>` for injection into the
/// network.
///
/// The loss-based variants follow the classic state machine: slow start
/// (`cwnd += 1` per ACK) below `ssthresh`, congestion avoidance
/// (`cwnd += 1/cwnd` per ACK) above it, fast retransmit on the third
/// duplicate ACK, and go-back-N slow-start restart on timeout with Karn's
/// rule and exponential RTO backoff. Reno and NewReno differ only in
/// partial-ACK handling inside fast recovery; Tahoe never enters fast
/// recovery. Vegas replaces the window-growth rules with its per-RTT
/// `diff`-based controller (see [`crate::VegasParams`]) and adds the
/// fine-grained early-retransmission check on the first two duplicate ACKs.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    flow: FlowId,
    local: NodeId,
    remote: NodeId,

    snd_una: SeqNo,
    snd_nxt: SeqNo,
    /// One past the last segment the application has submitted.
    app_limit: SeqNo,

    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    phase: Phase,

    /// Records for `[snd_una, highest_sent)`, front-aligned with `snd_una`.
    records: VecDeque<SendRecord>,
    rtt: RttEstimator,
    rto_timer: TimerSlot,
    vegas: Option<Vegas>,
    /// When the window was last reduced in response to an ECN echo (the
    /// response is rate-limited to once per RTT, like RFC 3168's CWR).
    last_ecn_cut: Option<SimTime>,
    /// Growth is suppressed for the ACK that carried the ECN echo.
    hold_growth: bool,
    /// SACK scoreboard: segments above `snd_una` the receiver holds.
    sacked: BTreeSet<SeqNo>,
    /// Next hole candidate during a SACK recovery episode.
    sack_rtx_next: SeqNo,

    counters: TcpCounters,
    trace: TimeSeries,
}

impl TcpSender {
    /// Creates a sender for `flow`, living on node `local`, sending to
    /// `remote`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TcpConfig::validate`]).
    pub fn new(cfg: TcpConfig, flow: FlowId, local: NodeId, remote: NodeId) -> Self {
        cfg.validate();
        let vegas = cfg
            .variant
            .is_vegas()
            .then(|| Vegas::new(cfg.vegas, cfg.max_rto));
        let mut sender = TcpSender {
            cfg,
            flow,
            local,
            remote,
            snd_una: SeqNo::ZERO,
            snd_nxt: SeqNo::ZERO,
            app_limit: SeqNo::ZERO,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            dup_acks: 0,
            phase: Phase::SlowStart,
            records: VecDeque::new(),
            rtt: RttEstimator::new(cfg.tick, cfg.min_rto, cfg.max_rto),
            rto_timer: TimerSlot::new(),
            vegas,
            last_ecn_cut: None,
            hold_growth: false,
            sacked: BTreeSet::new(),
            sack_rtx_next: SeqNo::ZERO,
            counters: TcpCounters::default(),
            trace: TimeSeries::new(),
        };
        if sender.cfg.trace_cwnd {
            sender.trace.record(SimTime::ZERO, sender.cwnd);
        }
        sender
    }

    /// The current congestion window, in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// The current slow-start threshold, in packets.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Packets in flight (sent, not yet cumulatively acknowledged).
    pub fn in_flight(&self) -> u64 {
        self.snd_una.distance_to(self.snd_nxt)
    }

    /// Segments submitted by the application but not yet transmitted.
    pub fn backlog(&self) -> u64 {
        self.snd_nxt.distance_to(self.app_limit)
    }

    /// Oldest unacknowledged sequence number.
    pub fn snd_una(&self) -> SeqNo {
        self.snd_una
    }

    /// Next fresh sequence number.
    pub fn snd_nxt(&self) -> SeqNo {
        self.snd_nxt
    }

    /// True while the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.phase == Phase::SlowStart
    }

    /// True while the sender is in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        matches!(self.phase, Phase::FastRecovery { .. })
    }

    /// Sender counters.
    pub fn counters(&self) -> TcpCounters {
        self.counters
    }

    /// The RTT estimator (for inspection).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// The `(time, cwnd)` trace; empty unless
    /// [`TcpConfig::trace_cwnd`] was set.
    pub fn cwnd_trace(&self) -> &TimeSeries {
        &self.trace
    }

    /// Vegas's minimum observed RTT in seconds, if this is a Vegas sender
    /// with at least one measurement.
    pub fn vegas_base_rtt(&self) -> Option<f64> {
        self.vegas.as_ref().and_then(|v| v.base_rtt())
    }

    /// The application submits `count` more segments to the (unbounded) send
    /// buffer; anything the window permits goes out immediately.
    pub fn on_app_packets<E: From<TransportEvent>>(
        &mut self,
        count: u64,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        self.app_limit = SeqNo(self.app_limit.0 + count);
        self.counters.app_packets_submitted += count;
        self.send_pending(sched, out);
        self.counters.peak_backlog = self.counters.peak_backlog.max(self.backlog());
    }

    /// Handles a cumulative acknowledgment. `ece` is the ACK's ECN-echo
    /// flag (ignored unless this connection negotiated ECN,
    /// [`TcpConfig::ecn`]); `sack` carries the receiver's selective
    /// acknowledgments (ignored unless the variant is
    /// [`TcpVariant::Sack`]).
    pub fn on_ack<E: From<TransportEvent>>(
        &mut self,
        ack: SeqNo,
        ece: bool,
        sack: SackBlocks,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        self.counters.acks_received += 1;
        if ece && self.cfg.ecn {
            self.on_ecn_echo(sched.now());
        }
        if self.cfg.variant.uses_sack() {
            for (s, e) in sack.iter() {
                let lo = s.max(self.snd_una);
                let hi = e.min(self.snd_nxt);
                let mut q = lo;
                while q < hi {
                    self.sacked.insert(q);
                    q = q.next();
                }
            }
        }
        if ack > self.snd_una {
            self.on_new_ack(ack, sched, out);
        } else if self.in_flight() > 0 {
            self.on_dup_ack(sched, out);
        }
    }

    /// The lowest un-SACKed hole in `[self.sack_rtx_next, upto)` that is
    /// *lost* by RFC 3517's DupThresh heuristic: at least three SACKed
    /// segments lie above it. Merely in-flight segments (no evidence above
    /// them) are left alone.
    fn next_sack_hole(&self, upto: SeqNo) -> Option<SeqNo> {
        let mut q = self.sack_rtx_next.max(self.snd_una);
        while q < upto {
            if !self.sacked.contains(&q) {
                let evidence = self.sacked.range(q..).take(3).count();
                if evidence >= 3 {
                    return Some(q);
                }
                // Not enough SACK evidence above this hole; anything higher
                // has even less, so stop scanning.
                return None;
            }
            q = q.next();
        }
        None
    }

    /// RFC 3168 response, simplified: halve the window at most once per
    /// smoothed RTT; no retransmission is needed because nothing was lost.
    fn on_ecn_echo(&mut self, now: SimTime) {
        if self.in_fast_recovery() {
            return; // already responding to loss
        }
        let holdoff = self
            .rtt
            .srtt()
            .unwrap_or(self.cfg.min_rto)
            .max(self.cfg.tick);
        if let Some(last) = self.last_ecn_cut {
            if now.saturating_since(last) < holdoff {
                return;
            }
        }
        self.last_ecn_cut = Some(now);
        self.counters.ecn_window_cuts += 1;
        self.hold_growth = true;
        self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0);
        self.set_cwnd(now, self.ssthresh);
        if self.phase == Phase::SlowStart {
            self.phase = Phase::CongestionAvoidance;
        }
    }

    fn on_new_ack<E: From<TransportEvent>>(
        &mut self,
        ack: SeqNo,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        let now = sched.now();
        let newly_acked = self.snd_una.distance_to(ack);

        // Retire send records; sample the RTT from the newest segment that
        // was transmitted exactly once (Karn's rule).
        let mut sample = None;
        while let Some(front) = self.records.front() {
            if front.seq >= ack {
                break;
            }
            let r = self.records.pop_front().expect("front exists");
            if !r.retransmitted {
                sample = Some(now.saturating_since(r.last_sent));
            }
        }
        if let Some(s) = sample {
            self.rtt.sample(s);
            self.counters.rtt_samples += 1;
            if let Some(v) = self.vegas.as_mut() {
                v.on_rtt_sample(s);
            }
        }

        self.snd_una = ack;
        if self.snd_nxt < self.snd_una {
            // A segment from before a go-back-N rewind was still in flight
            // and got acknowledged; fast-forward past it.
            self.snd_nxt = self.snd_una;
        }
        if !self.sacked.is_empty() {
            self.sacked = self.sacked.split_off(&self.snd_una);
        }

        match self.phase {
            Phase::FastRecovery { recover } => {
                let full = ack >= recover;
                match self.cfg.variant {
                    TcpVariant::Sack if !full => {
                        // Partial ACK: the cumulative point is the next lost
                        // segment (even if an earlier retransmission of it
                        // was lost too, RFC 3517 §5 step C). Repair it,
                        // deflate by the amount acknowledged, stay in
                        // recovery.
                        self.set_cwnd(now, (self.cwnd - newly_acked as f64 + 1.0).max(1.0));
                        self.transmit(self.snd_una, now, out);
                        self.sack_rtx_next = self.sack_rtx_next.max(self.snd_una.next());
                        self.arm_rto(sched);
                    }
                    TcpVariant::NewReno if !full => {
                        // Partial ACK: the next hole is lost too. Retransmit
                        // it, deflate by the amount acknowledged, stay in
                        // recovery (RFC 6582).
                        self.set_cwnd(now, (self.cwnd - newly_acked as f64 + 1.0).max(1.0));
                        self.transmit(self.snd_una, now, out);
                        self.arm_rto(sched);
                    }
                    _ => {
                        // Reno and Vegas leave recovery on any new ACK (this
                        // is precisely why a multi-loss window in Reno
                        // usually ends in a timeout); NewReno leaves on a
                        // full ACK.
                        self.set_cwnd(now, self.ssthresh.max(1.0));
                        self.phase = if self.cwnd < self.ssthresh {
                            Phase::SlowStart
                        } else {
                            Phase::CongestionAvoidance
                        };
                        self.dup_acks = 0;
                    }
                }
            }
            Phase::SlowStart | Phase::CongestionAvoidance => {
                self.dup_acks = 0;
                if self.hold_growth {
                    // RFC 3168: no window increase on the ACK that echoed
                    // congestion.
                    self.hold_growth = false;
                } else {
                    self.grow_window(now);
                }
            }
        }

        if self.in_flight() == 0 {
            // Everything acknowledged: delete the queued RTO firing in place
            // instead of letting a dead event travel through the queue.
            self.rto_timer.cancel_scheduled(sched);
        } else {
            self.arm_rto(sched);
        }
        self.send_pending(sched, out);

        // Vegas's once-per-RTT decision. This runs after `send_pending` so
        // the next epoch marker covers the full flight just released — the
        // epoch must span one whole window, not end at its first ACK.
        if let Some(v) = self.vegas.as_mut() {
            if v.epoch_closed_by(ack) {
                let in_ss = self.phase == Phase::SlowStart;
                let in_fr = matches!(self.phase, Phase::FastRecovery { .. });
                let decision = v.close_epoch(self.cwnd, in_ss, ack, self.snd_nxt);
                // During fast recovery the window is managed by the loss
                // machinery (inflation/deflation); close the epoch to keep
                // the measurement cadence but skip the adjustment.
                let decision = if in_fr { VegasDecision::Hold } else { decision };
                match decision {
                    VegasDecision::Increase => {
                        let grown = (self.cwnd + 1.0).min(f64::from(self.cfg.advertised_window));
                        self.set_cwnd(now, grown);
                    }
                    VegasDecision::Decrease => {
                        self.set_cwnd(now, (self.cwnd - 1.0).max(2.0));
                    }
                    VegasDecision::ExitSlowStart => {
                        // Brakmo: back off by one eighth and switch to the
                        // linear regime.
                        self.set_cwnd(now, (self.cwnd * 7.0 / 8.0).max(2.0));
                        self.ssthresh = 2.0;
                        if self.phase == Phase::SlowStart {
                            self.phase = Phase::CongestionAvoidance;
                        }
                    }
                    VegasDecision::Hold | VegasDecision::NoMeasurement => {}
                }
                // An increase may have opened the window.
                self.send_pending(sched, out);
            }
        }
    }

    fn on_dup_ack<E: From<TransportEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        let now = sched.now();
        self.counters.dup_acks_received += 1;
        self.dup_acks += 1;

        if self.in_fast_recovery() {
            // Window inflation: each dup ACK signals a departure.
            self.set_cwnd(now, self.cwnd + 1.0);
            if self.cfg.variant.uses_sack() {
                // The scoreboard lets us repair further holes without
                // waiting for partial ACKs.
                if let Phase::FastRecovery { recover } = self.phase {
                    if let Some(hole) = self.next_sack_hole(recover) {
                        self.transmit(hole, now, out);
                        self.sack_rtx_next = hole.next();
                        return;
                    }
                }
            }
            self.send_pending(sched, out);
            return;
        }

        let vegas_early = match (&self.vegas, self.records.front()) {
            (Some(v), Some(front)) => {
                self.dup_acks <= 2 && v.early_retransmit_due(front.last_sent, now)
            }
            _ => false,
        };
        if self.dup_acks >= 3 || vegas_early {
            self.enter_loss_recovery(sched, out);
        }
    }

    fn enter_loss_recovery<E: From<TransportEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        let now = sched.now();
        let flight = self.in_flight() as f64;
        self.counters.fast_retransmits += 1;
        match self.cfg.variant {
            TcpVariant::Tahoe => {
                // Tahoe: fast retransmit, then slow-start from scratch.
                self.ssthresh = (flight / 2.0).max(2.0);
                self.set_cwnd(now, 1.0);
                self.phase = Phase::SlowStart;
                self.dup_acks = 0;
                self.snd_nxt = self.snd_una; // go-back-N
                self.send_pending(sched, out);
            }
            TcpVariant::Reno | TcpVariant::NewReno | TcpVariant::Sack => {
                self.ssthresh = (flight / 2.0).max(2.0);
                self.phase = Phase::FastRecovery { recover: self.snd_nxt };
                self.transmit(self.snd_una, now, out);
                self.sack_rtx_next = self.snd_una.next();
                self.set_cwnd(now, self.ssthresh + 3.0);
                self.arm_rto(sched);
            }
            TcpVariant::Vegas => {
                // Vegas cuts less aggressively (to 3/4) because its loss was
                // detected early, before the queue collapsed.
                self.ssthresh = (flight * 0.75).max(2.0);
                self.phase = Phase::FastRecovery { recover: self.snd_nxt };
                self.transmit(self.snd_una, now, out);
                self.set_cwnd(now, self.ssthresh + 3.0);
                self.arm_rto(sched);
            }
        }
    }

    /// Handles a timer firing addressed to this sender.
    ///
    /// Returns `true` if the firing was live (matched the current arming)
    /// and `false` if it was stale or misrouted — callers use this to count
    /// how much dead-timer traffic still reaches dispatch (it should be
    /// nearly zero with eager cancellation; see
    /// [`TimerSlot::schedule`](tcpburst_des::TimerSlot::schedule)).
    pub fn on_timer<E: From<TransportEvent>>(
        &mut self,
        kind: TimerKind,
        generation: TimerGeneration,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) -> bool {
        if kind != TimerKind::Rto || !self.rto_timer.fires(generation) {
            return false; // stale or misrouted firing
        }
        self.rto_timer.disarm();
        if self.in_flight() == 0 {
            return true;
        }
        let now = sched.now();
        self.counters.timeouts += 1;

        // Classic timeout response: halve into ssthresh, collapse the window
        // to one segment, back the timer off, resend from the hole
        // (go-back-N, like the ns agents).
        self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0);
        self.set_cwnd(now, 1.0);
        self.phase = Phase::SlowStart;
        self.dup_acks = 0;
        self.rtt.back_off();
        self.snd_nxt = self.snd_una;
        self.sacked.clear();
        if let Some(v) = self.vegas.as_mut() {
            v.reset_epoch(self.snd_una.next());
        }
        self.send_pending(sched, out);
        // send_pending arms the timer only if something went out; make sure
        // a zombie connection still retries.
        if !self.rto_timer.is_armed() {
            self.arm_rto(sched);
        }
        true
    }

    /// The usable window: `min(⌊cwnd⌋, advertised)`.
    fn usable_window(&self) -> u64 {
        (self.cwnd.floor() as u64).min(u64::from(self.cfg.advertised_window))
    }

    fn send_pending<E: From<TransportEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        out: &mut Vec<Packet>,
    ) {
        let now = sched.now();
        let mut sent_any = false;
        while self.in_flight() < self.usable_window() && self.snd_nxt < self.app_limit {
            let seq = self.snd_nxt;
            self.transmit(seq, now, out);
            self.snd_nxt = seq.next();
            sent_any = true;
        }
        if sent_any && !self.rto_timer.is_armed() {
            self.arm_rto(sched);
        }
    }

    fn transmit(&mut self, seq: SeqNo, now: SimTime, out: &mut Vec<Packet>) {
        let idx = (seq.0 - self.snd_una.0) as usize;
        let retransmit = if idx < self.records.len() {
            let r = &mut self.records[idx];
            debug_assert_eq!(r.seq, seq, "send records out of alignment");
            r.last_sent = now;
            r.retransmitted = true;
            true
        } else {
            debug_assert_eq!(idx, self.records.len(), "non-contiguous transmission");
            self.records.push_back(SendRecord {
                seq,
                last_sent: now,
                retransmitted: false,
            });
            false
        };
        if retransmit {
            self.counters.retransmits += 1;
        }
        self.counters.data_packets_sent += 1;
        out.push(Packet {
            flow: self.flow,
            kind: PacketKind::TcpData { seq, retransmit },
            size_bytes: self.cfg.mss_bytes,
            src: self.local,
            dst: self.remote,
            created_at: now,
            ecn: if self.cfg.ecn {
                Ecn::Capable
            } else {
                Ecn::NotCapable
            },
        });
    }

    /// Per-ACK window growth for the loss-based variants; Vegas grows only
    /// in slow start, and only on its growth-parity RTTs.
    fn grow_window(&mut self, now: SimTime) {
        let adv = f64::from(self.cfg.advertised_window);
        match &self.vegas {
            Some(v) => {
                if self.phase == Phase::SlowStart && v.may_grow_in_slow_start() {
                    self.set_cwnd(now, (self.cwnd + 1.0).min(adv));
                }
            }
            None => {
                if self.cwnd < self.ssthresh {
                    self.set_cwnd(now, (self.cwnd + 1.0).min(adv));
                } else {
                    self.set_cwnd(now, (self.cwnd + 1.0 / self.cwnd).min(adv));
                }
            }
        }
        if self.phase == Phase::SlowStart && self.cwnd >= self.ssthresh {
            self.phase = Phase::CongestionAvoidance;
        }
    }

    fn set_cwnd(&mut self, now: SimTime, value: f64) {
        self.cwnd = value;
        if self.cfg.trace_cwnd {
            self.trace.record(now, value);
        }
    }

    fn arm_rto<E: From<TransportEvent>>(&mut self, sched: &mut Scheduler<E>) {
        let deadline = sched.now() + self.rtt.rto();
        let flow = self.flow;
        // Eager re-arm: the superseded firing (one per ACK on a busy
        // connection) is deleted from the queue instead of shipped through
        // dispatch as a dead event.
        self.rto_timer.schedule(sched, deadline, |generation| {
            TransportEvent {
                flow,
                kind: TimerKind::Rto,
                generation,
            }
            .into()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VegasParams;

    type Sched = Scheduler<TransportEvent>;

    fn sender(variant: TcpVariant) -> (TcpSender, Sched, Vec<Packet>) {
        let cfg = TcpConfig::paper(variant);
        (
            TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1)),
            Sched::new(),
            Vec::new(),
        )
    }

    fn data_seqs(out: &[Packet]) -> Vec<u64> {
        out.iter()
            .filter_map(|p| match p.kind {
                PacketKind::TcpData { seq, .. } => Some(seq.0),
                _ => None,
            })
            .collect()
    }

    /// Advances the scheduler clock without dispatching (timer events are
    /// delivered manually where a test needs them).
    fn advance(sched: &mut Sched, ms: u64) {
        let target = sched.now() + tcpburst_des::SimDuration::from_millis(ms);
        while sched.pop_until(target).is_some() {}
    }

    #[test]
    fn initial_window_sends_one_packet() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(10, &mut sched, &mut out);
        assert_eq!(data_seqs(&out), vec![0]);
        assert_eq!(s.in_flight(), 1);
        assert_eq!(s.backlog(), 9);
        assert!(s.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(100, &mut sched, &mut out);
        out.clear();
        // ACK the first packet: cwnd 1 -> 2, releasing two more packets.
        advance(&mut sched, 44);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(data_seqs(&out), vec![1, 2]);
        assert_eq!(s.cwnd(), 2.0);
        out.clear();
        // ACK both: cwnd -> 4.
        advance(&mut sched, 44);
        s.on_ack(SeqNo(2), false, SackBlocks::EMPTY, &mut sched, &mut out);
        s.on_ack(SeqNo(3), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.cwnd(), 4.0);
        assert_eq!(data_seqs(&out), vec![3, 4, 5, 6]);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.ssthresh = 2.0;
        s.on_app_packets(100, &mut sched, &mut out);
        out.clear();
        // First ACK: slow start (cwnd 1 < ssthresh 2) -> cwnd 2, phase CA.
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert!(!s.in_slow_start());
        assert_eq!(s.cwnd(), 2.0);
        // Two more ACKs at cwnd 2: each adds 1/cwnd.
        s.on_ack(SeqNo(2), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert!((s.cwnd() - 2.5).abs() < 1e-9);
        s.on_ack(SeqNo(3), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert!((s.cwnd() - 2.9).abs() < 1e-9);
    }

    #[test]
    fn cwnd_capped_by_advertised_window() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(1000, &mut sched, &mut out);
        let mut acked = 0u64;
        for _ in 0..100 {
            acked += 1;
            s.on_ack(SeqNo(acked), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        assert!(s.cwnd() <= 20.0);
        assert!(s.in_flight() <= 20);
    }

    #[test]
    fn third_dup_ack_triggers_fast_retransmit() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.ssthresh = 2.0; // get to CA quickly
        s.on_app_packets(100, &mut sched, &mut out);
        // Grow the window a bit.
        for a in 1..=8u64 {
            s.on_ack(SeqNo(a), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        let flight_before = s.in_flight();
        assert!(flight_before >= 4, "need at least 4 in flight");
        out.clear();
        // Packet 8 lost: three dup ACKs for 8.
        s.on_ack(SeqNo(8), false, SackBlocks::EMPTY, &mut sched, &mut out);
        s.on_ack(SeqNo(8), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert!(!s.in_fast_recovery());
        s.on_ack(SeqNo(8), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert!(s.in_fast_recovery());
        // The hole was retransmitted.
        let retx: Vec<_> = out
            .iter()
            .filter(|p| matches!(p.kind, PacketKind::TcpData { retransmit: true, .. }))
            .collect();
        assert_eq!(retx.len(), 1);
        assert!(matches!(retx[0].kind, PacketKind::TcpData { seq: SeqNo(8), .. }));
        assert_eq!(s.counters().fast_retransmits, 1);
        assert_eq!(s.ssthresh(), (flight_before as f64 / 2.0).max(2.0));
        assert_eq!(s.cwnd(), s.ssthresh() + 3.0);
    }

    #[test]
    fn fast_recovery_inflates_and_deflates() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.ssthresh = 2.0;
        s.on_app_packets(100, &mut sched, &mut out);
        for a in 1..=8u64 {
            s.on_ack(SeqNo(a), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        for _ in 0..3 {
            s.on_ack(SeqNo(8), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        let after_retx = s.cwnd();
        // Additional dup ACKs inflate.
        s.on_ack(SeqNo(8), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.cwnd(), after_retx + 1.0);
        // The retransmission is finally acknowledged: deflate to ssthresh.
        let recovery_ack = s.snd_nxt();
        s.on_ack(recovery_ack, false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert!(!s.in_fast_recovery());
        assert_eq!(s.cwnd(), s.ssthresh());
        assert_eq!(s.counters().timeouts, 0);
    }

    #[test]
    fn reno_partial_ack_exits_recovery_newreno_stays() {
        for (variant, expect_still_in_fr) in
            [(TcpVariant::Reno, false), (TcpVariant::NewReno, true)]
        {
            let (mut s, mut sched, mut out) = sender(variant);
            s.ssthresh = 2.0;
            s.on_app_packets(100, &mut sched, &mut out);
            for a in 1..=8u64 {
                s.on_ack(SeqNo(a), false, SackBlocks::EMPTY, &mut sched, &mut out);
            }
            for _ in 0..3 {
                s.on_ack(SeqNo(8), false, SackBlocks::EMPTY, &mut sched, &mut out);
            }
            assert!(s.in_fast_recovery());
            out.clear();
            // Partial ACK: one packet past the hole, but well short of
            // everything outstanding at entry.
            let partial = SeqNo(9);
            assert!(partial < s.snd_nxt());
            s.on_ack(partial, false, SackBlocks::EMPTY, &mut sched, &mut out);
            assert_eq!(
                s.in_fast_recovery(),
                expect_still_in_fr,
                "variant {variant:?}"
            );
            if expect_still_in_fr {
                // NewReno retransmits the next hole immediately.
                assert!(data_seqs(&out).contains(&9), "NewReno must plug the hole");
            }
        }
    }

    #[test]
    fn tahoe_fast_retransmit_collapses_to_slow_start() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Tahoe);
        s.ssthresh = 2.0;
        s.on_app_packets(100, &mut sched, &mut out);
        for a in 1..=8u64 {
            s.on_ack(SeqNo(a), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        out.clear();
        for _ in 0..3 {
            s.on_ack(SeqNo(8), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        assert!(!s.in_fast_recovery(), "Tahoe has no fast recovery");
        assert!(s.in_slow_start());
        assert_eq!(s.cwnd(), 1.0);
        // Go-back-N: exactly one packet (the hole) goes out at cwnd 1.
        assert_eq!(data_seqs(&out), vec![8]);
        assert_eq!(s.counters().fast_retransmits, 1);
    }

    #[test]
    fn timeout_collapses_window_and_backs_off() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(10, &mut sched, &mut out);
        out.clear();
        // Let the RTO fire (no ACKs at all).
        let (t, ev) = sched.pop().expect("RTO scheduled");
        assert_eq!(ev.kind, TimerKind::Rto);
        assert_eq!(t, SimTime::ZERO + s.rtt().rto()); // armed at send time
        s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
        assert_eq!(s.counters().timeouts, 1);
        assert_eq!(s.cwnd(), 1.0);
        assert!(s.in_slow_start());
        // The first packet is retransmitted, marked as such.
        assert!(matches!(
            out[0].kind,
            PacketKind::TcpData { seq: SeqNo(0), retransmit: true }
        ));
        assert_eq!(s.counters().retransmits, 1);
        assert_eq!(s.rtt().backoff_level(), 1);
    }

    #[test]
    fn stale_rto_firing_is_ignored() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(5, &mut sched, &mut out);
        let (_, stale) = sched.pop().expect("first RTO");
        // An ACK re-arms the timer, invalidating the popped firing.
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        out.clear();
        s.on_timer(stale.kind, stale.generation, &mut sched, &mut out);
        assert_eq!(s.counters().timeouts, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn rto_disarmed_when_everything_acked() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(1, &mut sched, &mut out);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.in_flight(), 0);
        // Eager cancellation deleted the queued firing in place: nothing
        // dead left to travel through the queue.
        assert!(sched.pop().is_none(), "RTO event should be cancelled in place");
        assert_eq!(sched.cancelled_in_place(), 1);
        assert_eq!(s.counters().timeouts, 0);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(2, &mut sched, &mut out);
        // Timeout retransmits packet 0.
        let (_, ev) = sched.pop().unwrap();
        s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
        // The (late) ACK for it must not feed the estimator.
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.counters().rtt_samples, 0);
        // A fresh, never-retransmitted packet does.
        s.on_ack(SeqNo(2), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.counters().rtt_samples, 1);
    }

    #[test]
    fn backlog_waits_for_window_not_app() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(50, &mut sched, &mut out);
        assert_eq!(s.backlog(), 49);
        assert_eq!(s.counters().peak_backlog, 49);
        assert_eq!(s.counters().app_packets_submitted, 50);
        // As the window opens, the backlog drains in bursts — the paper's
        // slow-start burst mechanism.
        out.clear();
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(s.backlog(), 47);
    }

    #[test]
    fn cwnd_trace_records_changes() {
        let mut cfg = TcpConfig::paper(TcpVariant::Reno);
        cfg.trace_cwnd = true;
        let mut s = TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1));
        let mut sched = Sched::new();
        let mut out = Vec::new();
        s.on_app_packets(10, &mut sched, &mut out);
        advance(&mut sched, 44);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        let trace = s.cwnd_trace();
        assert!(trace.len() >= 2);
        assert_eq!(trace.last().unwrap().1, 2.0);
    }

    #[test]
    fn vegas_slow_start_grows_every_other_rtt() {
        let mut cfg = TcpConfig::paper(TcpVariant::Vegas);
        cfg.vegas = VegasParams {
            alpha: 1.0,
            beta: 3.0,
            gamma: 1000.0, // never exit slow start in this test
        };
        let mut s = TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1));
        let mut sched = Sched::new();
        let mut out = Vec::new();
        s.on_app_packets(1000, &mut sched, &mut out);
        assert_eq!(s.cwnd(), 1.0);
        // Epoch 1 (grow parity): ACK for packet 0 -> cwnd 2.
        advance(&mut sched, 44);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.cwnd(), 2.0);
        // Epoch 2 (hold parity): ACKs do not grow the window.
        advance(&mut sched, 44);
        s.on_ack(SeqNo(2), false, SackBlocks::EMPTY, &mut sched, &mut out);
        s.on_ack(SeqNo(3), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.cwnd(), 2.0);
        // Epoch 3 (grow parity again): cwnd 2 -> 4.
        advance(&mut sched, 44);
        s.on_ack(SeqNo(4), false, SackBlocks::EMPTY, &mut sched, &mut out);
        s.on_ack(SeqNo(5), false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.cwnd(), 4.0);
    }

    #[test]
    fn vegas_exits_slow_start_on_queue_buildup() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Vegas);
        s.on_app_packets(1000, &mut sched, &mut out);
        // Epoch 1 at base RTT 44 ms.
        advance(&mut sched, 44);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        let before = s.cwnd();
        assert!(s.in_slow_start());
        // Epoch 2: RTT has tripled — a lot of queueing. diff > gamma.
        advance(&mut sched, 132);
        let target = s.snd_nxt();
        while s.snd_una() < target {
            let a = s.snd_una().next();
            s.on_ack(a, false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        assert!(!s.in_slow_start(), "Vegas should have left slow start");
        assert!(s.cwnd() <= before + 2.0, "no exponential blow-up");
    }

    /// Acknowledges the oldest outstanding packet exactly `delay_ms` after
    /// its (re)transmission, advancing the simulated clock as needed.
    fn ack_after(s: &mut TcpSender, sched: &mut Sched, out: &mut Vec<Packet>, delay_ms: u64) {
        let sent = s.records.front().expect("something in flight").last_sent;
        let target = sent + tcpburst_des::SimDuration::from_millis(delay_ms);
        while sched.pop_until(target).is_some() {}
        let a = s.snd_una().next();
        s.on_ack(a, false, SackBlocks::EMPTY, sched, out);
    }

    #[test]
    fn vegas_decreases_when_queue_exceeds_beta() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Vegas);
        // Start in congestion avoidance with a roomy window.
        s.phase = Phase::CongestionAvoidance;
        s.ssthresh = 2.0;
        s.cwnd = 10.0;
        s.on_app_packets(100_000, &mut sched, &mut out);
        // Several epochs at the 44 ms base RTT: diff ≈ 0, Vegas probes up.
        for _ in 0..50 {
            ack_after(&mut s, &mut sched, &mut out, 44);
        }
        let uncongested = s.cwnd();
        assert!(uncongested > 10.0, "diff < alpha should grow the window");
        // The path RTT doubles (persistent queueing): diff = cwnd/2, so
        // Vegas must shed one packet per RTT until cwnd/2 <= beta = 3.
        for _ in 0..300 {
            ack_after(&mut s, &mut sched, &mut out, 88);
        }
        assert!(
            s.cwnd() <= 6.5,
            "cwnd {} should settle into the [alpha, beta] band (≤ 2·beta)",
            s.cwnd()
        );
        assert!(s.cwnd() >= 2.0, "Vegas never collapses below 2");
        assert_eq!(s.counters().timeouts, 0, "no losses were injected");
    }

    #[test]
    fn duplicate_acks_with_nothing_outstanding_are_ignored() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(1, &mut sched, &mut out);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        for _ in 0..5 {
            s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        assert_eq!(s.counters().dup_acks_received, 0);
        assert!(!s.in_fast_recovery());
    }

    #[test]
    fn ecn_echo_halves_window_once_per_rtt() {
        let mut cfg = TcpConfig::paper(TcpVariant::Reno);
        cfg.ecn = true;
        let mut s = TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1));
        let mut sched = Sched::new();
        let mut out = Vec::new();
        s.ssthresh = 2.0;
        s.on_app_packets(100, &mut sched, &mut out);
        for a in 1..=8u64 {
            s.on_ack(SeqNo(a), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        let before = s.cwnd();
        let flight = s.in_flight() as f64;
        // First ECE: cut to half the flight.
        s.on_ack(SeqNo(9), true, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.counters().ecn_window_cuts, 1);
        assert!(s.cwnd() <= (flight / 2.0).max(2.0) + 1e-9);
        assert!(s.cwnd() < before);
        // A second ECE within the same RTT is ignored (once-per-RTT rule).
        let after_first = s.cwnd();
        s.on_ack(SeqNo(10), true, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.counters().ecn_window_cuts, 1);
        assert!(s.cwnd() >= after_first - 1e-9);
        // No retransmissions happened: nothing was lost.
        assert_eq!(s.counters().retransmits, 0);
        assert_eq!(s.counters().timeouts, 0);
    }

    #[test]
    fn ecn_echo_ignored_when_not_negotiated() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(10, &mut sched, &mut out);
        s.on_ack(SeqNo(1), true, SackBlocks::EMPTY, &mut sched, &mut out);
        assert_eq!(s.counters().ecn_window_cuts, 0);
    }

    #[test]
    fn ecn_sender_marks_segments_capable() {
        let mut cfg = TcpConfig::paper(TcpVariant::Reno);
        cfg.ecn = true;
        let mut s = TcpSender::new(cfg, FlowId(0), NodeId(0), NodeId(1));
        let mut sched = Sched::new();
        let mut out = Vec::new();
        s.on_app_packets(1, &mut sched, &mut out);
        assert_eq!(out[0].ecn, Ecn::Capable);
    }

    /// Two holes in one window: Reno exits recovery on the partial ACK and
    /// (with no further dup ACKs) stalls into a timeout; SACK repairs both
    /// holes within the same recovery episode.
    #[test]
    fn sack_repairs_multiple_holes_in_one_recovery() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Sack);
        // Open the window wide enough for a 14-packet flight.
        s.phase = Phase::CongestionAvoidance;
        s.ssthresh = 2.0;
        s.cwnd = 14.0;
        s.on_app_packets(100, &mut sched, &mut out);
        assert_eq!(s.snd_nxt(), SeqNo(14));
        out.clear();
        // Packets 8 and 10 are lost; 9 and 11..=13 arrive and generate
        // dup ACKs for 8 with growing SACK information. ACKs 1..8 arrive
        // first.
        for a in 1..=8u64 {
            s.on_ack(SeqNo(a), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        out.clear();
        let sack1 = SackBlocks::from_ranges(&[(SeqNo(9), SeqNo(10))]);
        let sack2 = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(12)), (SeqNo(9), SeqNo(10))]);
        let sack3 = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(13)), (SeqNo(9), SeqNo(10))]);
        let sack4 = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(14)), (SeqNo(9), SeqNo(10))]);
        s.on_ack(SeqNo(8), false, sack1, &mut sched, &mut out);
        s.on_ack(SeqNo(8), false, sack2, &mut sched, &mut out);
        s.on_ack(SeqNo(8), false, sack3, &mut sched, &mut out);
        assert!(s.in_fast_recovery());
        // Hole 8 was fast-retransmitted.
        assert_eq!(data_seqs(&out), vec![8]);
        out.clear();
        // The 4th dup ACK: the scoreboard now shows 3 SACKed segments above
        // hole 10 (11, 12, 13), so RFC 3517 declares it lost and SACK
        // repairs it without waiting for the partial ACK.
        s.on_ack(SeqNo(8), false, sack4, &mut sched, &mut out);
        assert_eq!(data_seqs(&out), vec![10]);
        out.clear();
        // Partial ACK up to 10 (hole 8 repaired): stay in recovery.
        s.on_ack(SeqNo(10), false, sack4, &mut sched, &mut out);
        assert!(s.in_fast_recovery(), "SACK stays in recovery on partial ACK");
        // Full ACK ends the episode with no timeout.
        let recover = s.snd_nxt();
        s.on_ack(recover, false, SackBlocks::EMPTY, &mut sched, &mut out);
        assert!(!s.in_fast_recovery());
        assert_eq!(s.counters().timeouts, 0);
        assert_eq!(s.counters().fast_retransmits, 1);
    }

    /// Holes without three SACKed segments above them are treated as
    /// in-flight, not lost (RFC 3517 DupThresh): no spurious retransmission.
    #[test]
    fn sack_requires_dupthresh_evidence_before_repairing() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Sack);
        s.phase = Phase::CongestionAvoidance;
        s.ssthresh = 2.0;
        s.cwnd = 14.0;
        s.on_app_packets(100, &mut sched, &mut out);
        for a in 1..=8u64 {
            s.on_ack(SeqNo(a), false, SackBlocks::EMPTY, &mut sched, &mut out);
        }
        out.clear();
        // Only packets 9 and 11 SACKed: hole 10 has one segment above it.
        let weak = SackBlocks::from_ranges(&[(SeqNo(11), SeqNo(12)), (SeqNo(9), SeqNo(10))]);
        for _ in 0..3 {
            s.on_ack(SeqNo(8), false, weak, &mut sched, &mut out);
        }
        assert!(s.in_fast_recovery());
        assert_eq!(data_seqs(&out), vec![8], "only the cumulative hole goes out");
        out.clear();
        // Further dup ACKs with the same weak evidence must not touch 10.
        s.on_ack(SeqNo(8), false, weak, &mut sched, &mut out);
        assert!(!data_seqs(&out).contains(&10));
    }

    #[test]
    fn sack_scoreboard_is_cleared_by_timeout_and_cumack() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Sack);
        s.on_app_packets(10, &mut sched, &mut out);
        let sack = SackBlocks::from_ranges(&[(SeqNo(0), SeqNo(1))]);
        // A dup ack at snd_una=0 carrying SACK for packet 0 is nonsense
        // (below the hole), but ranges intersected with [snd_una, snd_nxt)
        // keep the scoreboard consistent; a cumulative ACK retires entries.
        s.on_ack(SeqNo(1), false, sack, &mut sched, &mut out);
        assert_eq!(s.snd_una(), SeqNo(1));
        // Timeout clears whatever remains and goes back N.
        let (_, ev) = sched.pop().expect("rto armed");
        s.on_timer(ev.kind, ev.generation, &mut sched, &mut out);
        assert_eq!(s.counters().timeouts, 1);
        assert!(s.in_slow_start());
    }

    #[test]
    fn counters_track_sends_and_acks() {
        let (mut s, mut sched, mut out) = sender(TcpVariant::Reno);
        s.on_app_packets(3, &mut sched, &mut out);
        s.on_ack(SeqNo(1), false, SackBlocks::EMPTY, &mut sched, &mut out);
        s.on_ack(SeqNo(2), false, SackBlocks::EMPTY, &mut sched, &mut out);
        s.on_ack(SeqNo(3), false, SackBlocks::EMPTY, &mut sched, &mut out);
        let c = s.counters();
        assert_eq!(c.data_packets_sent, 3);
        assert_eq!(c.acks_received, 3);
        assert_eq!(c.retransmits, 0);
        assert!(c.rtt_samples >= 1);
    }
}

