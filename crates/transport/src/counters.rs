//! Per-connection event counters — the raw material for the paper's
//! Figures 3, 4 and 13.

/// Sender-side counters for one TCP connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpCounters {
    /// Segments handed to the network, including retransmissions.
    pub data_packets_sent: u64,
    /// Retransmitted segments (timeout- or dupack-triggered).
    pub retransmits: u64,
    /// Retransmission-timer expiries (the numerator of Figure 13).
    pub timeouts: u64,
    /// Duplicate-ACK-triggered retransmissions: Reno/NewReno fast
    /// retransmits and Vegas's early dup-ACK retransmissions (the
    /// denominator of Figure 13).
    pub fast_retransmits: u64,
    /// ACK packets processed.
    pub acks_received: u64,
    /// Duplicate ACKs observed.
    pub dup_acks_received: u64,
    /// RTT measurements taken (Karn-filtered).
    pub rtt_samples: u64,
    /// Packets the application submitted to the send buffer.
    pub app_packets_submitted: u64,
    /// Largest send-buffer backlog seen, in packets (the paper's Section 3.2
    /// slow-start-burst mechanism feeds on this backlog).
    pub peak_backlog: u64,
    /// Window reductions triggered by ECN echoes (no packet was lost).
    pub ecn_window_cuts: u64,
}

impl TcpCounters {
    /// Ratio of timeouts to duplicate-ACK-triggered retransmissions —
    /// Figure 13's y-axis. Uses a pseudocount of 1 in the denominator so a
    /// recovery-free run is finite.
    pub fn timeout_to_dupack_ratio(&self) -> f64 {
        self.timeouts as f64 / (self.fast_retransmits.max(1)) as f64
    }

    /// Merges another connection's counters (for per-scenario aggregation).
    pub fn merge(&mut self, other: &TcpCounters) {
        self.data_packets_sent += other.data_packets_sent;
        self.retransmits += other.retransmits;
        self.timeouts += other.timeouts;
        self.fast_retransmits += other.fast_retransmits;
        self.acks_received += other.acks_received;
        self.dup_acks_received += other.dup_acks_received;
        self.rtt_samples += other.rtt_samples;
        self.app_packets_submitted += other.app_packets_submitted;
        self.peak_backlog = self.peak_backlog.max(other.peak_backlog);
        self.ecn_window_cuts += other.ecn_window_cuts;
    }
}

/// Receiver-side counters for one TCP connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverCounters {
    /// In-order segments delivered to the application (goodput — the paper's
    /// "packets successfully transmitted", Figure 3).
    pub delivered: u64,
    /// Segments that arrived out of order and were buffered.
    pub out_of_order: u64,
    /// Segments that were duplicates of already-delivered data.
    pub duplicates: u64,
    /// ACK packets emitted.
    pub acks_sent: u64,
    /// ACKs emitted by the delayed-ACK timer rather than by data arrival.
    pub delack_timer_acks: u64,
}

impl ReceiverCounters {
    /// Merges another receiver's counters.
    pub fn merge(&mut self, other: &ReceiverCounters) {
        self.delivered += other.delivered;
        self.out_of_order += other.out_of_order;
        self.duplicates += other.duplicates;
        self.acks_sent += other.acks_sent;
        self.delack_timer_acks += other.delack_timer_acks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_denominator() {
        let c = TcpCounters {
            timeouts: 5,
            fast_retransmits: 0,
            ..TcpCounters::default()
        };
        assert_eq!(c.timeout_to_dupack_ratio(), 5.0);
    }

    #[test]
    fn ratio_divides_when_possible() {
        let c = TcpCounters {
            timeouts: 6,
            fast_retransmits: 3,
            ..TcpCounters::default()
        };
        assert_eq!(c.timeout_to_dupack_ratio(), 2.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = TcpCounters {
            data_packets_sent: 10,
            peak_backlog: 4,
            ..TcpCounters::default()
        };
        let b = TcpCounters {
            data_packets_sent: 5,
            peak_backlog: 9,
            timeouts: 1,
            ..TcpCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.data_packets_sent, 15);
        assert_eq!(a.peak_backlog, 9);
        assert_eq!(a.timeouts, 1);

        let mut r = ReceiverCounters {
            delivered: 7,
            ..ReceiverCounters::default()
        };
        r.merge(&ReceiverCounters {
            delivered: 3,
            acks_sent: 2,
            ..ReceiverCounters::default()
        });
        assert_eq!(r.delivered, 10);
        assert_eq!(r.acks_sent, 2);
    }
}
