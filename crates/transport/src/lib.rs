//! Transport protocols for the `tcpburst` workspace.
//!
//! Implements, from the algorithm descriptions in the literature, every
//! transport the paper evaluates:
//!
//! * [`TcpSender`] / [`TcpReceiver`] — a packet-granularity TCP with
//!   slow start, congestion avoidance, fast retransmit and fast recovery,
//!   Jacobson/Karels RTO estimation with Karn's rule and exponential
//!   backoff, go-back-N timeout recovery, and optional delayed ACKs;
//! * [`TcpVariant`] — the congestion-control flavours: **Tahoe** (loss ⇒
//!   slow start), **Reno** (fast recovery, the paper's workhorse),
//!   **NewReno** (partial-ACK retransmission, RFC 6582 semantics),
//!   **Vegas** (Brakmo–Peterson congestion *avoidance* via the
//!   expected-vs-actual rate difference, with α/β/γ thresholds), **SACK**
//!   (RFC 2018/3517 scoreboard repair), **GAIMD** (the Ott–Swanson
//!   generalized-AIMD `(alpha, beta)` family), **Cubic** (RFC 8312),
//!   **HSTCP** (RFC 3649 with a Westwood-style bandwidth-estimate loss
//!   response) and **BBR** (a startup/drain/probe-bw model over the
//!   engine's delivery-rate samples, with paced sending);
//! * [`cc`] — the congestion-control policy layer: the
//!   [`CongestionControl`] trait, one implementation per variant, the
//!   [`Policy`] enum-dispatch wrapper the sender carries, and the
//!   [`VARIANT_REGISTRY`] that maps spelled names to variants for CLIs;
//! * [`UdpSender`] / [`UdpSink`] — the no-feedback baseline.
//!
//! The TCP side is built as two layers: the **reliability engine** in
//! `sender/` (sequencing, retransmission queue, timers, loss detection,
//! BBR-style delivery-rate sampling, and the paced-send clock) and the
//! **policy layer** in [`cc`] (window arithmetic over [`AckSample`] /
//! [`LossContext`]). Adding a variant means writing one
//! `CongestionControl` impl, registering it at the single construction
//! site [`Policy::for_config`], and adding its registry row.
//!
//! The senders are *sans-io* state machines: they consume ACKs and timer
//! firings, and push fully formed [`Packet`](tcpburst_net::Packet)s into a
//! caller-supplied buffer. The driving loop (in `tcpburst-core`) injects
//! those packets into the network and routes [`TransportEvent`] timers back.
//!
//! Like the *ns* agents the paper used, sequence numbers count whole
//! segments, and the application writes segments into an unbounded send
//! buffer that the congestion window drains — the decoupling the paper's
//! Section 3.2 identifies as the source of slow-start bursts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
mod config;
mod counters;
mod event;
mod receiver;
mod rtt;
mod sender;
mod udp;

pub use cc::{
    variant_by_name, variant_info, variant_spellings, AckSample, Bbr, CongestionControl, Cubic,
    GeneralizedAimd, Hstcp, LossContext, LossResponse, Policy, RateSample, RoundAdjust,
    RoundSample, VariantInfo, VARIANT_REGISTRY,
};
pub use config::{GaimdParams, TcpConfig, TcpVariant, VegasParams};
pub use counters::{ReceiverCounters, TcpCounters};
pub use event::{TimerKind, TransportEvent};
pub use receiver::TcpReceiver;
pub use rtt::RttEstimator;
pub use sender::TcpSender;
pub use udp::{UdpSender, UdpSink};
