//! Transport protocols for the `tcpburst` workspace.
//!
//! Implements, from the algorithm descriptions in the literature, every
//! transport the paper evaluates:
//!
//! * [`TcpSender`] / [`TcpReceiver`] — a packet-granularity TCP with
//!   slow start, congestion avoidance, fast retransmit and fast recovery,
//!   Jacobson/Karels RTO estimation with Karn's rule and exponential
//!   backoff, go-back-N timeout recovery, and optional delayed ACKs;
//! * [`TcpVariant`] — the congestion-control flavours: **Tahoe** (loss ⇒
//!   slow start), **Reno** (fast recovery, the paper's workhorse),
//!   **NewReno** (partial-ACK retransmission, RFC 6582 semantics) and
//!   **Vegas** (Brakmo–Peterson congestion *avoidance* via the
//!   expected-vs-actual rate difference, with α/β/γ thresholds);
//! * [`UdpSender`] / [`UdpSink`] — the no-feedback baseline.
//!
//! The senders are *sans-io* state machines: they consume ACKs and timer
//! firings, and push fully formed [`Packet`](tcpburst_net::Packet)s into a
//! caller-supplied buffer. The driving loop (in `tcpburst-core`) injects
//! those packets into the network and routes [`TransportEvent`] timers back.
//!
//! Like the *ns* agents the paper used, sequence numbers count whole
//! segments, and the application writes segments into an unbounded send
//! buffer that the congestion window drains — the decoupling the paper's
//! Section 3.2 identifies as the source of slow-start bursts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod counters;
mod event;
mod receiver;
mod rtt;
mod sender;
mod udp;
mod vegas;

pub use config::{TcpConfig, TcpVariant, VegasParams};
pub use counters::{ReceiverCounters, TcpCounters};
pub use event::{TimerKind, TransportEvent};
pub use receiver::TcpReceiver;
pub use rtt::RttEstimator;
pub use sender::TcpSender;
pub use udp::{UdpSender, UdpSink};
