//! Transport configuration.

use tcpburst_des::SimDuration;

/// Which congestion-control algorithm a [`TcpSender`](crate::TcpSender)
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpVariant {
    /// Jacobson '88: any loss signal re-enters slow start from `cwnd = 1`.
    Tahoe,
    /// Tahoe plus fast retransmit / fast recovery — the paper's main
    /// subject. A partial ACK ends recovery (which is exactly why multi-loss
    /// windows in Reno tend to end in a timeout, the synchronizing event the
    /// paper highlights).
    Reno,
    /// Reno with RFC 6582 partial-ACK handling: recovery persists until the
    /// whole pre-loss window is acknowledged. Implemented as a baseline.
    NewReno,
    /// Brakmo–Peterson '95 congestion avoidance: keep
    /// `α ≤ (expected − actual)·baseRTT ≤ β` packets queued at the
    /// bottleneck; double the window only every other RTT in slow start.
    Vegas,
    /// Reno with selective acknowledgments (RFC 2018 receiver, simplified
    /// RFC 3517 recovery): multiple holes in one window are repaired within
    /// one recovery episode instead of stalling into a timeout.
    Sack,
    /// Ott–Swanson generalized AIMD: window increase per RTT proportional
    /// to `cwnd^alpha`, multiplicative decrease proportional to
    /// `cwnd^beta`. The exponents live in [`TcpConfig::gaimd`] (they are
    /// `f64`s, so they cannot ride in this `Eq + Hash` enum);
    /// `alpha = 0, beta = 1` reduces exactly to Reno.
    Gaimd,
    /// RFC 8312 Cubic: window growth as a cubic of the time since the
    /// last cut, with the TCP-friendly region and fast convergence.
    Cubic,
    /// RFC 3649 HighSpeed TCP with a Westwood-style bandwidth-estimate
    /// loss response (cut to measured `bandwidth × min-RTT`).
    Hstcp,
    /// BBR-lite: startup/drain/probe-bw over a windowed max-bandwidth ×
    /// min-RTT path model, with paced sending.
    Bbr,
}

impl TcpVariant {
    /// Every variant, in registry/display order.
    pub const ALL: [TcpVariant; 9] = [
        TcpVariant::Tahoe,
        TcpVariant::Reno,
        TcpVariant::NewReno,
        TcpVariant::Vegas,
        TcpVariant::Sack,
        TcpVariant::Gaimd,
        TcpVariant::Cubic,
        TcpVariant::Hstcp,
        TcpVariant::Bbr,
    ];

    /// True for Vegas (which carries extra per-RTT state).
    pub fn is_vegas(self) -> bool {
        matches!(self, TcpVariant::Vegas)
    }

    /// True if the receiver should attach SACK blocks and the sender keeps
    /// a scoreboard.
    pub fn uses_sack(self) -> bool {
        matches!(self, TcpVariant::Sack)
    }
}

/// Vegas congestion-avoidance thresholds, in packets of induced queueing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VegasParams {
    /// Linear-increase threshold: grow if fewer than `alpha` packets are
    /// queued at the gateway. The paper uses 1.
    pub alpha: f64,
    /// Linear-decrease threshold: shrink if more than `beta` packets are
    /// queued. The paper uses 3.
    pub beta: f64,
    /// Slow-start exit threshold. The paper (and Brakmo) use 1.
    pub gamma: f64,
}

impl Default for VegasParams {
    fn default() -> Self {
        VegasParams {
            alpha: 1.0,
            beta: 3.0,
            gamma: 1.0,
        }
    }
}

/// Exponents of the Ott–Swanson generalized AIMD family
/// ([`TcpVariant::Gaimd`]).
///
/// Congestion avoidance grows the window by `cwnd^alpha / cwnd` per ACK
/// (one `cwnd^alpha` increase per round trip) and a loss event sets
/// `ssthresh = flight − flight^beta / 2`. The defaults `(0, 1)` make the
/// family coincide with Reno bit-for-bit: `x^0` is exactly `1.0` and
/// `x − x^1/2` is exactly `x/2` in IEEE-754 arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaimdParams {
    /// Increase exponent, in `[0, 1)`. `0` is Reno's one-packet-per-RTT.
    pub alpha: f64,
    /// Decrease exponent, in `(0, 1]`. `1` is Reno's halving.
    pub beta: f64,
}

impl Default for GaimdParams {
    fn default() -> Self {
        GaimdParams {
            alpha: 0.0,
            beta: 1.0,
        }
    }
}

/// Parameters of one TCP connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Congestion-control flavour.
    pub variant: TcpVariant,
    /// Data segment size in bytes (the paper's clients send 1500-byte
    /// packets).
    pub mss_bytes: u32,
    /// Pure-ACK size in bytes.
    pub ack_bytes: u32,
    /// Receiver's advertised (flow-control) window, in packets. Static, per
    /// the paper: 20.
    pub advertised_window: u32,
    /// Whether the receiver delays ACKs (ack every second segment or on a
    /// timer) — the paper's "Reno/DelayAck" configuration.
    pub delayed_ack: bool,
    /// Delayed-ACK flush timer.
    pub delack_delay: SimDuration,
    /// Coarse retransmission-timer granularity (BSD heartbeat); the RTO is
    /// rounded up to a multiple of this.
    pub tick: SimDuration,
    /// Lower bound on the RTO.
    pub min_rto: SimDuration,
    /// Upper bound on the (backed-off) RTO.
    pub max_rto: SimDuration,
    /// Initial congestion window, in packets.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, in packets. Effectively unbounded by
    /// default so the first slow start runs until loss (window growth is
    /// still capped by `advertised_window`).
    pub initial_ssthresh: f64,
    /// Vegas thresholds (ignored by the loss-based variants).
    pub vegas: VegasParams,
    /// Generalized-AIMD exponents (ignored unless the variant is
    /// [`TcpVariant::Gaimd`]).
    pub gaimd: GaimdParams,
    /// Record a `(time, cwnd)` trace on every window change (Figures 5–12).
    pub trace_cwnd: bool,
    /// Negotiate ECN: data segments are sent ECN-capable and the sender
    /// halves its window (at most once per RTT) on an ECN echo instead of
    /// waiting for a drop. Requires a marking gateway to have any effect.
    pub ecn: bool,
}

impl TcpConfig {
    /// The paper's connection parameters for the given variant.
    pub fn paper(variant: TcpVariant) -> Self {
        TcpConfig {
            variant,
            mss_bytes: 1500,
            ack_bytes: 40,
            advertised_window: 20,
            delayed_ack: false,
            delack_delay: SimDuration::from_millis(100),
            tick: SimDuration::from_millis(100),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(64),
            initial_cwnd: 1.0,
            initial_ssthresh: 1e9,
            vegas: VegasParams::default(),
            gaimd: GaimdParams::default(),
            trace_cwnd: false,
            ecn: false,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent values (zero windows, inverted RTO bounds,
    /// non-positive Vegas thresholds).
    pub fn validate(&self) {
        assert!(self.mss_bytes > 0, "MSS must be positive");
        assert!(self.ack_bytes > 0, "ACK size must be positive");
        assert!(self.advertised_window > 0, "advertised window must be positive");
        assert!(self.initial_cwnd >= 1.0, "initial cwnd must be at least 1");
        assert!(self.initial_ssthresh >= 2.0, "initial ssthresh must be at least 2");
        assert!(!self.tick.is_zero(), "timer tick must be positive");
        assert!(self.min_rto <= self.max_rto, "min_rto must not exceed max_rto");
        assert!(
            self.vegas.alpha > 0.0 && self.vegas.alpha <= self.vegas.beta,
            "Vegas thresholds must satisfy 0 < alpha <= beta"
        );
        assert!(self.vegas.gamma > 0.0, "Vegas gamma must be positive");
        assert!(
            (0.0..1.0).contains(&self.gaimd.alpha),
            "GAIMD alpha must lie in [0, 1)"
        );
        assert!(
            self.gaimd.beta > 0.0 && self.gaimd.beta <= 1.0,
            "GAIMD beta must lie in (0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid_for_all_variants() {
        for v in TcpVariant::ALL {
            let cfg = TcpConfig::paper(v);
            cfg.validate();
            assert_eq!(cfg.mss_bytes, 1500);
            assert_eq!(cfg.advertised_window, 20);
        }
    }

    #[test]
    fn vegas_defaults_match_paper() {
        let p = VegasParams::default();
        assert_eq!((p.alpha, p.beta, p.gamma), (1.0, 3.0, 1.0));
        assert!(TcpVariant::Vegas.is_vegas());
        assert!(!TcpVariant::Reno.is_vegas());
    }

    #[test]
    #[should_panic(expected = "alpha <= beta")]
    fn inverted_vegas_thresholds_panic() {
        let mut cfg = TcpConfig::paper(TcpVariant::Vegas);
        cfg.vegas = VegasParams {
            alpha: 5.0,
            beta: 1.0,
            gamma: 1.0,
        };
        cfg.validate();
    }

    #[test]
    fn gaimd_defaults_reduce_to_reno() {
        let p = GaimdParams::default();
        assert_eq!((p.alpha, p.beta), (0.0, 1.0));
        assert!(!TcpVariant::Gaimd.is_vegas());
        assert!(!TcpVariant::Gaimd.uses_sack());
    }

    #[test]
    #[should_panic(expected = "GAIMD alpha")]
    fn gaimd_alpha_out_of_range_panics() {
        let mut cfg = TcpConfig::paper(TcpVariant::Gaimd);
        cfg.gaimd.alpha = 1.0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "GAIMD beta")]
    fn gaimd_zero_beta_panics() {
        let mut cfg = TcpConfig::paper(TcpVariant::Gaimd);
        cfg.gaimd.beta = 0.0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "advertised window")]
    fn zero_window_panics() {
        let mut cfg = TcpConfig::paper(TcpVariant::Reno);
        cfg.advertised_window = 0;
        cfg.validate();
    }
}
