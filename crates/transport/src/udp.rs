//! UDP: the transparent baseline.
//!
//! The paper uses UDP to show that, absent flow and congestion control, the
//! aggregate traffic entering the gateway is statistically indistinguishable
//! from the generating (Poisson) process. The sender forwards every
//! application packet immediately; the sink just counts deliveries.

use tcpburst_des::SimTime;
use tcpburst_net::{Ecn, FlowId, NodeId, Packet, PacketKind};

/// The client-side UDP endpoint: every application packet goes straight to
/// the network.
///
/// # Example
///
/// ```
/// use tcpburst_des::SimTime;
/// use tcpburst_net::{FlowId, NodeId};
/// use tcpburst_transport::UdpSender;
///
/// let mut udp = UdpSender::new(FlowId(0), NodeId(0), NodeId(9), 1000);
/// let pkt = udp.on_app_packet(SimTime::from_millis(3));
/// assert_eq!(pkt.size_bytes, 1000);
/// assert_eq!(udp.packets_sent(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UdpSender {
    flow: FlowId,
    local: NodeId,
    remote: NodeId,
    payload_bytes: u32,
    packets_sent: u64,
}

impl UdpSender {
    /// Creates a sender for `flow` from `local` to `remote` with fixed-size
    /// datagrams.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes` is zero.
    pub fn new(flow: FlowId, local: NodeId, remote: NodeId, payload_bytes: u32) -> Self {
        assert!(payload_bytes > 0, "payload size must be positive");
        UdpSender {
            flow,
            local,
            remote,
            payload_bytes,
            packets_sent: 0,
        }
    }

    /// The application hands over one packet; it is forwarded unmodified.
    pub fn on_app_packet(&mut self, now: SimTime) -> Packet {
        self.packets_sent += 1;
        Packet {
            flow: self.flow,
            kind: PacketKind::Datagram,
            size_bytes: self.payload_bytes,
            src: self.local,
            dst: self.remote,
            created_at: now,
            ecn: Ecn::default(),
        }
    }

    /// Datagrams sent so far.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }
}

/// The server-side UDP endpoint: counts deliveries and total latency.
#[derive(Debug, Clone, Default)]
pub struct UdpSink {
    delivered: u64,
    total_delay_secs: f64,
}

impl UdpSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        UdpSink::default()
    }

    /// Records the delivery of `pkt` at `now`.
    pub fn on_packet(&mut self, pkt: &Packet, now: SimTime) {
        self.delivered += 1;
        self.total_delay_secs += now.saturating_since(pkt.created_at).as_secs_f64();
    }

    /// Datagrams delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Mean one-way delay of delivered datagrams, in seconds (zero when
    /// nothing arrived).
    pub fn mean_delay_secs(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_delay_secs / self.delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpburst_des::SimDuration;

    #[test]
    fn sender_stamps_addressing_and_kind() {
        let mut u = UdpSender::new(FlowId(4), NodeId(2), NodeId(7), 1000);
        let p = u.on_app_packet(SimTime::from_millis(5));
        assert_eq!(p.flow, FlowId(4));
        assert_eq!(p.src, NodeId(2));
        assert_eq!(p.dst, NodeId(7));
        assert_eq!(p.kind, PacketKind::Datagram);
        assert_eq!(p.created_at, SimTime::from_millis(5));
    }

    #[test]
    fn sink_tracks_count_and_delay() {
        let mut u = UdpSender::new(FlowId(0), NodeId(0), NodeId(1), 1000);
        let mut sink = UdpSink::new();
        let sent = SimTime::from_millis(10);
        let p = u.on_app_packet(sent);
        sink.on_packet(&p, sent + SimDuration::from_millis(30));
        assert_eq!(sink.delivered(), 1);
        assert!((sink.mean_delay_secs() - 0.030).abs() < 1e-9);
    }

    #[test]
    fn empty_sink_has_zero_delay() {
        assert_eq!(UdpSink::new().mean_delay_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "payload size")]
    fn zero_payload_panics() {
        UdpSender::new(FlowId(0), NodeId(0), NodeId(1), 0);
    }
}
