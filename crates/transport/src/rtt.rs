//! Round-trip-time estimation and retransmission timeouts.

use tcpburst_des::SimDuration;

/// Jacobson/Karels RTT estimator with exponential timer backoff.
///
/// Maintains the smoothed RTT and mean deviation with the classic gains
/// (`1/8` and `1/4`), computes `RTO = srtt + 4·rttvar` rounded **up** to the
/// coarse timer tick, clamps it to `[min_rto, max_rto]`, and doubles it per
/// backoff (Karn's algorithm: callers must not feed samples from
/// retransmitted segments; a fresh sample resets the backoff).
///
/// # Example
///
/// ```
/// use tcpburst_des::SimDuration;
/// use tcpburst_transport::RttEstimator;
///
/// let mut est = RttEstimator::new(
///     SimDuration::from_millis(100), // tick
///     SimDuration::from_millis(200), // min RTO
///     SimDuration::from_secs(64),    // max RTO
/// );
/// est.sample(SimDuration::from_millis(44));
/// let rto = est.rto();
/// assert!(rto >= SimDuration::from_millis(200));
/// est.back_off();
/// assert_eq!(est.rto(), rto * 2);
/// ```
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    tick: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff: u32,
}

/// Cap on consecutive doublings (RTO also saturates at `max_rto`).
const MAX_BACKOFF: u32 = 6;

impl RttEstimator {
    /// Creates an estimator with the given timer granularity and RTO bounds.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero or `min_rto > max_rto`.
    pub fn new(tick: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(!tick.is_zero(), "tick must be positive");
        assert!(min_rto <= max_rto, "min_rto must not exceed max_rto");
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            tick,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Feeds one RTT measurement (from a segment transmitted exactly once —
    /// Karn's rule is the caller's responsibility) and resets the backoff.
    pub fn sample(&mut self, rtt: SimDuration) {
        let m = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(m);
                self.rttvar = m / 2.0;
            }
            Some(srtt) => {
                let err = m - srtt;
                self.srtt = Some(srtt + err / 8.0);
                self.rttvar += (err.abs() - self.rttvar) / 4.0;
            }
        }
        self.backoff = 0;
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// The current mean deviation estimate.
    pub fn rttvar(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.rttvar)
    }

    /// The current retransmission timeout, including backoff.
    ///
    /// Before any sample, returns the tick-rounded, clamped `min_rto`
    /// equivalent of a conservative initial estimate (3 s, per RFC 1122),
    /// backed off as usual.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => 3.0,
            Some(srtt) => srtt + 4.0 * self.rttvar,
        };
        let mut rto = SimDuration::from_secs_f64(base);
        // Round up to the coarse-timer granularity, like a BSD heartbeat.
        let rem = rto % self.tick;
        if !rem.is_zero() {
            rto = rto - rem + self.tick;
        }
        rto = rto.max(self.min_rto);
        rto = rto.saturating_mul(1u64 << self.backoff.min(MAX_BACKOFF));
        rto.min(self.max_rto)
    }

    /// Doubles the timeout (called on each expiry), saturating.
    pub fn back_off(&mut self) {
        self.backoff = (self.backoff + 1).min(MAX_BACKOFF);
    }

    /// Current number of consecutive backoffs.
    pub fn backoff_level(&self) -> u32 {
        self.backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            SimDuration::from_secs(64),
        )
    }

    #[test]
    fn initial_rto_is_conservative() {
        let e = est();
        assert_eq!(e.rto(), SimDuration::from_secs(3));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = est();
        e.sample(SimDuration::from_millis(80));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(80)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(40));
        // 80 + 4*40 = 240 ms, rounded up to 300 ms tick boundary.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_samples_converge_and_floor_applies() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(44));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_secs_f64() - 0.044).abs() < 0.001);
        // Variance decays toward 0; RTO hits the 200 ms floor.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn variance_grows_on_fluctuation() {
        let mut e = est();
        for _ in 0..20 {
            e.sample(SimDuration::from_millis(44));
        }
        let quiet = e.rto();
        for i in 0..20 {
            e.sample(SimDuration::from_millis(if i % 2 == 0 { 20 } else { 180 }));
        }
        assert!(e.rto() > quiet);
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.sample(SimDuration::from_millis(44));
        let base = e.rto();
        e.back_off();
        assert_eq!(e.rto(), base * 2);
        e.back_off();
        assert_eq!(e.rto(), base * 4);
        assert_eq!(e.backoff_level(), 2);
        e.sample(SimDuration::from_millis(44));
        assert_eq!(e.backoff_level(), 0);
        assert!(e.rto() <= base * 2);
    }

    #[test]
    fn rto_saturates_at_max() {
        let mut e = RttEstimator::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            SimDuration::from_secs(2),
        );
        e.sample(SimDuration::from_millis(500));
        for _ in 0..10 {
            e.back_off();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(2));
    }

    #[test]
    fn rto_is_multiple_of_tick_before_clamping() {
        let mut e = est();
        e.sample(SimDuration::from_millis(123));
        let rto = e.rto();
        assert!(
            (rto % SimDuration::from_millis(100)).is_zero(),
            "rto {rto} not tick-aligned"
        );
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_panics() {
        RttEstimator::new(
            SimDuration::ZERO,
            SimDuration::from_millis(200),
            SimDuration::from_secs(64),
        );
    }
}
