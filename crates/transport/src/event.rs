//! Timer events the transport layer schedules on the simulation loop.

use tcpburst_des::TimerGeneration;
use tcpburst_net::FlowId;

/// Which logical timer fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// The sender's retransmission timeout.
    Rto,
    /// The receiver's delayed-ACK flush timer.
    DelAck,
    /// The sender's paced-send timer: the policy's
    /// [`pacing_rate`](crate::CongestionControl::pacing_rate) put the next
    /// transmission in the future. Never scheduled for unpaced policies.
    Pace,
}

/// A transport timer firing, addressed by flow.
///
/// The driving loop embeds these in its event enum via `From` and routes
/// them to the right [`TcpSender`](crate::TcpSender) (for [`TimerKind::Rto`]
/// and [`TimerKind::Pace`]) or [`TcpReceiver`](crate::TcpReceiver) (for
/// [`TimerKind::DelAck`]).
/// Stale firings (the timer was re-armed or cancelled since this event was
/// scheduled) are filtered inside the handlers via the generation token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportEvent {
    /// Which connection the timer belongs to.
    pub flow: FlowId,
    /// Which timer fired.
    pub kind: TimerKind,
    /// Arming generation, checked against the owning `TimerSlot`.
    pub generation: TimerGeneration,
}
