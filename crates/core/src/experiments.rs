//! One generator per table and figure of the paper's evaluation.
//!
//! Figures 2, 3, 4 and 13 are different projections of the *same* sweep
//! (protocol × number-of-clients), so the heavy lifting is done once by
//! [`Sweep::run`] and each figure renders its own column:
//!
//! | Paper item | Generator |
//! |------------|-----------|
//! | Table 1    | [`table1`] |
//! | Figure 1   | [`topology_ascii`] |
//! | Figure 2   | [`Sweep::fig2_cov_table`] |
//! | Figure 3   | [`Sweep::fig3_throughput_table`] |
//! | Figure 4   | [`Sweep::fig4_loss_table`] |
//! | Figures 5–12 | [`cwnd_evolution`] |
//! | Figure 13  | [`Sweep::fig13_timeout_ratio_table`] |

use std::fmt::Write as _;

use tcpburst_des::{SimDuration, SimTime};
use tcpburst_stats::TimeSeries;

use tcpburst_transport::GaimdParams;

use crate::config::{PaperParams, Protocol, ScenarioConfig};
use crate::plot::{render_line_chart, ChartOptions, Series};
use crate::report::ScenarioReport;
use crate::scenario::Scenario;

/// One completed run within a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Protocol configuration of this run.
    pub protocol: Protocol,
    /// Number of clients of this run.
    pub clients: usize,
    /// The run's results.
    pub report: ScenarioReport,
}

/// A protocol × client-count grid of scenario runs — the shared substrate of
/// Figures 2, 3, 4 and 13.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// All runs, in (protocol-major, clients-minor) order.
    pub cells: Vec<SweepCell>,
    protocols: Vec<Protocol>,
    clients: Vec<usize>,
}

/// The canonical (protocol-major, clients-minor) flattening of the sweep
/// grid, shared by [`Sweep`] and the sweep supervisor so journalled and
/// freshly-run points index identically.
pub(crate) fn canonical_grid(
    protocols: &[Protocol],
    clients: &[usize],
) -> Vec<(Protocol, usize)> {
    protocols
        .iter()
        .flat_map(|&p| clients.iter().map(move |&n| (p, n)))
        .collect()
}

impl Sweep {
    /// Runs every (protocol, clients) combination for `duration` simulated
    /// seconds with the given master seed, fanned across all available
    /// cores (see [`Sweep::run_with_jobs`]).
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    pub fn run(
        protocols: &[Protocol],
        clients: &[usize],
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        Sweep::run_with_jobs(protocols, clients, duration, seed, 0)
    }

    /// Like [`Sweep::run`], with an explicit worker-thread count.
    ///
    /// Every grid point is an independent simulation with its own derived
    /// RNG streams, so the grid is executed by
    /// [`run_indexed`](crate::parallel::run_indexed) and reassembled in
    /// canonical (protocol-major, clients-minor) order: the result is
    /// **bit-identical for every `jobs` value**. `jobs == 0` means
    /// available parallelism; `jobs == 1` takes the exact serial path.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    pub fn run_with_jobs(
        protocols: &[Protocol],
        clients: &[usize],
        duration: SimDuration,
        seed: u64,
        jobs: usize,
    ) -> Self {
        let base = crate::builder::ScenarioBuilder::paper()
            .instrumentation(|i| i.duration(duration).seed(seed))
            .finish();
        Sweep::run_with_jobs_from(&base, protocols, clients, jobs)
    }

    /// Like [`Sweep::run_with_jobs`], but every grid point inherits all the
    /// non-axis knobs (duration, seed, workload, impairments, …) from
    /// `base` — typically assembled with the staged
    /// [`ScenarioBuilder`](crate::ScenarioBuilder). Only the protocol and
    /// client count vary across the grid.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    pub fn run_with_jobs_from(
        base: &ScenarioConfig,
        protocols: &[Protocol],
        clients: &[usize],
        jobs: usize,
    ) -> Self {
        assert!(!protocols.is_empty(), "need at least one protocol");
        assert!(!clients.is_empty(), "need at least one client count");
        let grid = canonical_grid(protocols, clients);
        let cells = crate::parallel::run_indexed(jobs, grid.len(), |i| {
            let (p, n) = grid[i];
            let mut cfg = *base;
            cfg.num_clients = n;
            cfg.apply_protocol(p);
            SweepCell {
                protocol: p,
                clients: n,
                report: Scenario::run(&cfg),
            }
        });
        Sweep::from_cells(cells, protocols.to_vec(), clients.to_vec())
    }

    /// Like [`Sweep::run_with_jobs_from`], resolving every grid point
    /// against a content-addressed result store first: stored points load
    /// instead of simulating, fresh points are written back, and the
    /// assembled sweep is bit-identical either way (the store persists the
    /// exact report bits). Configurations [`crate::store::cacheable`]
    /// refuses bypass the store per point.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty, or if a point fails its audit or
    /// panics (mirroring [`Sweep::run_with_jobs_from`]'s contract; use the
    /// [sweep supervisor](crate::SweepSupervisor) for typed failures).
    pub fn run_cached_from(
        base: &ScenarioConfig,
        protocols: &[Protocol],
        clients: &[usize],
        jobs: usize,
        store: &crate::store::ResultStore,
    ) -> Self {
        assert!(!protocols.is_empty(), "need at least one protocol");
        assert!(!clients.is_empty(), "need at least one client count");
        let grid = canonical_grid(protocols, clients);
        let cells = crate::parallel::run_indexed(jobs, grid.len(), |i| {
            let (p, n) = grid[i];
            let mut cfg = *base;
            cfg.num_clients = n;
            cfg.apply_protocol(p);
            let report = if crate::store::cacheable(&cfg) {
                match crate::store::run_point_cached(
                    &cfg,
                    &crate::supervise::RunBudget::UNLIMITED,
                    Some(store),
                ) {
                    Ok(report) => report,
                    Err(error) => panic!("sweep point failed: {error}"),
                }
            } else {
                Scenario::run(&cfg)
            };
            SweepCell {
                protocol: p,
                clients: n,
                report,
            }
        });
        Sweep::from_cells(cells, protocols.to_vec(), clients.to_vec())
    }

    /// Assembles a sweep from already-computed cells (typically from the
    /// supervisor, where failed grid points leave holes). Cells must be in
    /// canonical (protocol-major, clients-minor) order; missing points
    /// render as `-` in every figure table.
    pub fn from_cells(
        cells: Vec<SweepCell>,
        protocols: Vec<Protocol>,
        clients: Vec<usize>,
    ) -> Self {
        Sweep {
            cells,
            protocols,
            clients,
        }
    }

    /// The protocols on this sweep's axis.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// The client counts on this sweep's axis.
    pub fn client_counts(&self) -> &[usize] {
        &self.clients
    }

    /// The report for one grid point, if it was run.
    pub fn report(&self, protocol: Protocol, clients: usize) -> Option<&ScenarioReport> {
        self.cells
            .iter()
            .find(|c| c.protocol == protocol && c.clients == clients)
            .map(|c| &c.report)
    }

    fn render<F: Fn(&ScenarioReport) -> f64>(
        &self,
        title: &str,
        value_header: &str,
        include_poisson_reference: bool,
        value: F,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {title}");
        let _ = write!(out, "{:>8}", "clients");
        if include_poisson_reference {
            let _ = write!(out, " {:>12}", "Poisson");
        }
        for p in &self.protocols {
            let _ = write!(out, " {:>13}", p.label());
        }
        let _ = writeln!(out, "   ({value_header})");
        for &n in &self.clients {
            let _ = write!(out, "{n:>8}");
            if include_poisson_reference {
                if let Some(r) = self.cells.iter().find(|c| c.clients == n) {
                    let _ = write!(out, " {:>12.4}", r.report.poisson_cov);
                }
            }
            for &p in &self.protocols {
                match self.report(p, n) {
                    Some(r) => {
                        let _ = write!(out, " {:>13.4}", value(r));
                    }
                    None => {
                        let _ = write!(out, " {:>13}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Figure 2: c.o.v. of aggregated traffic at the gateway vs number of
    /// clients, with the analytic Poisson reference column.
    pub fn fig2_cov_table(&self) -> String {
        self.render(
            "Figure 2: coefficient of variation of the aggregated traffic",
            "c.o.v. per round-trip propagation delay",
            true,
            |r| r.cov,
        )
    }

    /// Figure 3: total packets successfully transmitted vs number of
    /// clients.
    pub fn fig3_throughput_table(&self) -> String {
        self.render(
            "Figure 3: throughput of the aggregated traffic",
            "packets delivered to the server application",
            false,
            |r| r.delivered_packets as f64,
        )
    }

    /// Figure 4: packet-loss percentage at the gateway vs number of clients.
    pub fn fig4_loss_table(&self) -> String {
        self.render(
            "Figure 4: packet loss percentage of the aggregated traffic",
            "% of packets offered to the bottleneck queue that were dropped",
            false,
            |r| r.loss_percent,
        )
    }

    /// Figure 13: ratio of timeouts to duplicate-ACK (fast) retransmissions.
    pub fn fig13_timeout_ratio_table(&self) -> String {
        self.render(
            "Figure 13: ratio of timeouts to duplicate-ACK retransmissions",
            "timeouts / fast retransmits",
            false,
            |r| r.timeout_dupack_ratio(),
        )
    }

    fn svg<F: Fn(&ScenarioReport) -> f64>(
        &self,
        title: &str,
        y_label: &str,
        log_y: bool,
        include_poisson: bool,
        value: F,
    ) -> String {
        let mut series = Vec::new();
        if include_poisson {
            let pts: Vec<(f64, f64)> = self
                .clients
                .iter()
                .filter_map(|&n| {
                    self.cells
                        .iter()
                        .find(|c| c.clients == n)
                        .map(|c| (n as f64, c.report.poisson_cov))
                })
                .collect();
            series.push(Series::new("Poisson", pts));
        }
        for &p in &self.protocols {
            let pts: Vec<(f64, f64)> = self
                .clients
                .iter()
                .filter_map(|&n| self.report(p, n).map(|r| (n as f64, value(r))))
                .collect();
            series.push(Series::new(p.label(), pts));
        }
        render_line_chart(
            &series,
            &ChartOptions {
                title: title.to_string(),
                x_label: "number of clients".to_string(),
                y_label: y_label.to_string(),
                log_y,
                ..ChartOptions::default()
            },
        )
    }

    /// Figure 2 as an SVG line chart.
    pub fn fig2_cov_svg(&self) -> String {
        self.svg(
            "Figure 2: c.o.v. of the aggregated TCP traffic",
            "coefficient of variation",
            false,
            true,
            |r| r.cov,
        )
    }

    /// Figure 3 as an SVG line chart.
    pub fn fig3_throughput_svg(&self) -> String {
        self.svg(
            "Figure 3: throughput of the aggregated TCP traffic",
            "packets successfully transmitted",
            false,
            false,
            |r| r.delivered_packets as f64,
        )
    }

    /// Figure 4 as an SVG line chart.
    pub fn fig4_loss_svg(&self) -> String {
        self.svg(
            "Figure 4: packet loss percentage",
            "packet loss (%)",
            false,
            false,
            |r| r.loss_percent,
        )
    }

    /// Figure 13 as an SVG line chart (log y, like the paper).
    pub fn fig13_timeout_ratio_svg(&self) -> String {
        self.svg(
            "Figure 13: ratio of timeouts to duplicate ACKs",
            "timeouts / fast retransmits",
            true,
            false,
            |r| r.timeout_dupack_ratio().max(1e-3), // log axis floor
        )
    }

    /// All four figures as CSV (`figure,protocol,clients,value`) for
    /// external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,protocol,clients,value\n");
        for c in &self.cells {
            let _ = writeln!(out, "fig2_cov,Poisson,{},{}", c.clients, c.report.poisson_cov);
            let _ = writeln!(
                out,
                "fig2_cov,{},{},{}",
                c.protocol.label(),
                c.clients,
                c.report.cov
            );
            let _ = writeln!(
                out,
                "fig3_throughput,{},{},{}",
                c.protocol.label(),
                c.clients,
                c.report.delivered_packets
            );
            let _ = writeln!(
                out,
                "fig4_loss,{},{},{}",
                c.protocol.label(),
                c.clients,
                c.report.loss_percent
            );
            let _ = writeln!(
                out,
                "fig13_ratio,{},{},{}",
                c.protocol.label(),
                c.clients,
                c.report.timeout_dupack_ratio()
            );
        }
        out
    }
}

/// A generalized-AIMD exponent sweep: the paper's burstiness probe
/// (Figure 2's c.o.v.) replayed across the Ott–Swanson `alpha` axis at a
/// fixed `beta`, to show how softening the additive increase smooths the
/// aggregated traffic. `alpha = 0` with `beta = 1` is exactly Reno, so the
/// first column of the default sweep doubles as a regression anchor.
#[derive(Debug, Clone)]
pub struct GaimdAlphaSweep {
    /// `(alpha, report)` per grid point, in `alphas` order.
    pub cells: Vec<(f64, ScenarioReport)>,
    /// The fixed multiplicative-decrease exponent.
    pub beta: f64,
    /// Client count shared by every point.
    pub clients: usize,
}

impl GaimdAlphaSweep {
    /// Runs one GAIMD scenario per `alpha`, all other knobs (clients,
    /// duration, seed, workload, …) inherited from `base`. Points are
    /// fanned across `jobs` workers with the same bit-identical reassembly
    /// as [`Sweep::run_with_jobs_from`].
    ///
    /// # Panics
    ///
    /// Panics if `alphas` is empty or any exponent is out of range
    /// (`alpha` in `[0, 1)`, `beta` in `(0, 1]`).
    pub fn run_with_jobs_from(
        base: &ScenarioConfig,
        alphas: &[f64],
        beta: f64,
        jobs: usize,
    ) -> Self {
        assert!(!alphas.is_empty(), "need at least one alpha");
        let cells = crate::parallel::run_indexed(jobs, alphas.len(), |i| {
            let mut cfg = *base;
            cfg.apply_protocol(Protocol::Gaimd);
            cfg.gaimd = GaimdParams { alpha: alphas[i], beta };
            (alphas[i], Scenario::run(&cfg))
        });
        GaimdAlphaSweep {
            cells,
            beta,
            clients: base.num_clients,
        }
    }

    /// The c.o.v.-vs-`alpha` table, one row per exponent, with the Poisson
    /// reference and the loss/timeout columns that explain *why* the
    /// burstiness moves.
    pub fn cov_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# GAIMD burstiness vs additive-increase exponent (beta = {}, {} clients)",
            self.beta, self.clients
        );
        let _ = writeln!(
            out,
            "{:>8} {:>13} {:>13} {:>13} {:>13} {:>13}",
            "alpha", "c.o.v.", "Poisson", "ratio", "loss %", "timeout ratio"
        );
        for (alpha, r) in &self.cells {
            let _ = writeln!(
                out,
                "{:>8.3} {:>13.4} {:>13.4} {:>13.2} {:>13.2} {:>13.4}",
                alpha,
                r.cov,
                r.poisson_cov,
                r.cov_ratio(),
                r.loss_percent,
                r.timeout_dupack_ratio()
            );
        }
        out
    }
}

/// One client's congestion-window trajectory from a
/// [`cwnd_evolution`] run.
#[derive(Debug, Clone)]
pub struct CwndTrace {
    /// Client index (0-based; the paper labels clients from 1).
    pub client: usize,
    /// The raw event-driven `(time, cwnd)` trace.
    pub trace: TimeSeries,
}

/// The data behind one of the paper's Figures 5–12.
#[derive(Debug, Clone)]
pub struct CwndFigure {
    /// Protocol configuration used.
    pub protocol: Protocol,
    /// Total number of clients in the run.
    pub num_clients: usize,
    /// Traces of the selected clients.
    pub traces: Vec<CwndTrace>,
    /// Run length.
    pub duration: SimDuration,
}

impl CwndFigure {
    /// Renders the traces sampled on the paper's 0.1 s grid as aligned
    /// columns (`t`, then one cwnd column per traced client).
    pub fn table(&self) -> String {
        let step = SimDuration::from_millis(100);
        let end = SimTime::ZERO + self.duration;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {} congestion-window evolution, {} clients (time unit = 0.1 s)",
            self.protocol.label(),
            self.num_clients
        );
        let _ = write!(out, "{:>8}", "t");
        for t in &self.traces {
            let _ = write!(out, " {:>10}", format!("client{}", t.client + 1));
        }
        let _ = writeln!(out);
        let sampled: Vec<Vec<f64>> = self
            .traces
            .iter()
            .map(|t| t.trace.sample_hold(step, end))
            .collect();
        let n = sampled.first().map_or(0, Vec::len);
        for i in 0..n {
            let _ = write!(out, "{i:>8}");
            for s in &sampled {
                let _ = write!(out, " {:>10.2}", s[i]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl CwndFigure {
    /// The figure as an SVG line chart (cwnd vs the paper's 0.1 s units).
    pub fn svg(&self) -> String {
        let step = SimDuration::from_millis(100);
        let end = SimTime::ZERO + self.duration;
        let series: Vec<Series> = self
            .traces
            .iter()
            .map(|t| {
                let pts = t
                    .trace
                    .sample_hold(step, end)
                    .into_iter()
                    .enumerate()
                    .map(|(i, w)| (i as f64, w))
                    .collect();
                Series::new(format!("client {}", t.client + 1), pts)
            })
            .collect();
        render_line_chart(
            &series,
            &ChartOptions {
                title: format!(
                    "{} congestion window, {} clients",
                    self.protocol.label(),
                    self.num_clients
                ),
                x_label: "time (x 0.1 seconds)".to_string(),
                y_label: "congestion window (packets)".to_string(),
                log_y: false,
                ..ChartOptions::default()
            },
        )
    }
}

/// When (in the paper's 0.1 s time units) a congestion-window trace
/// *stabilizes*: the instant of its last downward move, after which the
/// window only holds or grows for the rest of the run. Returns `None` when
/// the trace keeps cutting into the final 5% of the run — the paper's
/// "never stabilizes" verdict for ≥39 clients (Figure 8) — and `Some(0)`
/// for a trace that never cut at all.
///
/// # Panics
///
/// Panics if `duration` is zero.
pub fn stabilization_time_units(trace: &TimeSeries, duration: SimDuration) -> Option<u64> {
    assert!(!duration.is_zero(), "duration must be positive");
    let step = SimDuration::from_millis(100);
    let samples = trace.sample_hold(step, SimTime::ZERO + duration);
    let last_cut = samples
        .windows(2)
        .rposition(|w| w[1] < w[0])
        .map(|i| i as u64 + 1);
    match last_cut {
        None => Some(0),
        Some(t) if t as usize >= samples.len().saturating_sub(samples.len() / 20) => None,
        Some(t) => Some(t),
    }
}

/// Runs one cwnd-evolution experiment (Figures 5–9 use Reno with 20, 30,
/// 38, 39 and 60 clients; Figures 10–12 use Vegas with 20, 30 and 60).
///
/// `traced_clients` selects which client indices to report (the paper shows
/// clients 1, 10 and 20 for N = 20, etc.). Out-of-range indices are
/// ignored.
pub fn cwnd_evolution(
    protocol: Protocol,
    num_clients: usize,
    traced_clients: &[usize],
    duration: SimDuration,
    seed: u64,
) -> CwndFigure {
    let base = crate::builder::ScenarioBuilder::paper()
        .instrumentation(|i| i.duration(duration).seed(seed))
        .finish();
    cwnd_evolution_from(&base, protocol, num_clients, traced_clients)
}

/// Like [`cwnd_evolution`], but inheriting every non-axis knob (duration,
/// seed, workload, impairments, …) from `base`.
pub fn cwnd_evolution_from(
    base: &ScenarioConfig,
    protocol: Protocol,
    num_clients: usize,
    traced_clients: &[usize],
) -> CwndFigure {
    let mut cfg = *base;
    cfg.num_clients = num_clients;
    cfg.apply_protocol(protocol);
    cfg.trace_cwnd = true;
    let duration = cfg.duration;
    let report = Scenario::run(&cfg);
    let traces = traced_clients
        .iter()
        .filter(|&&c| c < num_clients)
        .map(|&c| CwndTrace {
            client: c,
            trace: report.flows[c]
                .cwnd_trace
                .clone()
                .expect("tracing was enabled"),
        })
        .collect();
    CwndFigure {
        protocol,
        num_clients,
        traces,
        duration,
    }
}

/// The paper's client selections for the cwnd figures: representative low,
/// middle and high client indices (the paper shows clients 1, 10, 20 of 20,
/// and clients 1, 30, 60 of 60).
pub fn paper_traced_clients(num_clients: usize) -> Vec<usize> {
    match num_clients {
        0 => Vec::new(),
        1 => vec![0],
        2 => vec![0, 1],
        n => vec![0, n / 2 - 1, n - 1],
    }
}

/// Renders the reconstructed Table 1.
pub fn table1() -> String {
    let p = PaperParams::default();
    let mut out = String::new();
    let _ = writeln!(out, "# Table 1: simulation parameters (reconstructed)");
    let rows: Vec<(String, String)> = vec![
        (
            "client link bandwidth (mu_c)".into(),
            format!("{} Mbps", p.client_bandwidth_bps / 1_000_000),
        ),
        (
            "client link delay (tau_c)".into(),
            format!("{} ms", p.client_delay.as_secs_f64() * 1e3),
        ),
        (
            "bottleneck link bandwidth (mu_s)".into(),
            format!("{} Mbps", p.bottleneck_bandwidth_bps / 1_000_000),
        ),
        (
            "bottleneck link delay (tau_s)".into(),
            format!("{} ms", p.bottleneck_delay.as_secs_f64() * 1e3),
        ),
        (
            "TCP max advertised window".into(),
            format!("{} packets", p.advertised_window),
        ),
        (
            "gateway buffer size (B)".into(),
            format!("{} packets", p.gateway_buffer_pkts),
        ),
        ("packet size".into(), format!("{} bytes", p.packet_bytes)),
        (
            "average packet intergeneration time (1/lambda)".into(),
            format!("{} s", p.mean_intergeneration_secs),
        ),
        ("total test time".into(), format!("{} s", p.total_test_secs)),
        (
            "RED (min_th, max_th)".into(),
            format!("({}, {}) packets", p.red_min_th, p.red_max_th),
        ),
        (
            "TCP Vegas (alpha, beta, gamma)".into(),
            "(1, 3, 1)".into(),
        ),
    ];
    for (k, v) in rows {
        let _ = writeln!(out, "{k:<48} {v}");
    }
    out
}

/// An ASCII rendition of Figure 1's network model.
pub fn topology_ascii() -> String {
    let p = PaperParams::default();
    format!(
        r#"# Figure 1: network model
  client 1  --\
  client 2  ---\   {}Mbps/{}ms          {}Mbps/{}ms
     ...        >-- [gateway B={}] ==============> [server]
  client M  ---/
"#,
        p.client_bandwidth_bps / 1_000_000,
        (p.client_delay.as_secs_f64() * 1e3) as u64,
        p.bottleneck_bandwidth_bps / 1_000_000,
        (p.bottleneck_delay.as_secs_f64() * 1e3) as u64,
        p.gateway_buffer_pkts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Sweep {
        Sweep::run(
            &[Protocol::Udp, Protocol::Reno],
            &[5, 10],
            SimDuration::from_secs(5),
            7,
        )
    }

    #[test]
    fn sweep_covers_the_grid() {
        let s = tiny_sweep();
        assert_eq!(s.cells.len(), 4);
        assert!(s.report(Protocol::Udp, 5).is_some());
        assert!(s.report(Protocol::Reno, 10).is_some());
        assert!(s.report(Protocol::Vegas, 5).is_none());
    }

    #[test]
    fn figure_tables_contain_headers_and_rows() {
        let s = tiny_sweep();
        let fig2 = s.fig2_cov_table();
        assert!(fig2.contains("Figure 2"));
        assert!(fig2.contains("Poisson"));
        assert!(fig2.contains("Reno"));
        let fig3 = s.fig3_throughput_table();
        assert!(fig3.contains("Figure 3"));
        let fig4 = s.fig4_loss_table();
        assert!(fig4.contains("Figure 4"));
        let fig13 = s.fig13_timeout_ratio_table();
        assert!(fig13.contains("Figure 13"));
        // Two data rows each (5 and 10 clients).
        assert!(fig2.lines().filter(|l| l.starts_with("  ")).count() >= 2);
    }

    #[test]
    fn figure_svgs_render_every_series() {
        let s = tiny_sweep();
        let fig2 = s.fig2_cov_svg();
        assert!(fig2.starts_with("<svg"));
        assert!(fig2.contains(">Poisson</text>"));
        assert!(fig2.contains(">UDP</text>"));
        assert!(fig2.contains(">Reno</text>"));
        // One polyline per series: Poisson + 2 protocols.
        assert_eq!(fig2.matches("<path").count(), 3);
        let fig3 = s.fig3_throughput_svg();
        assert!(!fig3.contains(">Poisson</text>"), "fig3 has no reference curve");
        // Log-scale fig13 must render even when ratios are zero (floored).
        let fig13 = s.fig13_timeout_ratio_svg();
        assert!(fig13.contains("</svg>"));
    }

    #[test]
    fn cwnd_figure_svg_renders() {
        let fig = cwnd_evolution(
            Protocol::Reno,
            3,
            &paper_traced_clients(3),
            SimDuration::from_secs(2),
            1,
        );
        let svg = fig.svg();
        assert!(svg.contains("client 1"));
        assert!(svg.contains("client 3"));
        assert!(svg.contains("Reno congestion window"));
    }

    #[test]
    fn csv_has_all_figures() {
        let s = tiny_sweep();
        let csv = s.to_csv();
        for tag in ["fig2_cov", "fig3_throughput", "fig4_loss", "fig13_ratio"] {
            assert!(csv.contains(tag), "missing {tag}");
        }
        assert!(csv.lines().count() > 8);
    }

    #[test]
    fn cwnd_evolution_produces_sampled_tables() {
        let fig = cwnd_evolution(
            Protocol::Reno,
            4,
            &paper_traced_clients(4),
            SimDuration::from_secs(3),
            1,
        );
        assert_eq!(fig.traces.len(), 3);
        let table = fig.table();
        assert!(table.contains("client1"));
        assert!(table.contains("client4"));
        // 3 s at 0.1 s steps = 30 sample rows plus headers.
        assert!(table.lines().count() >= 30);
    }

    #[test]
    fn stabilization_detects_last_cut() {
        use tcpburst_des::SimTime;
        let dur = SimDuration::from_secs(10); // 100 samples
        // Cuts at 1.0 s and 3.0 s, then monotone growth: stabilizes at ~30.
        let mut ts = tcpburst_stats::TimeSeries::new();
        ts.record(SimTime::ZERO, 4.0);
        ts.record(SimTime::from_millis(1000), 2.0);
        ts.record(SimTime::from_millis(2000), 5.0);
        ts.record(SimTime::from_millis(3000), 1.0);
        ts.record(SimTime::from_millis(4000), 6.0);
        assert_eq!(stabilization_time_units(&ts, dur), Some(30));

        // Never cuts: stable from the start.
        let mut flat = tcpburst_stats::TimeSeries::new();
        flat.record(SimTime::ZERO, 1.0);
        flat.record(SimTime::from_millis(500), 3.0);
        assert_eq!(stabilization_time_units(&flat, dur), Some(0));

        // Cuts right at the end: never stabilizes.
        let mut late = tcpburst_stats::TimeSeries::new();
        late.record(SimTime::ZERO, 4.0);
        late.record(SimTime::from_millis(9800), 1.0);
        assert_eq!(stabilization_time_units(&late, dur), None);
    }

    #[test]
    fn paper_traced_clients_are_in_range() {
        assert_eq!(paper_traced_clients(20), vec![0, 9, 19]);
        assert_eq!(paper_traced_clients(60), vec![0, 29, 59]);
        assert_eq!(paper_traced_clients(1), vec![0]);
        assert!(paper_traced_clients(0).is_empty());
    }

    #[test]
    fn table1_lists_reconstructed_parameters() {
        let t = table1();
        assert!(t.contains("100 Mbps"));
        assert!(t.contains("50 Mbps"));
        assert!(t.contains("50 packets"));
        assert!(t.contains("1500 bytes"));
        assert!(t.contains("0.01 s"));
        assert!(t.contains("(10, 40) packets"));
    }

    #[test]
    fn topology_sketch_mentions_all_roles() {
        let t = topology_ascii();
        assert!(t.contains("gateway"));
        assert!(t.contains("server"));
        assert!(t.contains("client"));
    }

    #[test]
    #[should_panic(expected = "at least one protocol")]
    fn empty_protocol_axis_panics() {
        Sweep::run(&[], &[5], SimDuration::from_secs(1), 0);
    }
}
