//! Deterministic fault injection for the sweep control plane.
//!
//! The chaos harness proves the robustness claims of [`crate::daemon`] and
//! [`crate::workers`]: a worker process started with `TCPBURST_CHAOS` set
//! wraps its transport in a [`ChaosTransport`] that counts protocol frames
//! and, at scheduled ordinals, kills the process, stalls, corrupts or
//! truncates an outbound frame, or drops the connection — all
//! *deterministically*, so a chaos schedule is reproducible and the
//! byte-identity invariant (finalized journal equals the uninterrupted
//! serial run) can be pinned in tests and CI.
//!
//! ## Schedule grammar (`TCPBURST_CHAOS`)
//!
//! Semicolon- or comma-separated events, each
//! `[worker:]kind@frame[:arg]`:
//!
//! ```text
//! kill@4              abort the process at the 4th frame
//! stall@2:250         sleep 250 ms before the 2nd frame
//! corrupt@3           flip a byte in the 3rd outbound frame
//! trunc@3             send only half of the 3rd outbound frame
//! drop@5              fail the 5th frame as an injected partition
//! w1:kill@4           ... but only in the worker whose
//!                     TCPBURST_CHAOS_ID is "w1"
//! ```
//!
//! Frames are counted 1-based across both directions, **excluding
//! heartbeat (`hb`) frames** — heartbeats are timing-dependent, so counting
//! them would make a schedule fire at wall-clock-dependent points and break
//! reproducibility. `corrupt` and `trunc` can only act on outbound bytes;
//! when their ordinal lands on an inbound frame they arm and fire on the
//! next send.
//!
//! [`ChaosTransport`] is only ever installed in *worker* processes (the
//! driver never sets the env vars on itself), so `kill` aborting the
//! process is exactly the fault being simulated.

use std::time::Duration;

use crate::net_transport::{encode_frame, FrameError, FrameTransport, FRAME_HEADER};

/// Environment variable holding the chaos schedule for spawned workers.
/// Unset (or empty) in normal operation.
pub const CHAOS_ENV: &str = "TCPBURST_CHAOS";

/// Environment variable naming *this* worker in a chaos schedule, so a
/// schedule can target one worker out of many (`w1:kill@4`).
pub const CHAOS_ID_ENV: &str = "TCPBURST_CHAOS_ID";

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Abort the process with no unwinding — a segfault stand-in.
    Kill,
    /// Sleep this long before the frame proceeds — a wedged or slow peer.
    Stall(Duration),
    /// Flip a byte in the outbound frame's payload — wire corruption.
    Corrupt,
    /// Send only the first half of the outbound frame, then fail — a
    /// connection cut mid-frame.
    Truncate,
    /// Fail the frame without transferring anything — a network partition.
    Drop,
}

/// One scheduled fault: which worker (None = every worker), at which
/// 1-based frame ordinal, doing what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Target worker id (matched against [`CHAOS_ID_ENV`]); `None` applies
    /// to every worker.
    pub worker: Option<String>,
    /// 1-based ordinal of the (non-heartbeat) frame the fault fires at.
    pub frame: u64,
    /// The fault.
    pub action: ChaosAction,
}

/// A parsed chaos schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// The scheduled faults, in spec order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Parses the [`CHAOS_ENV`] grammar; `Err` carries the offending
    /// entry and why it did not parse.
    pub fn parse(spec: &str) -> Result<ChaosSchedule, String> {
        let mut events = Vec::new();
        for entry in spec.split([';', ',']).map(str::trim).filter(|e| !e.is_empty()) {
            let (head, tail) = entry
                .split_once('@')
                .ok_or_else(|| format!("chaos entry {entry:?}: missing '@frame'"))?;
            let (worker, kind) = match head.rsplit_once(':') {
                Some((w, k)) => (Some(w.to_string()), k),
                None => (None, head),
            };
            let (frame_str, arg) = match tail.split_once(':') {
                Some((f, a)) => (f, Some(a)),
                None => (tail, None),
            };
            let frame: u64 = frame_str
                .parse()
                .map_err(|_| format!("chaos entry {entry:?}: bad frame ordinal {frame_str:?}"))?;
            if frame == 0 {
                return Err(format!("chaos entry {entry:?}: frames are 1-based"));
            }
            let action = match (kind, arg) {
                ("kill", None) => ChaosAction::Kill,
                ("stall", arg) => {
                    let ms: u64 = arg
                        .unwrap_or("100")
                        .parse()
                        .map_err(|_| format!("chaos entry {entry:?}: bad stall millis"))?;
                    ChaosAction::Stall(Duration::from_millis(ms))
                }
                ("corrupt", None) => ChaosAction::Corrupt,
                ("trunc", None) => ChaosAction::Truncate,
                ("drop", None) => ChaosAction::Drop,
                _ => return Err(format!("chaos entry {entry:?}: unknown kind {kind:?}")),
            };
            events.push(ChaosEvent {
                worker,
                frame,
                action,
            });
        }
        Ok(ChaosSchedule { events })
    }

    /// The `(frame, action)` pairs that apply to the worker named `id`
    /// (untargeted events apply to everyone).
    pub fn for_worker(&self, id: &str) -> Vec<(u64, ChaosAction)> {
        self.events
            .iter()
            .filter(|e| e.worker.as_deref().is_none_or(|w| w == id))
            .map(|e| (e.frame, e.action))
            .collect()
    }

    /// Reads [`CHAOS_ENV`] / [`CHAOS_ID_ENV`] from the process
    /// environment; `None` when no schedule applies to this process.
    /// A malformed schedule is treated as absent — chaos hooks must never
    /// be able to break a production sweep.
    pub fn from_env() -> Option<Vec<(u64, ChaosAction)>> {
        let spec = std::env::var(CHAOS_ENV).ok()?;
        let schedule = ChaosSchedule::parse(&spec).ok()?;
        let id = std::env::var(CHAOS_ID_ENV).unwrap_or_default();
        let events = schedule.for_worker(&id);
        if events.is_empty() {
            None
        } else {
            Some(events)
        }
    }
}

/// The heartbeat payload, excluded from chaos frame counting (heartbeats
/// fire on wall-clock timers, so counting them would make schedules
/// non-reproducible).
pub const HEARTBEAT_PAYLOAD: &[u8] = b"hb";

fn injected(context: &str, what: &str) -> FrameError {
    FrameError::Io {
        context: context.to_string(),
        message: format!("chaos: injected {what}"),
    }
}

/// A [`FrameTransport`] wrapper that injects the scheduled faults. Counts
/// non-heartbeat frames 1-based across send and recv; `corrupt`/`trunc`
/// arm on inbound ordinals and fire on the next send.
pub struct ChaosTransport<T: FrameTransport> {
    inner: T,
    events: Vec<(u64, ChaosAction)>,
    counter: u64,
    armed: Option<ChaosAction>,
}

impl<T: FrameTransport> ChaosTransport<T> {
    /// Wraps `inner` under the given `(frame, action)` schedule.
    pub fn new(inner: T, events: Vec<(u64, ChaosAction)>) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            events,
            counter: 0,
            armed: None,
        }
    }

    fn actions_at(&self, frame: u64) -> Vec<ChaosAction> {
        self.events
            .iter()
            .filter(|(f, _)| *f == frame)
            .map(|(_, a)| *a)
            .collect()
    }
}

impl<T: FrameTransport> FrameTransport for ChaosTransport<T> {
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), FrameError> {
        self.inner.send_bytes(bytes)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let frame = self.inner.recv()?;
        if frame.as_deref() == Some(HEARTBEAT_PAYLOAD) {
            return Ok(frame);
        }
        self.counter += 1;
        for action in self.actions_at(self.counter) {
            match action {
                ChaosAction::Kill => std::process::abort(),
                ChaosAction::Stall(d) => std::thread::sleep(d),
                ChaosAction::Drop => return Err(injected(self.inner.peer(), "partition")),
                // Inbound bytes are already decoded and verified; fire on
                // the next outbound frame instead.
                ChaosAction::Corrupt | ChaosAction::Truncate => self.armed = Some(action),
            }
        }
        Ok(frame)
    }

    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> Result<(), FrameError> {
        self.inner.set_read_deadline(deadline)
    }

    fn peer(&self) -> &str {
        self.inner.peer()
    }

    fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        if payload == HEARTBEAT_PAYLOAD {
            return self.inner.send(payload);
        }
        self.counter += 1;
        let mut actions = self.actions_at(self.counter);
        if let Some(armed) = self.armed.take() {
            actions.push(armed);
        }
        let mut bytes = encode_frame(payload);
        for action in actions {
            match action {
                ChaosAction::Kill => std::process::abort(),
                ChaosAction::Stall(d) => std::thread::sleep(d),
                ChaosAction::Drop => return Err(injected(self.inner.peer(), "partition")),
                ChaosAction::Corrupt => {
                    // Flip a payload byte (or a checksum byte for empty
                    // payloads) so the receiver's checksum rejects it.
                    let i = if bytes.len() > FRAME_HEADER { FRAME_HEADER } else { 4 };
                    bytes[i] ^= 0x5A;
                }
                ChaosAction::Truncate => {
                    let half = bytes.len() / 2;
                    self.inner.send_bytes(&bytes[..half])?;
                    return Err(injected(self.inner.peer(), "truncation"));
                }
            }
        }
        self.inner.send_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net_transport::PipeTransport;
    use std::io::Cursor;
    use std::time::Instant;

    fn pipe_to(buf: &mut Vec<u8>) -> PipeTransport<Cursor<Vec<u8>>, &mut Vec<u8>> {
        PipeTransport::new(Cursor::new(Vec::new()), buf, "chaos-test")
    }

    #[test]
    fn schedule_grammar_parses() {
        let s = ChaosSchedule::parse("kill@4; w1:stall@2:250, corrupt@3;trunc@1;w2:drop@9")
            .expect("parses");
        assert_eq!(s.events.len(), 5);
        assert_eq!(
            s.events[0],
            ChaosEvent {
                worker: None,
                frame: 4,
                action: ChaosAction::Kill
            }
        );
        assert_eq!(
            s.events[1],
            ChaosEvent {
                worker: Some("w1".to_string()),
                frame: 2,
                action: ChaosAction::Stall(Duration::from_millis(250))
            }
        );
        assert_eq!(s.events[3].action, ChaosAction::Truncate);
        assert_eq!(s.events[4].worker.as_deref(), Some("w2"));

        assert!(ChaosSchedule::parse("kill").is_err());
        assert!(ChaosSchedule::parse("kill@0").is_err());
        assert!(ChaosSchedule::parse("explode@3").is_err());
        assert!(ChaosSchedule::parse("stall@2:abc").is_err());
        assert_eq!(ChaosSchedule::parse("").expect("empty ok").events.len(), 0);
    }

    #[test]
    fn worker_filter_matches_tag_or_untagged() {
        let s = ChaosSchedule::parse("kill@4;w1:drop@2;w2:corrupt@3").expect("parses");
        let w1 = s.for_worker("w1");
        assert_eq!(
            w1,
            vec![(4, ChaosAction::Kill), (2, ChaosAction::Drop)]
        );
        let other = s.for_worker("w9");
        assert_eq!(other, vec![(4, ChaosAction::Kill)]);
    }

    #[test]
    fn corrupt_breaks_the_receivers_checksum() {
        let mut wire = Vec::new();
        {
            let t = pipe_to(&mut wire);
            let mut chaos = ChaosTransport::new(t, vec![(2, ChaosAction::Corrupt)]);
            chaos.send_text("frame one").expect("clean");
            chaos.send_text("frame two").expect("corrupted but sent");
            chaos.send_text("frame three").expect("clean again");
        }
        let mut rx = PipeTransport::new(Cursor::new(wire), Vec::new(), "rx");
        assert_eq!(rx.recv_text().expect("ok").as_deref(), Some("frame one"));
        let err = rx.recv().expect_err("corrupt frame");
        assert_eq!(err.kind(), "frame-checksum");
        assert_eq!(rx.recv_text().expect("ok").as_deref(), Some("frame three"));
    }

    #[test]
    fn truncate_sends_half_then_errors() {
        let mut wire = Vec::new();
        {
            let t = pipe_to(&mut wire);
            let mut chaos = ChaosTransport::new(t, vec![(1, ChaosAction::Truncate)]);
            let err = chaos.send_text("truncate me").expect_err("injected");
            assert!(err.to_string().contains("truncation"), "{err}");
        }
        let full = encode_frame(b"truncate me");
        assert_eq!(wire, full[..full.len() / 2].to_vec());
        let mut rx = PipeTransport::new(Cursor::new(wire), Vec::new(), "rx");
        assert_eq!(rx.recv().expect_err("truncated").kind(), "frame-truncated");
    }

    #[test]
    fn heartbeats_are_not_counted() {
        let mut wire = Vec::new();
        {
            let t = pipe_to(&mut wire);
            let mut chaos = ChaosTransport::new(t, vec![(2, ChaosAction::Drop)]);
            chaos.send(HEARTBEAT_PAYLOAD).expect("hb uncounted");
            chaos.send_text("frame one").expect("counted as 1");
            chaos.send(HEARTBEAT_PAYLOAD).expect("hb uncounted");
            let err = chaos.send_text("frame two").expect_err("dropped as 2");
            assert!(err.to_string().contains("partition"), "{err}");
        }
    }

    #[test]
    fn stall_delays_but_delivers() {
        let mut wire = Vec::new();
        {
            let t = pipe_to(&mut wire);
            let mut chaos = ChaosTransport::new(
                t,
                vec![(1, ChaosAction::Stall(Duration::from_millis(60)))],
            );
            let start = Instant::now();
            chaos.send_text("slow frame").expect("delivered");
            assert!(start.elapsed() >= Duration::from_millis(50));
        }
        let mut rx = PipeTransport::new(Cursor::new(wire), Vec::new(), "rx");
        assert_eq!(rx.recv_text().expect("ok").as_deref(), Some("slow frame"));
    }

    #[test]
    fn inbound_corrupt_ordinal_arms_the_next_send() {
        // Frame 1 is inbound; a corrupt event at 1 must fire on the next
        // outbound frame (2), not silently vanish.
        let mut inbound = Vec::new();
        {
            let mut tx = pipe_to(&mut inbound);
            tx.send_text("from peer").expect("ok");
        }
        let mut wire = Vec::new();
        {
            let t = PipeTransport::new(Cursor::new(inbound), &mut wire, "chaos-test");
            let mut chaos = ChaosTransport::new(t, vec![(1, ChaosAction::Corrupt)]);
            assert_eq!(chaos.recv_text().expect("ok").as_deref(), Some("from peer"));
            chaos.send_text("reply").expect("corrupted but sent");
        }
        let mut rx = PipeTransport::new(Cursor::new(wire), Vec::new(), "rx");
        assert_eq!(rx.recv().expect_err("corrupt").kind(), "frame-checksum");
    }
}
