//! One simulation run: build the topology, attach endpoints and sources,
//! drive the event loop, collect the report.

use tcpburst_des::{PhaseCycle, Scheduler, SimDuration, SimRng, SimTime};
use tcpburst_net::{
    BuiltTopology, Delivered, Ecn, FlowId, NetEvent, Packet, PacketKind, WireLoss,
    CROSS_TRAFFIC_FLOW,
};
use tcpburst_stats::{jain_fairness, poisson_cov, BinnedCounter, TimeSeries};
use tcpburst_traffic::{AnySource, ArrivalProcess, CbrSource, ParetoOnOffSource, PoissonSource};
use tcpburst_transport::{
    TcpReceiver, TcpSender, TimerKind, TransportEvent, UdpSender, UdpSink,
};

use crate::config::{ScenarioConfig, SourceKind, TransportKind};
use crate::event::{Event, ImpairEvent};
use crate::profile::{DispatchProfile, ProfClock, TimerReport};
use crate::report::{FlowReport, HopSeries, ImpairmentReport, ScenarioReport};
use crate::supervise::{AuditReport, ExceededBudget, InvariantViolation, RunBudget};
use crate::trace::{EventLog, TraceKind};

/// RNG stream index for cross-traffic inter-arrival gaps; client streams
/// are numbered from zero, so the top of the space can never collide.
const CROSS_STREAM: u64 = u64::MAX;
/// Seed perturbation for the network's wire-corruption RNG, keeping it
/// independent of every arrival stream.
const WIRE_SEED_XOR: u64 = 0x7769_7265_636f_7272; // "wirecorr"

/// The client-side transport endpoints, one arena per protocol family.
///
/// A run is homogeneous — every client speaks the same transport — so the
/// endpoints live in one contiguous `Vec` per kind rather than a vector of
/// individually boxed per-flow enums: dispatch branches once per event
/// instead of once per endpoint, and adjacent flows' state shares cache
/// lines instead of being scattered across the heap.
#[derive(Debug)]
enum Clients {
    Tcp(Vec<TcpSender>),
    Udp(Vec<UdpSender>),
}

/// The server-side transport endpoints (see [`Clients`]).
#[derive(Debug)]
enum Servers {
    Tcp(Vec<TcpReceiver>),
    Udp(Vec<UdpSink>),
}

/// A periodic two-state toggle between a nominal and a perturbed value.
#[derive(Debug)]
pub(crate) struct Toggle<T> {
    pub(crate) cycle: PhaseCycle,
    pub(crate) nominal: T,
    pub(crate) perturbed: T,
}

impl<T: Copy> Toggle<T> {
    /// Advances the cycle and returns the value now in effect.
    pub(crate) fn advance(&mut self) -> T {
        if self.cycle.advance() == 0 {
            self.nominal
        } else {
            self.perturbed
        }
    }
}

/// Background cross-traffic generator state.
#[derive(Debug)]
pub(crate) struct CrossRuntime {
    pub(crate) source: PoissonSource,
    pub(crate) packet_bytes: u32,
}

/// Live state of the impairment schedule. Boxed and absent on healthy runs
/// so the unimpaired hot loop pays nothing for the machinery. Shared with
/// the sharded engine (`crate::shard`), whose central domain owns the
/// bottleneck link and therefore the whole schedule.
#[derive(Debug)]
pub(crate) struct ImpairRuntime {
    /// Flap phases `[up, down]`; index 0 means the link is currently lit.
    pub(crate) flap: Option<PhaseCycle>,
    pub(crate) capacity: Option<Toggle<u64>>,
    pub(crate) delay: Option<Toggle<SimDuration>>,
    pub(crate) cross: Option<CrossRuntime>,
    pub(crate) counters: ImpairmentReport,
}

impl ImpairRuntime {
    /// Builds the runtime from a validated schedule; `None` when the
    /// configuration injects no faults.
    ///
    /// # Panics
    ///
    /// Panics if the impairment schedule is inconsistent.
    pub(crate) fn build(cfg: &ScenarioConfig) -> Option<Box<ImpairRuntime>> {
        (!cfg.impair.is_none()).then(|| {
            cfg.impair
                .validate()
                .unwrap_or_else(|e| panic!("invalid impairment schedule: {e}"));
            Box::new(ImpairRuntime {
                flap: cfg.impair.flap.map(|f| PhaseCycle::new([f.up, f.down])),
                capacity: cfg.impair.capacity.map(|c| {
                    let nominal = cfg.params.bottleneck_bandwidth_bps;
                    Toggle {
                        cycle: PhaseCycle::new([c.period, c.period]),
                        nominal,
                        perturbed: ((nominal as f64 * c.factor).round() as u64).max(1),
                    }
                }),
                delay: cfg.impair.delay.map(|d| {
                    let nominal = cfg.params.bottleneck_delay;
                    Toggle {
                        cycle: PhaseCycle::new([d.period, d.period]),
                        nominal,
                        perturbed: SimDuration::from_nanos(
                            (nominal.as_nanos() as f64 * d.factor).round() as u64,
                        ),
                    }
                }),
                cross: cfg.impair.cross.map(|x| CrossRuntime {
                    source: PoissonSource::new(
                        x.rate_pps,
                        SimRng::derive(cfg.seed, CROSS_STREAM),
                    ),
                    packet_bytes: x.packet_bytes,
                }),
                counters: ImpairmentReport::default(),
            })
        })
    }
}

/// A fully assembled simulation of one configured topology (the paper's
/// Figure-1 dumbbell by default; see
/// [`TopoKind`](crate::config::TopoKind) for the rest).
///
/// Most callers only need [`Scenario::run`]; the step-by-step API
/// ([`Scenario::new`] + [`Scenario::run_to_completion`]) exists for tests
/// and tools that want to inspect state mid-run.
#[derive(Debug)]
pub struct Scenario {
    cfg: ScenarioConfig,
    sched: Scheduler<Event>,
    topo: BuiltTopology,
    clients: Clients,
    servers: Servers,
    sources: Vec<AnySource>,
    probe: BinnedCounter,
    /// Scratch buffer for packets produced by endpoint handlers.
    outbox: Vec<Packet>,
    /// Scratch buffer for same-timestamp event batches (the unbudgeted hot
    /// loop drains one timestamp's run per scheduler call).
    batch_buf: Vec<Event>,
    generated: u64,
    event_log: Option<EventLog>,
    /// Per-event-class dispatch counts (and timing with `event-timing` on).
    profile: DispatchProfile,
    /// Timer firings that reached dispatch but were stale — superseded
    /// after the in-place queue deletion missed. Near zero on the calendar
    /// backend; every superseded firing on the binary-heap backend.
    stale_fired: u64,
    /// Host time spent inside [`Scenario::run_to_completion`], feeding the
    /// report's events/sec throughput counter.
    wall_clock: std::time::Duration,
    /// Impairment-schedule state; `None` on healthy runs.
    impair_rt: Option<Box<ImpairRuntime>>,
    /// Packets handed to the network (endpoint segments, ACKs and
    /// cross-traffic) — the left side of the audit's conservation identity.
    injected: u64,
    /// Packets the network delivered to any host endpoint.
    host_delivered: u64,
    /// First non-monotone clock step seen (tracked only under `audit`).
    clock_violation: Option<(SimTime, SimTime)>,
    /// Which watchdog budget aborted the run, if any.
    budget_exceeded: Option<ExceededBudget>,
    /// Per-hop queue-occupancy series, index-aligned with
    /// `topo.hops`; empty unless `trace_hops` is on.
    hop_occ: Vec<TimeSeries>,
    /// Per-hop utilization series (fraction of the hop's instantaneous
    /// capacity transmitted in the sample period).
    hop_util: Vec<TimeSeries>,
    /// Per-hop `bytes_tx` at the previous sample, for the delta.
    hop_prev_bytes: Vec<u64>,
}

impl Scenario {
    /// Builds the scenario (topology, endpoints, sources) without running
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero clients, an
    /// invalid topology spec, invalid TCP or RED parameters). The staged
    /// [`ScenarioBuilder`](crate::ScenarioBuilder) validates the same
    /// conditions into typed errors before they can reach this point.
    pub fn new(cfg: &ScenarioConfig) -> Self {
        let topo = cfg
            .topology_spec()
            .build()
            .unwrap_or_else(|e| panic!("invalid topology: {e}"));
        let num_flows = cfg.num_flows();
        debug_assert_eq!(topo.flows.len(), num_flows);
        let (clients, servers) = match cfg.transport {
            TransportKind::Tcp(_) => {
                let tcp = cfg.tcp_config();
                let mut txs = Vec::with_capacity(num_flows);
                let mut rxs = Vec::with_capacity(num_flows);
                for (i, ep) in topo.flows.iter().enumerate() {
                    let flow = FlowId(i as u32);
                    txs.push(TcpSender::new(tcp, flow, ep.src, ep.dst));
                    rxs.push(TcpReceiver::new(tcp, flow, ep.dst, ep.src));
                }
                (Clients::Tcp(txs), Servers::Tcp(rxs))
            }
            TransportKind::Udp => {
                let mut txs = Vec::with_capacity(num_flows);
                let mut sinks = Vec::with_capacity(num_flows);
                for (i, ep) in topo.flows.iter().enumerate() {
                    let flow = FlowId(i as u32);
                    txs.push(UdpSender::new(
                        flow,
                        ep.src,
                        ep.dst,
                        cfg.params.packet_bytes,
                    ));
                    sinks.push(UdpSink::new());
                }
                (Clients::Udp(txs), Servers::Udp(sinks))
            }
        };
        let sources: Vec<AnySource> = (0..num_flows)
            .map(|i| {
                let stream = SimRng::derive(cfg.seed, i as u64);
                match cfg.source {
                    SourceKind::Poisson { rate } => PoissonSource::new(rate, stream).into(),
                    SourceKind::Cbr { rate } => CbrSource::from_rate(rate).into(),
                    SourceKind::ParetoOnOff(pcfg) => {
                        ParetoOnOffSource::new(pcfg, stream).into()
                    }
                }
            })
            .collect();

        let probe = BinnedCounter::starting_at(SimTime::ZERO + cfg.warmup, cfg.cov_bin_width());

        let impair_rt = ImpairRuntime::build(cfg);

        let num_hops = topo.hops.len();
        let mut scenario = Scenario {
            cfg: *cfg,
            sched: Scheduler::with_capacity_and_backend(cfg.event_list_capacity(), cfg.queue),
            topo,
            clients,
            servers,
            sources,
            probe,
            outbox: Vec::with_capacity(64),
            batch_buf: Vec::with_capacity(64),
            generated: 0,
            event_log: cfg
                .trace_events
                .then(|| EventLog::with_capacity(ScenarioConfig::EVENT_LOG_CAP)),
            profile: DispatchProfile::default(),
            stale_fired: 0,
            wall_clock: std::time::Duration::ZERO,
            impair_rt,
            injected: 0,
            host_delivered: 0,
            clock_violation: None,
            budget_exceeded: None,
            hop_occ: if cfg.trace_hops {
                vec![TimeSeries::default(); num_hops]
            } else {
                Vec::new()
            },
            hop_util: if cfg.trace_hops {
                vec![TimeSeries::default(); num_hops]
            } else {
                Vec::new()
            },
            hop_prev_bytes: if cfg.trace_hops {
                vec![0; num_hops]
            } else {
                Vec::new()
            },
        };
        // Prime every flow's first generation event.
        for i in 0..num_flows {
            let gap = scenario.sources[i].next_gap();
            scenario
                .sched
                .schedule_after(gap, Event::Generate { client: i as u32 });
        }
        // Prime the per-hop congestion-wave sampler (one event per bin;
        // nothing is scheduled when the trace is off).
        if scenario.cfg.trace_hops {
            scenario
                .sched
                .schedule_after(scenario.cfg.cov_bin_width(), Event::HopSample);
        }
        // Arm the impairment schedule: per-hop corruption on every link,
        // plus the first firing of each periodic perturbation.
        if scenario.cfg.impair.corrupt_prob > 0.0 {
            let net = &mut scenario.topo.network;
            net.set_wire_seed(scenario.cfg.seed ^ WIRE_SEED_XOR);
            for id in 0..net.link_count() {
                net.link_mut(tcpburst_net::LinkId(id as u32))
                    .set_corrupt_prob(scenario.cfg.impair.corrupt_prob);
            }
        }
        if let Some(rt) = scenario.impair_rt.as_mut() {
            if let Some(cycle) = &rt.flap {
                scenario
                    .sched
                    .schedule_after(cycle.hold(), Event::Impair(ImpairEvent::FlapToggle));
            }
            if let Some(t) = &rt.capacity {
                scenario
                    .sched
                    .schedule_after(t.cycle.hold(), Event::Impair(ImpairEvent::CapacityToggle));
            }
            if let Some(t) = &rt.delay {
                scenario
                    .sched
                    .schedule_after(t.cycle.hold(), Event::Impair(ImpairEvent::DelayToggle));
            }
            if let Some(x) = rt.cross.as_mut() {
                let gap = x.source.next_gap();
                scenario
                    .sched
                    .schedule_after(gap, Event::Impair(ImpairEvent::CrossArrival));
            }
        }
        scenario
    }

    /// Builds and runs the scenario to its configured duration.
    ///
    /// With [`shards`](ScenarioConfig::shards) set and the configuration
    /// supported by the conservative parallel engine, the run is delegated
    /// to [`crate::shard`]; everything else uses the serial single-scheduler
    /// engine below.
    pub fn run(cfg: &ScenarioConfig) -> ScenarioReport {
        if cfg.shards > 0 && crate::shard::supported(cfg) {
            return crate::shard::run_sharded(cfg);
        }
        let mut s = Scenario::new(cfg);
        s.run_to_completion();
        s.into_report()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// How many clients carry an allocated `(time, cwnd)` trace buffer.
    /// Zero unless the instrumentation stage enabled
    /// [`trace_cwnd`](ScenarioConfig::trace_cwnd) — the benches assert
    /// this so sweeps that never read traces never pay for them.
    pub fn cwnd_trace_allocations(&self) -> usize {
        match &self.clients {
            Clients::Tcp(txs) => txs.iter().filter(|t| t.cwnd_trace().is_some()).count(),
            Clients::Udp(_) => 0,
        }
    }

    /// Drives the event loop until the configured duration.
    pub fn run_to_completion(&mut self) {
        self.run_with_budget(&RunBudget::UNLIMITED);
    }

    /// Drives the event loop until the configured duration or until a
    /// watchdog limit fires, whichever comes first. Returns which budget
    /// aborted the run (`None` when the run completed); an aborted
    /// scenario still yields a full diagnostic report via
    /// [`Scenario::into_report`], with
    /// [`budget_exceeded`](ScenarioReport::budget_exceeded) set.
    ///
    /// With no limits set and auditing off, this is the exact unmodified
    /// hot loop — sweeps that opt into nothing pay for nothing.
    pub fn run_with_budget(&mut self, budget: &RunBudget) -> Option<ExceededBudget> {
        let started = std::time::Instant::now();
        let horizon = SimTime::ZERO + self.cfg.duration;

        if budget.is_unlimited() && !self.cfg.audit {
            // Batch dispatch: pull each timestamp's full run of events in
            // one scheduler call and dispatch it as a slice — one queue
            // search amortized over the whole run instead of per event.
            // Events scheduled *during* the batch at the same instant land
            // after it in `(time, seq)` order, so the next `drain_due` call
            // picks them up and the dispatch order is event-for-event
            // identical to the single-pop loop.
            let mut batch = std::mem::take(&mut self.batch_buf);
            while self.sched.drain_due(horizon, &mut batch).is_some() {
                for event in batch.drain(..) {
                    self.dispatch(event);
                }
            }
            self.batch_buf = batch; // keep the allocation
            self.wall_clock += started.elapsed();
            return None;
        }

        let sim_horizon = match budget.max_sim_time {
            Some(cap) => horizon.min(SimTime::ZERO + cap),
            None => horizon,
        };
        let mut tripped = None;
        let mut last_t = self.sched.now();
        let mut since_wall_check = 0u32;
        while let Some((t, event)) = self.sched.pop_until(sim_horizon) {
            if self.cfg.audit && t < last_t && self.clock_violation.is_none() {
                self.clock_violation = Some((last_t, t));
            }
            last_t = t;
            self.dispatch(event);
            if let Some(max) = budget.max_events {
                if self.sched.processed() >= max {
                    tripped = Some(ExceededBudget::Events);
                    break;
                }
            }
            if let Some(max) = budget.max_wall {
                since_wall_check += 1;
                // Checking the host clock per event would dominate the
                // loop; every few thousand events bounds the overshoot at
                // microseconds while keeping the hot path branch-cheap.
                if since_wall_check >= 4096 || max.is_zero() {
                    since_wall_check = 0;
                    if started.elapsed() >= max {
                        tripped = Some(ExceededBudget::WallClock);
                        break;
                    }
                }
            }
        }
        self.wall_clock += started.elapsed();

        // A limit only counts as *exceeded* if the simulation still had
        // work left inside the configured horizon — a run that hits its
        // event cap on its very last event simply finished.
        let more_pending = self
            .sched
            .peek_time()
            .is_some_and(|t| t <= horizon);
        self.budget_exceeded = match tripped {
            Some(e) if more_pending => Some(e),
            Some(_) => None,
            None if sim_horizon < horizon && more_pending => Some(ExceededBudget::SimTime),
            None => None,
        };
        self.budget_exceeded
    }

    fn dispatch(&mut self, event: Event) {
        let clock = ProfClock::start();
        match event {
            Event::Generate { client } => {
                self.on_generate(client);
                clock.charge(&mut self.profile.generate);
            }
            Event::Net(NetEvent::TxComplete { link, epoch }) => {
                self.topo.network.on_tx_complete(link, epoch, &mut self.sched);
                clock.charge(&mut self.profile.net_tx);
            }
            Event::Net(NetEvent::Delivery { link, epoch, packet }) => {
                // The paper's probe: data packets arriving at the probe
                // node (the bottleneck's upstream router — the gateway on
                // the dumbbell), counted per round-trip propagation delay.
                // Peek the parked packet before the delivery call (which
                // redeems its arena ticket), record after it — a packet
                // lost on the wire never arrives.
                let peek = self.topo.network.packet(packet);
                let probed = peek.kind.is_data()
                    && self.topo.network.link(link).to() == self.topo.probe_node;
                let flow = peek.flow;
                match self.topo.network.on_delivery(link, epoch, packet, &mut self.sched) {
                    Delivered::ToHost { node: _, packet } => {
                        if probed {
                            self.probe.record(self.sched.now());
                        }
                        self.on_host_delivery(packet);
                    }
                    Delivered::Forwarded { via, outcome, .. } => {
                        if probed {
                            self.probe.record(self.sched.now());
                        }
                        if outcome.is_drop() && via == self.topo.bottleneck {
                            if let Some(log) = self.event_log.as_mut() {
                                let early =
                                    outcome != tcpburst_net::EnqueueOutcome::DroppedFull;
                                log.record(
                                    self.sched.now(),
                                    TraceKind::GatewayDrop { flow, early },
                                );
                            }
                        }
                    }
                    Delivered::LostOnWire { cause, .. } => {
                        if let Some(rt) = self.impair_rt.as_mut() {
                            match cause {
                                WireLoss::LinkDown => rt.counters.lost_in_flight += 1,
                                WireLoss::Corrupted => rt.counters.corrupted += 1,
                            }
                        }
                        if cause == WireLoss::Corrupted {
                            if let Some(log) = self.event_log.as_mut() {
                                log.record(self.sched.now(), TraceKind::Corrupted { flow });
                            }
                        }
                    }
                }
                clock.charge(&mut self.profile.net_delivery);
            }
            Event::Transport(ev) => {
                self.on_transport_timer(ev);
                clock.charge(&mut self.profile.transport);
            }
            Event::Impair(ev) => {
                self.on_impair(ev);
                clock.charge(&mut self.profile.impair);
            }
            Event::HopSample => {
                self.on_hop_sample();
                clock.charge(&mut self.profile.impair);
            }
        }
    }

    /// Samples every instrumented hop's queue backlog and utilization and
    /// re-arms the next sample. Only ever scheduled under `trace_hops`.
    fn on_hop_sample(&mut self) {
        let now = self.sched.now();
        let bin = self.cfg.cov_bin_width();
        let net = &self.topo.network;
        for (i, &hop) in self.topo.hops.iter().enumerate() {
            let link = net.link(hop);
            self.hop_occ[i].record(now, link.queue().len() as f64);
            let bytes = link.stats().bytes_tx;
            let delta = bytes - self.hop_prev_bytes[i];
            self.hop_prev_bytes[i] = bytes;
            // Fraction of the hop's *instantaneous* capacity used this
            // bin; a capacity impairment mid-bin can push it past 1.
            let capacity_bits = link.bandwidth_bps() as f64 * bin.as_secs_f64();
            self.hop_util[i].record(now, delta as f64 * 8.0 / capacity_bits);
        }
        let horizon = SimTime::ZERO + self.cfg.duration;
        if now + bin <= horizon {
            self.sched.schedule_after(bin, Event::HopSample);
        }
    }

    /// Executes one impairment-schedule event and re-arms its successor.
    fn on_impair(&mut self, ev: ImpairEvent) {
        let now = self.sched.now();
        let Some(rt) = self.impair_rt.as_mut() else {
            unreachable!("impairment event without a schedule");
        };
        match ev {
            ImpairEvent::FlapToggle => {
                let cycle = rt.flap.as_mut().expect("flap toggle without a flap");
                let up = cycle.advance() == 0;
                self.topo
                    .network
                    .set_link_up(self.topo.impair_link, up, &mut self.sched);
                if up {
                    rt.counters.link_up_events += 1;
                } else {
                    rt.counters.link_down_events += 1;
                }
                if let Some(log) = self.event_log.as_mut() {
                    log.record(now, if up { TraceKind::LinkUp } else { TraceKind::LinkDown });
                }
                self.sched
                    .schedule_after(cycle.hold(), Event::Impair(ImpairEvent::FlapToggle));
            }
            ImpairEvent::CapacityToggle => {
                let t = rt.capacity.as_mut().expect("capacity toggle without one");
                let rate = t.advance();
                self.topo
                    .network
                    .link_mut(self.topo.impair_link)
                    .set_bandwidth_bps(rate);
                self.sched
                    .schedule_after(t.cycle.hold(), Event::Impair(ImpairEvent::CapacityToggle));
            }
            ImpairEvent::DelayToggle => {
                let t = rt.delay.as_mut().expect("delay toggle without one");
                let delay = t.advance();
                self.topo
                    .network
                    .link_mut(self.topo.impair_link)
                    .set_delay(delay);
                self.sched
                    .schedule_after(t.cycle.hold(), Event::Impair(ImpairEvent::DelayToggle));
            }
            ImpairEvent::CrossArrival => {
                let x = rt.cross.as_mut().expect("cross arrival without a source");
                let pkt = Packet {
                    flow: CROSS_TRAFFIC_FLOW,
                    kind: PacketKind::Datagram,
                    size_bytes: x.packet_bytes,
                    src: self.topo.cross_src,
                    dst: self.topo.cross_dst,
                    created_at: now,
                    ecn: Ecn::NotCapable,
                };
                rt.counters.cross_injected += 1;
                self.injected += 1;
                self.topo.network.inject(pkt, &mut self.sched);
                let gap = x.source.next_gap();
                self.sched
                    .schedule_after(gap, Event::Impair(ImpairEvent::CrossArrival));
            }
        }
    }

    fn on_generate(&mut self, client: u32) {
        let idx = client as usize;
        let now = self.sched.now();
        self.generated += 1;
        match &mut self.clients {
            Clients::Tcp(txs) => {
                txs[idx].on_app_packets(1, &mut self.sched, &mut self.outbox);
            }
            Clients::Udp(txs) => {
                let pkt = txs[idx].on_app_packet(now);
                self.outbox.push(pkt);
            }
        }
        self.flush_outbox();
        let gap = self.sources[idx].next_gap();
        self.sched.schedule_after(gap, Event::Generate { client });
    }

    fn on_host_delivery(&mut self, packet: Packet) {
        self.host_delivered += 1;
        if packet.flow == CROSS_TRAFFIC_FLOW {
            // Background datagrams carry no transport state; count and drop.
            if let Some(rt) = self.impair_rt.as_mut() {
                rt.counters.cross_delivered += 1;
            }
            return;
        }
        // Which agent handles the packet follows from its kind alone: data
        // flows toward the flow's receiver host, ACKs flow back to its
        // sender. On an arbitrary graph neither end is "the server".
        let idx = packet.flow.0 as usize;
        match packet.kind {
            PacketKind::TcpData { .. } => match &mut self.servers {
                Servers::Tcp(rxs) => {
                    rxs[idx].on_data(&packet, &mut self.sched, &mut self.outbox);
                }
                Servers::Udp(_) => unreachable!("UDP sink received TCP data"),
            },
            PacketKind::Datagram => match &mut self.servers {
                Servers::Udp(sinks) => {
                    let now = self.sched.now();
                    sinks[idx].on_packet(&packet, now);
                }
                Servers::Tcp(_) => unreachable!("TCP receiver got a datagram"),
            },
            PacketKind::TcpAck { ack, ece, sack } => match &mut self.clients {
                Clients::Tcp(txs) => {
                    let tx = &mut txs[idx];
                    // Snapshot the counters only when a trace log wants the
                    // before/after diff — the copy is pure overhead otherwise.
                    let before = self.event_log.is_some().then(|| tx.counters());
                    tx.on_ack(ack, ece, sack, &mut self.sched, &mut self.outbox);
                    if let (Some(log), Some(before)) = (self.event_log.as_mut(), before) {
                        let after = tx.counters();
                        let now = self.sched.now();
                        if after.fast_retransmits > before.fast_retransmits {
                            log.record(now, TraceKind::FastRetransmit { flow: packet.flow });
                        }
                        if after.ecn_window_cuts > before.ecn_window_cuts {
                            log.record(now, TraceKind::EcnCut { flow: packet.flow });
                        }
                    }
                }
                Clients::Udp(_) => unreachable!("UDP source received a TCP ACK"),
            },
        }
        self.flush_outbox();
    }

    fn on_transport_timer(&mut self, ev: TransportEvent) {
        let idx = ev.flow.0 as usize;
        match ev.kind {
            TimerKind::Rto | TimerKind::Pace => {
                if let Clients::Tcp(txs) = &mut self.clients {
                    let tx = &mut txs[idx];
                    let before = tx.counters().timeouts;
                    let live =
                        tx.on_timer(ev.kind, ev.generation, &mut self.sched, &mut self.outbox);
                    if !live {
                        self.stale_fired += 1;
                    }
                    if tx.counters().timeouts > before {
                        if let Some(log) = self.event_log.as_mut() {
                            log.record(self.sched.now(), TraceKind::Timeout { flow: ev.flow });
                        }
                    }
                }
            }
            TimerKind::DelAck => {
                if let Servers::Tcp(rxs) = &mut self.servers {
                    let now = self.sched.now();
                    let live = rxs[idx].on_timer(ev.kind, ev.generation, now, &mut self.outbox);
                    if !live {
                        self.stale_fired += 1;
                    }
                }
            }
        }
        self.flush_outbox();
    }

    fn flush_outbox(&mut self) {
        // FIFO: a burst of segments must hit the wire in sequence order.
        let mut pkts = std::mem::take(&mut self.outbox);
        self.injected += pkts.len() as u64;
        for pkt in pkts.drain(..) {
            self.topo.network.inject(pkt, &mut self.sched);
        }
        self.outbox = pkts; // keep the allocation
    }

    /// End-of-run invariant audit: checks the per-link and global packet
    /// conservation identities, non-negative occupancy, the cwnd floor,
    /// app-layer accounting and clock monotonicity.
    fn run_audit(&self) -> AuditReport {
        let end = self.sched.now();
        let net = &self.topo.network;
        let mut violations = Vec::new();
        let mut queue_drops = 0u64;
        let mut wire_lost = 0u64;
        let mut queued_at_end = 0u64;
        let mut in_flight_at_end = 0u64;

        for id in 0..net.link_count() {
            let link = net.link(tcpburst_net::LinkId(id as u32));
            let q = link.queue().stats();
            let len = link.queue().len() as u64;
            if q.arrivals != q.departures + q.drops_total() + len {
                violations.push(InvariantViolation {
                    invariant: "queue-conservation",
                    detail: format!(
                        "link {id}: arrivals {} != departures {} + drops {} + backlog {len}",
                        q.arrivals,
                        q.departures,
                        q.drops_total()
                    ),
                });
            }
            let s = link.stats();
            if q.departures != s.packets_tx {
                violations.push(InvariantViolation {
                    invariant: "queue-wire-coupling",
                    detail: format!(
                        "link {id}: {} queue departures but {} wire transmissions",
                        q.departures, s.packets_tx
                    ),
                });
            }
            let flight = s.packets_tx as i128
                - s.arrived as i128
                - s.lost_in_flight as i128
                - s.corrupted as i128;
            if flight < 0 {
                violations.push(InvariantViolation {
                    invariant: "wire-conservation",
                    detail: format!(
                        "link {id}: tx {} < arrived {} + lost {} + corrupted {} \
                         (negative in-flight residual {flight})",
                        s.packets_tx, s.arrived, s.lost_in_flight, s.corrupted
                    ),
                });
            }
            let avg = link.queue().occupancy().average(end, link.queue().len());
            if !(avg >= 0.0) {
                violations.push(InvariantViolation {
                    invariant: "occupancy-non-negative",
                    detail: format!("link {id}: time-weighted average backlog {avg}"),
                });
            }
            queue_drops += q.drops_total();
            wire_lost += s.lost_in_flight + s.corrupted;
            queued_at_end += len;
            in_flight_at_end += flight.max(0) as u64;
        }

        let accounted =
            self.host_delivered + queue_drops + wire_lost + queued_at_end + in_flight_at_end;
        if self.injected != accounted {
            violations.push(InvariantViolation {
                invariant: "packet-conservation",
                detail: format!(
                    "injected {} != delivered {} + drops {queue_drops} + wire-lost \
                     {wire_lost} + queued {queued_at_end} + in-flight {in_flight_at_end} \
                     (= {accounted})",
                    self.injected, self.host_delivered
                ),
            });
        }

        let submitted: u64 = match &self.clients {
            Clients::Tcp(txs) => txs.iter().map(|t| t.counters().app_packets_submitted).sum(),
            Clients::Udp(txs) => txs.iter().map(UdpSender::packets_sent).sum(),
        };
        if self.generated != submitted {
            violations.push(InvariantViolation {
                invariant: "app-conservation",
                detail: format!(
                    "{} packets generated but {submitted} submitted to transports",
                    self.generated
                ),
            });
        }

        if let Clients::Tcp(txs) = &self.clients {
            for (i, tx) in txs.iter().enumerate() {
                let cwnd = tx.cwnd();
                if !(cwnd >= 1.0) {
                    violations.push(InvariantViolation {
                        invariant: "cwnd-floor",
                        detail: format!("client {i}: cwnd {cwnd} below 1 MSS"),
                    });
                }
                let ssthresh = tx.ssthresh();
                if !(ssthresh >= 2.0) {
                    violations.push(InvariantViolation {
                        invariant: "ssthresh-floor",
                        detail: format!("client {i}: ssthresh {ssthresh} below 2 MSS"),
                    });
                }
            }
        }

        if let Some((prev, t)) = self.clock_violation {
            violations.push(InvariantViolation {
                invariant: "monotone-clock",
                detail: format!("clock stepped backwards from {prev:?} to {t:?}"),
            });
        }

        AuditReport {
            injected: self.injected,
            host_delivered: self.host_delivered,
            queue_drops,
            wire_lost,
            queued_at_end,
            in_flight_at_end,
            violations,
        }
    }

    /// Collects the final report (consumes the scenario).
    pub fn into_report(self) -> ScenarioReport {
        let audit = self.cfg.audit.then(|| self.run_audit());
        let cfg = self.cfg;
        let end = SimTime::ZERO + cfg.duration;
        let bins = self.probe.finish(end);
        let cov = bins.cov();
        let measured_window = cfg.duration - cfg.warmup;
        let pcov = poisson_cov(
            cfg.source.mean_rate(),
            cfg.cov_bin_width().as_secs_f64(),
            cfg.num_flows(),
        );

        let mut flows = Vec::with_capacity(cfg.num_flows());
        match (&self.clients, &self.servers) {
            (Clients::Tcp(txs), Servers::Tcp(rxs)) => {
                for (tx, rx) in txs.iter().zip(rxs) {
                    flows.push(FlowReport {
                        packets_sent: tx.counters().data_packets_sent,
                        delivered: rx.counters().delivered,
                        mean_delay_secs: rx.delay_stats().mean(),
                        tcp: Some(tx.counters()),
                        cwnd_trace: tx.cwnd_trace().cloned(),
                    });
                }
            }
            (Clients::Udp(txs), Servers::Udp(sinks)) => {
                for (tx, sink) in txs.iter().zip(sinks) {
                    flows.push(FlowReport {
                        packets_sent: tx.packets_sent(),
                        delivered: sink.delivered(),
                        mean_delay_secs: sink.mean_delay_secs(),
                        tcp: None,
                        cwnd_trace: None,
                    });
                }
            }
            _ => unreachable!("client and server arenas share one transport kind"),
        }

        let bottleneck_link = self.topo.network.link(self.topo.bottleneck);
        let bottleneck_queue = bottleneck_link.queue().stats();
        let avg_queue_len = bottleneck_link
            .queue()
            .occupancy()
            .average(end, bottleneck_link.queue().len());
        let delivered_packets: u64 = flows.iter().map(|f| f.delivered).sum();
        let goodputs: Vec<f64> = flows.iter().map(|f| f.delivered as f64).collect();

        let mut tcp_totals = tcpburst_transport::TcpCounters::default();
        for f in &flows {
            if let Some(c) = &f.tcp {
                tcp_totals.merge(c);
            }
        }

        let mean_delay_secs = if delivered_packets == 0 {
            0.0
        } else {
            flows
                .iter()
                .map(|f| f.mean_delay_secs * f.delivered as f64)
                .sum::<f64>()
                / delivered_packets as f64
        };
        ScenarioReport {
            cov,
            poisson_cov: pcov,
            bins,
            generated_packets: self.generated,
            delivered_packets,
            loss_percent: bottleneck_queue.loss_fraction() * 100.0,
            bottleneck_queue,
            avg_queue_len,
            mean_delay_secs,
            fairness: jain_fairness(&goodputs),
            tcp_totals,
            flows,
            duration_secs: measured_window.as_secs_f64(),
            events_processed: self.sched.processed(),
            wall_clock_secs: self.wall_clock.as_secs_f64(),
            timers: TimerReport {
                stale_fired: self.stale_fired,
                cancelled_in_place: self.sched.cancelled_in_place(),
                pending_peak: self.sched.pending_peak() as u64,
            },
            dispatch: self.profile,
            event_log: self.event_log,
            hop_series: (!self.hop_occ.is_empty()).then(|| HopSeries {
                occupancy: self.hop_occ,
                utilization: self.hop_util,
            }),
            impairments: self
                .impair_rt
                .map(|rt| rt.counters)
                .unwrap_or_default(),
            audit,
            budget_exceeded: self.budget_exceeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use crate::config::Protocol;

    /// Test scenarios run with the invariant auditor on: every test run
    /// doubles as a conservation check.
    fn quick_cfg(protocol: Protocol, clients: usize, secs: u64) -> ScenarioConfig {
        ScenarioBuilder::paper()
            .topology(|t| t.clients(clients))
            .transport(|t| t.protocol(protocol))
            .instrumentation(|i| i.secs(secs).audit(true))
            .finish()
    }

    fn quick(protocol: Protocol, clients: usize, secs: u64) -> ScenarioReport {
        Scenario::run(&quick_cfg(protocol, clients, secs))
    }

    #[test]
    fn udp_delivers_everything_when_uncongested() {
        let r = quick(Protocol::Udp, 5, 20);
        // 5 clients * 10 pkt/s * 20 s = ~1000 generated; all fit in 3 Mbps.
        assert!(r.generated_packets > 800);
        assert_eq!(r.bottleneck_queue.drops_total(), 0);
        assert_eq!(r.loss_percent, 0.0);
        // Everything generated early enough arrives (tail still in flight).
        assert!(r.delivered_packets as f64 >= 0.98 * r.generated_packets as f64);
    }

    #[test]
    fn udp_cov_tracks_poisson_reference() {
        let r = quick(Protocol::Udp, 20, 60);
        let rel = (r.cov - r.poisson_cov).abs() / r.poisson_cov;
        assert!(
            rel < 0.15,
            "UDP c.o.v. {} vs Poisson {} (rel {:.2})",
            r.cov,
            r.poisson_cov,
            rel
        );
    }

    #[test]
    fn reno_uncongested_delivers_cleanly() {
        let r = quick(Protocol::Reno, 5, 20);
        assert!(r.delivered_packets as f64 >= 0.95 * r.generated_packets as f64);
        assert_eq!(r.tcp_totals.timeouts, 0, "no congestion, no timeouts");
        assert!(r.fairness > 0.95);
    }

    #[test]
    fn reno_heavily_congested_saturates_and_drops() {
        let r = quick(Protocol::Reno, 50, 30);
        // Offered 5000 pkt/s >> capacity 4166.7 pkt/s.
        assert!(r.loss_percent > 0.5, "loss {}%", r.loss_percent);
        assert!(r.tcp_totals.timeouts + r.tcp_totals.fast_retransmits > 0);
        // Delivered bounded by the bottleneck capacity.
        let cap = 4166.7 * 30.0;
        assert!(r.delivered_packets as f64 <= cap * 1.05);
        assert!(
            r.delivered_packets as f64 >= cap * 0.5,
            "delivered {} should approach capacity {}",
            r.delivered_packets,
            cap
        );
    }

    #[test]
    fn reno_congested_is_burstier_than_poisson() {
        let r = quick(Protocol::Reno, 45, 40);
        assert!(
            r.cov > 1.5 * r.poisson_cov,
            "Reno c.o.v. {} should exceed Poisson {}",
            r.cov,
            r.poisson_cov
        );
    }

    #[test]
    fn vegas_smoother_than_reno_under_congestion() {
        let reno = quick(Protocol::Reno, 45, 40);
        let vegas = quick(Protocol::Vegas, 45, 40);
        assert!(
            vegas.cov < reno.cov,
            "Vegas c.o.v. {} should be below Reno {}",
            vegas.cov,
            reno.cov
        );
    }

    #[test]
    fn same_seed_reproduces_identically() {
        let a = quick(Protocol::Reno, 10, 10);
        let b = quick(Protocol::Reno, 10, 10);
        assert_eq!(a.cov, b.cov);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = quick_cfg(Protocol::Reno, 10, 10);
        let a = Scenario::run(&cfg);
        cfg.seed = 99;
        let b = Scenario::run(&cfg);
        assert_ne!(a.generated_packets, b.generated_packets);
    }

    #[test]
    fn cwnd_traces_recorded_when_requested() {
        let mut cfg = quick_cfg(Protocol::Reno, 3, 5);
        cfg.trace_cwnd = true;
        let r = Scenario::run(&cfg);
        assert_eq!(r.flows.len(), 3);
        for f in &r.flows {
            let trace = f.cwnd_trace.as_ref().expect("trace requested");
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn red_gateway_drops_early() {
        let r = quick(Protocol::RenoRed, 50, 30);
        assert!(
            r.bottleneck_queue.drops_early + r.bottleneck_queue.drops_forced > 0,
            "RED should be dropping probabilistically under overload"
        );
    }

    #[test]
    fn report_accounting_is_internally_consistent() {
        let r = quick(Protocol::Reno, 20, 20);
        let per_flow_delivered: u64 = r.flows.iter().map(|f| f.delivered).sum();
        assert_eq!(per_flow_delivered, r.delivered_packets);
        assert!(r.tcp_totals.data_packets_sent >= r.delivered_packets);
        assert!(r.events_processed > 0);
        assert!(!r.impairments.any(), "healthy run fired no impairments");
    }

    #[test]
    fn flaps_cause_outages_and_recoveries() {
        let cfg = ScenarioBuilder::from_config(quick_cfg(Protocol::Reno, 5, 10))
            .impairments(|i| {
                i.flap(SimDuration::from_millis(500), SimDuration::from_secs(2))
            })
            .finish();
        let r = Scenario::run(&cfg);
        // Cycle 2.5 s over 10 s: downs at 2, 4.5, 7, 9.5; ups at 2.5, 5,
        // 7.5, and 10 (events at exactly the end time still dispatch).
        assert_eq!(r.impairments.link_down_events, 4);
        assert_eq!(r.impairments.link_up_events, 4);
        assert!(
            r.impairments.lost_in_flight > 0,
            "a loaded bottleneck going down catches packets mid-flight"
        );
        assert!(r.delivered_packets > 0, "flows recover between outages");
    }

    #[test]
    fn flap_trace_appears_in_the_event_log() {
        let mut cfg = ScenarioBuilder::from_config(quick_cfg(Protocol::Reno, 3, 10))
            .impairments(|i| {
                i.flap(SimDuration::from_secs(1), SimDuration::from_secs(3))
            })
            .finish();
        cfg.trace_events = true;
        let r = Scenario::run(&cfg);
        let log = r.event_log.expect("trace requested");
        let downs = log
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::LinkDown)
            .count();
        let ups = log
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::LinkUp)
            .count();
        assert_eq!(downs as u64, r.impairments.link_down_events);
        assert_eq!(ups as u64, r.impairments.link_up_events);
    }

    #[test]
    fn corruption_loses_packets_deterministically() {
        let clean = quick(Protocol::Reno, 5, 10);
        let cfg = ScenarioBuilder::from_config(quick_cfg(Protocol::Reno, 5, 10))
            .impairments(|i| i.corrupt(0.02))
            .finish();
        let a = Scenario::run(&cfg);
        let b = Scenario::run(&cfg);
        assert!(a.impairments.corrupted > 0);
        assert!(a.delivered_packets < clean.delivered_packets);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.impairments.corrupted, b.impairments.corrupted);
        assert_eq!(a.cov, b.cov);
    }

    #[test]
    fn cross_traffic_competes_and_is_counted_separately() {
        let cfg = ScenarioBuilder::from_config(quick_cfg(Protocol::Reno, 5, 10))
            .impairments(|i| i.cross(500.0, 1500))
            .finish();
        let r = Scenario::run(&cfg);
        // Poisson 500 pkt/s over 10 s: ~5000 injections.
        assert!(r.impairments.cross_injected > 4000);
        assert!(r.impairments.cross_delivered > 0);
        assert!(r.impairments.cross_delivered <= r.impairments.cross_injected);
        // Cross datagrams never appear in per-flow goodput.
        let per_flow: u64 = r.flows.iter().map(|f| f.delivered).sum();
        assert_eq!(per_flow, r.delivered_packets);
    }

    #[test]
    fn audit_passes_and_conservation_holds_exactly() {
        for protocol in [Protocol::Udp, Protocol::Reno, Protocol::VegasRed] {
            let r = quick(protocol, 20, 10);
            let audit = r.audit.as_ref().expect("audit enabled in tests");
            assert!(audit.passed(), "{protocol:?}: {audit}");
            assert_eq!(
                audit.injected,
                audit.host_delivered
                    + audit.queue_drops
                    + audit.wire_lost
                    + audit.queued_at_end
                    + audit.in_flight_at_end,
                "{protocol:?}"
            );
            assert!(audit.injected > 0);
        }
    }

    #[test]
    fn audit_passes_under_combined_impairments() {
        let cfg = ScenarioBuilder::from_config(quick_cfg(Protocol::Reno, 10, 10))
            .impairments(|i| {
                i.flap(SimDuration::from_millis(500), SimDuration::from_secs(2))
                    .corrupt(1e-3)
                    .cross(200.0, 1500)
            })
            .finish();
        let r = Scenario::run(&cfg);
        let audit = r.audit.as_ref().expect("audit enabled");
        assert!(audit.passed(), "{audit}");
        assert!(audit.wire_lost > 0, "flaps and corruption lose packets");
    }

    #[test]
    fn audit_does_not_change_the_simulation() {
        let mut cfg = quick_cfg(Protocol::Reno, 15, 10);
        cfg.audit = false;
        let plain = Scenario::run(&cfg);
        cfg.audit = true;
        let audited = Scenario::run(&cfg);
        assert!(plain.audit.is_none());
        assert_eq!(plain.cov, audited.cov);
        assert_eq!(plain.delivered_packets, audited.delivered_packets);
        assert_eq!(plain.events_processed, audited.events_processed);
    }

    #[test]
    fn event_budget_aborts_into_partial_report() {
        let cfg = quick_cfg(Protocol::Reno, 10, 30);
        let budget = RunBudget {
            max_events: Some(500),
            ..RunBudget::UNLIMITED
        };
        let mut s = Scenario::new(&cfg);
        let exceeded = s.run_with_budget(&budget);
        assert_eq!(exceeded, Some(ExceededBudget::Events));
        let r = s.into_report();
        assert_eq!(r.budget_exceeded, Some(ExceededBudget::Events));
        assert_eq!(r.events_processed, 500);
        assert!(r.to_string().contains("PARTIAL RUN"));
    }

    #[test]
    fn sim_time_budget_truncates_the_horizon() {
        let cfg = quick_cfg(Protocol::Reno, 5, 20);
        let budget = RunBudget {
            max_sim_time: Some(SimDuration::from_secs(2)),
            ..RunBudget::UNLIMITED
        };
        let mut s = Scenario::new(&cfg);
        let exceeded = s.run_with_budget(&budget);
        assert_eq!(exceeded, Some(ExceededBudget::SimTime));
        assert_eq!(s.now(), SimTime::ZERO + SimDuration::from_secs(2));
    }

    #[test]
    fn generous_budget_is_not_exceeded() {
        let cfg = quick_cfg(Protocol::Udp, 3, 2);
        let budget = RunBudget {
            max_events: Some(u64::MAX),
            max_sim_time: Some(SimDuration::from_secs(1000)),
            ..RunBudget::UNLIMITED
        };
        let mut s = Scenario::new(&cfg);
        assert_eq!(s.run_with_budget(&budget), None);
        let r = s.into_report();
        assert_eq!(r.budget_exceeded, None);
        assert!(r.delivered_packets > 0);
    }

    #[test]
    fn capacity_and_delay_variation_stretch_delays() {
        let base = quick(Protocol::Reno, 5, 10);
        let cfg = ScenarioBuilder::from_config(quick_cfg(Protocol::Reno, 5, 10))
            .impairments(|i| {
                i.capacity(0.2, SimDuration::from_secs(1))
                    .delay_variation(4.0, SimDuration::from_secs(1))
            })
            .finish();
        let r = Scenario::run(&cfg);
        assert!(
            r.mean_delay_secs > base.mean_delay_secs,
            "degraded bottleneck ({} s) should beat nominal ({} s)",
            r.mean_delay_secs,
            base.mean_delay_secs
        );
        assert!(r.delivered_packets > 0);
    }
}

