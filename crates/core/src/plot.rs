//! Minimal SVG line charts, dependency-free.
//!
//! The bench harness uses this to render each reproduced figure as an
//! actual image (`target/paper_figures/*.svg`) next to the numeric tables,
//! so the curve shapes can be compared against the paper's plots at a
//! glance. Deliberately small: line series with markers, linear or log₁₀ y
//! axis, ticks and a legend — nothing more.

use std::fmt::Write as _;

/// One named line series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Chart-wide options.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Title shown above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Render the y axis in log₁₀ (values must be positive).
    pub log_y: bool,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            log_y: false,
            width: 760,
            height: 480,
        }
    }
}

const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(0.01..100_000.0).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders `series` as an SVG document.
///
/// # Panics
///
/// Panics if `log_y` is requested and any y value is not strictly positive,
/// or if no series has any points.
pub fn render_line_chart(series: &[Series], opts: &ChartOptions) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!all.is_empty(), "nothing to plot");

    let y_of = |y: f64| -> f64 {
        if opts.log_y {
            assert!(y > 0.0, "log-scale chart requires positive y, got {y}");
            y.log10()
        } else {
            y
        }
    };

    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y_of(y));
        y_hi = y_hi.max(y_of(y));
    }
    if x_lo == x_hi {
        x_hi = x_lo + 1.0;
    }
    if y_lo == y_hi {
        y_hi = y_lo + 1.0;
    }
    // A little headroom.
    let pad = (y_hi - y_lo) * 0.05;
    let (y_lo, y_hi) = (y_lo - pad, y_hi + pad);

    let w = f64::from(opts.width);
    let h = f64::from(opts.height);
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (y_of(y) - y_lo) / (y_hi - y_lo)) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" font-family="sans-serif" font-size="12">"#,
        opts.width, opts.height
    );
    let _ = writeln!(svg, r##"<rect width="100%" height="100%" fill="white"/>"##);
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="22" text-anchor="middle" font-size="15">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        opts.title
    );

    // Axes box.
    let _ = writeln!(
        svg,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
    );

    // X ticks.
    for t in nice_ticks(x_lo, x_hi, 8) {
        let x = sx(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{}" x2="{x:.1}" y2="{}" stroke="#ccc"/>"##,
            MARGIN_T,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<text x="{x:.1}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 18.0,
            fmt_tick(t)
        );
    }
    // Y ticks (in transformed space).
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = MARGIN_T + (1.0 - (t - y_lo) / (y_hi - y_lo)) * plot_h;
        let label = if opts.log_y {
            fmt_tick(10f64.powf(t))
        } else {
            fmt_tick(t)
        };
        let _ = writeln!(
            svg,
            r##"<line x1="{}" y1="{y:.1}" x2="{}" y2="{y:.1}" stroke="#ccc"/>"##,
            MARGIN_L,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{:.1}" text-anchor="end">{label}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0
        );
    }
    // Axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 12.0,
        opts.x_label
    );
    let _ = writeln!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        opts.y_label
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for (j, &(x, y)) in s.points.iter().enumerate() {
            let _ = write!(
                path,
                "{}{:.1},{:.1} ",
                if j == 0 { "M" } else { "L" },
                sx(x),
                sy(y)
            );
        }
        let _ = writeln!(
            svg,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
        );
        for &(x, y) in &s.points {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.6" fill="{color}"/>"#,
                sx(x),
                sy(y)
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 + i as f64 * 18.0;
        let lx = MARGIN_L + plot_w + 12.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 22.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            s.label
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::new("a", vec![(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)]),
            Series::new("b", vec![(0.0, 0.5), (1.0, 0.7), (2.0, 3.0)]),
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_line_chart(&demo_series(), &ChartOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn log_scale_renders_positive_data() {
        let opts = ChartOptions {
            log_y: true,
            ..ChartOptions::default()
        };
        let svg = render_line_chart(
            &[Series::new("s", vec![(1.0, 0.01), (2.0, 10.0)])],
            &opts,
        );
        assert!(svg.contains("<path"));
    }

    #[test]
    #[should_panic(expected = "positive y")]
    fn log_scale_rejects_zero() {
        let opts = ChartOptions {
            log_y: true,
            ..ChartOptions::default()
        };
        render_line_chart(&[Series::new("s", vec![(1.0, 0.0)])], &opts);
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_chart_panics() {
        render_line_chart(&[], &ChartOptions::default());
    }

    #[test]
    fn ticks_are_round_and_cover_the_range() {
        let ticks = nice_ticks(0.0, 100.0, 8);
        assert!(ticks.len() >= 5);
        assert!(ticks.windows(2).all(|w| w[1] > w[0]));
        assert!(*ticks.first().unwrap() >= 0.0);
        assert!(*ticks.last().unwrap() <= 100.0 + 1e-9);
        // Degenerate range.
        assert_eq!(nice_ticks(5.0, 5.0, 4), vec![5.0]);
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(250_000.0), format!("{:.0e}", 250_000.0));
        assert_eq!(fmt_tick(12.0), "12");
        assert_eq!(fmt_tick(1.5), "1.5");
        assert_eq!(fmt_tick(0.044), "0.044");
    }
}
