//! Structured event tracing: a timeline of the discrete happenings the
//! paper's analysis reasons about (gateway drops, timeouts, fast
//! retransmissions, ECN window cuts).
//!
//! The paper's central mechanism is *synchronization*: many streams losing
//! packets in the same instant and backing off together. Counters alone
//! cannot show that; the event log preserves the timing so tools (the
//! `timeline` example, tests) can look at co-occurrence directly.

use tcpburst_des::{SimDuration, SimTime};
use tcpburst_net::FlowId;

/// One traced happening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The gateway's bottleneck queue dropped a packet of `flow`.
    GatewayDrop {
        /// The losing flow.
        flow: FlowId,
        /// True for RED early/forced drops, false for buffer overflow.
        early: bool,
    },
    /// `flow`'s retransmission timer expired.
    Timeout {
        /// The stalling flow.
        flow: FlowId,
    },
    /// `flow` retransmitted on duplicate ACKs.
    FastRetransmit {
        /// The recovering flow.
        flow: FlowId,
    },
    /// `flow` halved its window on an ECN echo.
    EcnCut {
        /// The reacting flow.
        flow: FlowId,
    },
    /// The bottleneck link went down (impairment schedule).
    LinkDown,
    /// The bottleneck link came back up (impairment schedule).
    LinkUp,
    /// A packet of `flow` was corrupted on the wire and lost.
    Corrupted {
        /// The losing flow.
        flow: FlowId,
    },
}

impl TraceKind {
    /// The flow the event belongs to, if it belongs to one (link-state
    /// transitions affect every flow at once and carry none).
    pub fn flow(&self) -> Option<FlowId> {
        match *self {
            TraceKind::GatewayDrop { flow, .. }
            | TraceKind::Timeout { flow }
            | TraceKind::FastRetransmit { flow }
            | TraceKind::EcnCut { flow }
            | TraceKind::Corrupted { flow } => Some(flow),
            TraceKind::LinkDown | TraceKind::LinkUp => None,
        }
    }
}

/// A timestamped [`TraceKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded, append-only event log.
///
/// Recording stops silently at the capacity (the count of suppressed events
/// is kept) so a pathological run cannot exhaust memory.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    suppressed: u64,
}

impl EventLog {
    /// Creates a log holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: Vec::new(),
            capacity,
            suppressed: 0,
        }
    }

    /// Appends an event (or counts it as suppressed past the cap).
    pub fn record(&mut self, time: SimTime, kind: TraceKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { time, kind });
        } else {
            self.suppressed += 1;
        }
    }

    /// The recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that arrived after the log filled up.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Counts events matching `pred` in consecutive bins of `bin` width over
    /// `[0, end)`.
    pub fn binned_counts<F: Fn(&TraceKind) -> bool>(
        &self,
        bin: SimDuration,
        end: SimTime,
        pred: F,
    ) -> Vec<u64> {
        assert!(!bin.is_zero(), "bin width must be positive");
        let n = end.saturating_since(SimTime::ZERO) / bin;
        let mut out = vec![0u64; n as usize];
        for ev in &self.events {
            if !pred(&ev.kind) {
                continue;
            }
            let idx = ev.time.saturating_since(SimTime::ZERO) / bin;
            if (idx as usize) < out.len() {
                out[idx as usize] += 1;
            }
        }
        out
    }

    /// How many *distinct flows* take a loss-response event (timeout or fast
    /// retransmit) within each window of `bin` — the paper's
    /// synchronization signal: values near the flow count mean the streams
    /// are cutting together.
    pub fn loss_response_synchrony(&self, bin: SimDuration, end: SimTime) -> Vec<usize> {
        assert!(!bin.is_zero(), "bin width must be positive");
        let n = end.saturating_since(SimTime::ZERO) / bin;
        let mut flows: Vec<std::collections::BTreeSet<FlowId>> =
            vec![std::collections::BTreeSet::new(); n as usize];
        for ev in &self.events {
            let responding = matches!(
                ev.kind,
                TraceKind::Timeout { .. } | TraceKind::FastRetransmit { .. }
            );
            if !responding {
                continue;
            }
            let Some(flow) = ev.kind.flow() else { continue };
            let idx = ev.time.saturating_since(SimTime::ZERO) / bin;
            if (idx as usize) < flows.len() {
                flows[idx as usize].insert(flow);
            }
        }
        flows.into_iter().map(|s| s.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_in_order_up_to_capacity() {
        let mut log = EventLog::with_capacity(2);
        log.record(at(1), TraceKind::Timeout { flow: FlowId(0) });
        log.record(at(2), TraceKind::Timeout { flow: FlowId(1) });
        log.record(at(3), TraceKind::Timeout { flow: FlowId(2) });
        assert_eq!(log.len(), 2);
        assert_eq!(log.suppressed(), 1);
        assert_eq!(log.events()[0].time, at(1));
    }

    #[test]
    fn binned_counts_filter_and_bin() {
        let mut log = EventLog::with_capacity(100);
        log.record(at(5), TraceKind::GatewayDrop { flow: FlowId(0), early: false });
        log.record(at(15), TraceKind::Timeout { flow: FlowId(0) });
        log.record(at(16), TraceKind::GatewayDrop { flow: FlowId(1), early: true });
        let drops = log.binned_counts(SimDuration::from_millis(10), at(30), |k| {
            matches!(k, TraceKind::GatewayDrop { .. })
        });
        assert_eq!(drops, vec![1, 1, 0]);
        let timeouts = log.binned_counts(SimDuration::from_millis(10), at(30), |k| {
            matches!(k, TraceKind::Timeout { .. })
        });
        assert_eq!(timeouts, vec![0, 1, 0]);
    }

    #[test]
    fn synchrony_counts_distinct_flows_only() {
        let mut log = EventLog::with_capacity(100);
        // Three responses from two flows in the first window.
        log.record(at(1), TraceKind::Timeout { flow: FlowId(0) });
        log.record(at(2), TraceKind::FastRetransmit { flow: FlowId(1) });
        log.record(at(3), TraceKind::Timeout { flow: FlowId(0) });
        // A drop is not a response event.
        log.record(at(4), TraceKind::GatewayDrop { flow: FlowId(5), early: false });
        let sync = log.loss_response_synchrony(SimDuration::from_millis(10), at(20));
        assert_eq!(sync, vec![2, 0]);
    }

    #[test]
    fn kind_exposes_flow() {
        assert_eq!(
            TraceKind::EcnCut { flow: FlowId(7) }.flow(),
            Some(FlowId(7))
        );
        assert_eq!(
            TraceKind::Corrupted { flow: FlowId(3) }.flow(),
            Some(FlowId(3))
        );
        assert_eq!(TraceKind::LinkDown.flow(), None);
        assert_eq!(TraceKind::LinkUp.flow(), None);
    }

    #[test]
    fn link_transitions_are_binnable_but_not_synchrony() {
        let mut log = EventLog::with_capacity(100);
        log.record(at(1), TraceKind::LinkDown);
        log.record(at(4), TraceKind::LinkUp);
        log.record(at(2), TraceKind::Timeout { flow: FlowId(0) });
        let downs = log.binned_counts(SimDuration::from_millis(10), at(10), |k| {
            matches!(k, TraceKind::LinkDown | TraceKind::LinkUp)
        });
        assert_eq!(downs, vec![2]);
        let sync = log.loss_response_synchrony(SimDuration::from_millis(10), at(10));
        assert_eq!(sync, vec![1]);
    }
}
