//! Exact, dependency-free serialization of a [`ScenarioReport`].
//!
//! This codec is the persistence format of the content-addressed result
//! store ([`crate::store`]) *and* the payload format of the worker-process
//! protocol ([`crate::workers`]): one serializer, so a report loaded from
//! cache and a report streamed back from a worker process are
//! reconstructed by the same code path and are **bit-identical** to the
//! freshly computed original.
//!
//! Floating-point fields are written as the 16-hex-digit form of
//! [`f64::to_bits`] and parsed back with [`f64::from_bits`] — exact by
//! construction, with no dependence on shortest-round-trip formatting.
//! Everything else is decimal integers on labelled lines, so a truncated
//! or hand-mangled payload fails to parse instead of silently decoding to
//! a different report.
//!
//! ## What cannot be encoded
//!
//! Three report shapes are refused (`encode` returns `None`) rather than
//! lossily approximated, and the callers treat them as "not cacheable,
//! not worker-dispatchable":
//!
//! * a populated [`event_log`](ScenarioReport::event_log) or any per-flow
//!   [`cwnd_trace`](crate::FlowReport::cwnd_trace) — trace payloads are
//!   diagnostic firehoses, not figure inputs;
//! * a set [`budget_exceeded`](ScenarioReport::budget_exceeded) — partial
//!   diagnostic reports must never be served as completed results;
//! * a *failed* audit — [`InvariantViolation`](crate::InvariantViolation)
//!   carries `&'static str` invariant names that cannot round-trip
//!   through a file (and a violated run has no business in a cache).

use tcpburst_des::SimDuration;
use tcpburst_net::QueueStats;
use tcpburst_stats::BinCounts;
use tcpburst_transport::TcpCounters;

use crate::profile::{DispatchProfile, EventClassStats, TimerReport};
use crate::report::{FlowReport, ImpairmentReport, ScenarioReport};
use crate::supervise::AuditReport;

/// Format tag on the first payload line; bumped together with
/// [`ENGINE_SCHEMA_VERSION`](crate::store::ENGINE_SCHEMA_VERSION).
const MAGIC: &str = "tcpburst-report";

fn f2s(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn s2f(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn push_tcp(out: &mut String, t: &TcpCounters) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{} {} {} {} {} {} {} {} {} {}",
        t.data_packets_sent,
        t.retransmits,
        t.timeouts,
        t.fast_retransmits,
        t.acks_received,
        t.dup_acks_received,
        t.rtt_samples,
        t.app_packets_submitted,
        t.peak_backlog,
        t.ecn_window_cuts,
    );
}

fn parse_tcp(tokens: &mut std::str::SplitWhitespace<'_>) -> Option<TcpCounters> {
    let mut next = || tokens.next()?.parse::<u64>().ok();
    Some(TcpCounters {
        data_packets_sent: next()?,
        retransmits: next()?,
        timeouts: next()?,
        fast_retransmits: next()?,
        acks_received: next()?,
        dup_acks_received: next()?,
        rtt_samples: next()?,
        app_packets_submitted: next()?,
        peak_backlog: next()?,
        ecn_window_cuts: next()?,
    })
}

/// True when `report` round-trips losslessly through this codec (see the
/// module docs for the three refused shapes).
pub fn encodable(report: &ScenarioReport) -> bool {
    report.event_log.is_none()
        && report.hop_series.is_none()
        && report.budget_exceeded.is_none()
        && report.flows.iter().all(|f| f.cwnd_trace.is_none())
        && report.audit.as_ref().map_or(true, |a| a.passed())
}

/// Serializes `report` to the line-based text payload, or `None` if the
/// report carries state the codec refuses to encode ([`encodable`]).
pub fn encode(report: &ScenarioReport) -> Option<String> {
    use std::fmt::Write as _;
    if !encodable(report) {
        return None;
    }
    let mut out = String::with_capacity(512 + report.bins.len() * 4 + report.flows.len() * 96);
    let _ = writeln!(out, "{MAGIC} 2");
    let _ = writeln!(out, "cov {} {}", f2s(report.cov), f2s(report.poisson_cov));
    let _ = write!(
        out,
        "bins {} {}",
        report.bins.bin_width().as_nanos(),
        report.bins.len()
    );
    for &c in report.bins.counts() {
        let _ = write!(out, " {c}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "pkts {} {} {}",
        report.generated_packets,
        report.delivered_packets,
        f2s(report.loss_percent)
    );
    let q = &report.bottleneck_queue;
    let _ = writeln!(
        out,
        "queue {} {} {} {} {} {} {}",
        q.arrivals, q.drops_full, q.drops_early, q.drops_forced, q.departures, q.peak_len,
        q.ecn_marks
    );
    let _ = writeln!(
        out,
        "aggr {} {} {}",
        f2s(report.avg_queue_len),
        f2s(report.mean_delay_secs),
        f2s(report.fairness)
    );
    out.push_str("tcp ");
    push_tcp(&mut out, &report.tcp_totals);
    out.push('\n');
    let _ = writeln!(
        out,
        "run {} {} {}",
        f2s(report.duration_secs),
        report.events_processed,
        f2s(report.wall_clock_secs)
    );
    let t = &report.timers;
    let _ = writeln!(
        out,
        "timers {} {} {}",
        t.stale_fired, t.cancelled_in_place, t.pending_peak
    );
    let d = &report.dispatch;
    let _ = writeln!(
        out,
        "dispatch {} {} {} {} {} {} {} {} {} {}",
        d.generate.count,
        d.generate.nanos,
        d.net_tx.count,
        d.net_tx.nanos,
        d.net_delivery.count,
        d.net_delivery.nanos,
        d.transport.count,
        d.transport.nanos,
        d.impair.count,
        d.impair.nanos
    );
    let i = &report.impairments;
    let _ = writeln!(
        out,
        "impair {} {} {} {} {} {}",
        i.link_down_events,
        i.link_up_events,
        i.lost_in_flight,
        i.corrupted,
        i.cross_injected,
        i.cross_delivered
    );
    match &report.audit {
        None => {
            let _ = writeln!(out, "audit -");
        }
        // encodable() guaranteed the audit passed: no violations to carry.
        Some(a) => {
            let _ = writeln!(
                out,
                "audit {} {} {} {} {} {}",
                a.injected,
                a.host_delivered,
                a.queue_drops,
                a.wire_lost,
                a.queued_at_end,
                a.in_flight_at_end
            );
        }
    }
    let _ = writeln!(out, "flows {}", report.flows.len());
    for f in &report.flows {
        let _ = write!(
            out,
            "f {} {} {} ",
            f.packets_sent,
            f.delivered,
            f2s(f.mean_delay_secs)
        );
        match &f.tcp {
            None => out.push('-'),
            Some(t) => push_tcp(&mut out, t),
        }
        out.push('\n');
    }
    out.push_str("end\n");
    Some(out)
}

/// Parses a payload produced by [`encode`] back into the bit-identical
/// [`ScenarioReport`]; `None` for anything malformed, truncated, or from
/// a different codec version.
pub fn decode(payload: &str) -> Option<ScenarioReport> {
    // `str::lines` would accept a final line with its newline cut off, so
    // a payload truncated by exactly one byte could still parse; encode
    // always terminates with a newline, so its absence is truncation.
    if !payload.ends_with('\n') {
        return None;
    }
    let mut lines = payload.lines();
    // A tagged line: the parser names the line it expects, so a missing or
    // reordered line fails here instead of mis-assigning fields.
    let mut expect = |tag: &str| -> Option<std::str::SplitWhitespace<'_>> {
        let line = lines.next()?;
        let mut tokens = line.split_whitespace();
        if tokens.next()? != tag {
            return None;
        }
        Some(tokens)
    };

    let mut header = expect(MAGIC)?;
    if header.next()?.parse::<u32>().ok()? != 2 || header.next().is_some() {
        return None;
    }

    let mut cov = expect("cov")?;
    let (cov, poisson_cov) = (s2f(cov.next()?)?, s2f(cov.next()?)?);

    let mut bins = expect("bins")?;
    let bin_nanos: u64 = bins.next()?.parse().ok()?;
    let bin_count: usize = bins.next()?.parse().ok()?;
    let counts: Vec<u64> = bins.map(str::parse).collect::<Result<_, _>>().ok()?;
    if counts.len() != bin_count || bin_nanos == 0 {
        return None;
    }
    let bins = BinCounts::from_raw(counts, SimDuration::from_nanos(bin_nanos));

    let mut pkts = expect("pkts")?;
    let generated_packets: u64 = pkts.next()?.parse().ok()?;
    let delivered_packets: u64 = pkts.next()?.parse().ok()?;
    let loss_percent = s2f(pkts.next()?)?;

    let mut q = expect("queue")?;
    let mut qn = || q.next()?.parse::<u64>().ok();
    let bottleneck_queue = QueueStats {
        arrivals: qn()?,
        drops_full: qn()?,
        drops_early: qn()?,
        drops_forced: qn()?,
        departures: qn()?,
        peak_len: qn()? as usize,
        ecn_marks: qn()?,
    };

    let mut aggr = expect("aggr")?;
    let avg_queue_len = s2f(aggr.next()?)?;
    let mean_delay_secs = s2f(aggr.next()?)?;
    let fairness = s2f(aggr.next()?)?;

    let tcp_totals = parse_tcp(&mut expect("tcp")?)?;

    let mut run = expect("run")?;
    let duration_secs = s2f(run.next()?)?;
    let events_processed: u64 = run.next()?.parse().ok()?;
    let wall_clock_secs = s2f(run.next()?)?;

    let mut tl = expect("timers")?;
    let timers = TimerReport {
        stale_fired: tl.next()?.parse().ok()?,
        cancelled_in_place: tl.next()?.parse().ok()?,
        pending_peak: tl.next()?.parse().ok()?,
    };

    let mut dl = expect("dispatch")?;
    let mut class = || -> Option<EventClassStats> {
        Some(EventClassStats {
            count: dl.next()?.parse().ok()?,
            nanos: dl.next()?.parse().ok()?,
        })
    };
    let dispatch = DispatchProfile {
        generate: class()?,
        net_tx: class()?,
        net_delivery: class()?,
        transport: class()?,
        impair: class()?,
    };

    let mut il = expect("impair")?;
    let mut inext = || il.next()?.parse::<u64>().ok();
    let impairments = ImpairmentReport {
        link_down_events: inext()?,
        link_up_events: inext()?,
        lost_in_flight: inext()?,
        corrupted: inext()?,
        cross_injected: inext()?,
        cross_delivered: inext()?,
    };

    let mut al = expect("audit")?;
    let first = al.next()?;
    let audit = if first == "-" {
        None
    } else {
        let mut anext = || al.next()?.parse::<u64>().ok();
        Some(AuditReport {
            injected: first.parse().ok()?,
            host_delivered: anext()?,
            queue_drops: anext()?,
            wire_lost: anext()?,
            queued_at_end: anext()?,
            in_flight_at_end: anext()?,
            violations: Vec::new(),
        })
    };

    let mut fl = expect("flows")?;
    let flow_count: usize = fl.next()?.parse().ok()?;
    let mut flows = Vec::with_capacity(flow_count);
    for _ in 0..flow_count {
        let mut f = expect("f")?;
        let packets_sent: u64 = f.next()?.parse().ok()?;
        let delivered: u64 = f.next()?.parse().ok()?;
        let mean_delay_secs = s2f(f.next()?)?;
        let tcp = {
            let mut peek = f.clone();
            if peek.next()? == "-" {
                f = peek;
                None
            } else {
                Some(parse_tcp(&mut f)?)
            }
        };
        if f.next().is_some() {
            return None;
        }
        flows.push(FlowReport {
            packets_sent,
            delivered,
            mean_delay_secs,
            tcp,
            cwnd_trace: None,
        });
    }

    // The terminator proves the payload was not truncated mid-stream.
    if expect("end").is_none() || lines.next().is_some() {
        return None;
    }

    Some(ScenarioReport {
        cov,
        poisson_cov,
        bins,
        generated_packets,
        delivered_packets,
        loss_percent,
        bottleneck_queue,
        avg_queue_len,
        mean_delay_secs,
        fairness,
        tcp_totals,
        flows,
        duration_secs,
        events_processed,
        wall_clock_secs,
        timers,
        dispatch,
        event_log: None,
        hop_series: None,
        impairments,
        audit,
        budget_exceeded: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::ExceededBudget;
    use tcpburst_stats::BinnedCounter;
    use tcpburst_des::SimTime;

    fn sample_report() -> ScenarioReport {
        let mut probe = BinnedCounter::new(SimDuration::from_millis(44));
        for ms in [10u64, 50, 60, 200] {
            probe.record(SimTime::from_millis(ms));
        }
        ScenarioReport {
            cov: 1.234_567_890_123_456_7,
            poisson_cov: 0.1 + 0.2,
            bins: probe.finish(SimTime::from_millis(264)),
            generated_packets: 123_456,
            delivered_packets: 120_000,
            loss_percent: 2.796_523e-3,
            bottleneck_queue: QueueStats {
                arrivals: 1000,
                drops_full: 3,
                drops_early: 2,
                drops_forced: 1,
                departures: 994,
                peak_len: 17,
                ecn_marks: 5,
            },
            avg_queue_len: 3.75,
            mean_delay_secs: 0.046_123,
            fairness: 0.987_654_321,
            tcp_totals: TcpCounters {
                data_packets_sent: 500,
                retransmits: 4,
                timeouts: 2,
                fast_retransmits: 2,
                acks_received: 480,
                dup_acks_received: 12,
                rtt_samples: 450,
                app_packets_submitted: 510,
                peak_backlog: 9,
                ecn_window_cuts: 1,
            },
            flows: vec![
                FlowReport {
                    packets_sent: 250,
                    delivered: 240,
                    mean_delay_secs: 0.044,
                    tcp: Some(TcpCounters {
                        data_packets_sent: 250,
                        ..TcpCounters::default()
                    }),
                    cwnd_trace: None,
                },
                FlowReport {
                    packets_sent: 250,
                    delivered: 245,
                    mean_delay_secs: f64::NAN,
                    tcp: None,
                    cwnd_trace: None,
                },
            ],
            duration_secs: 30.0,
            events_processed: 987_654,
            wall_clock_secs: 0.125,
            timers: TimerReport {
                stale_fired: 7,
                cancelled_in_place: 123,
                pending_peak: 456,
            },
            dispatch: DispatchProfile {
                generate: EventClassStats { count: 11, nanos: 0 },
                net_tx: EventClassStats { count: 22, nanos: 0 },
                net_delivery: EventClassStats { count: 33, nanos: 0 },
                transport: EventClassStats { count: 44, nanos: 0 },
                impair: EventClassStats { count: 0, nanos: 0 },
            },
            event_log: None,
            hop_series: None,
            impairments: ImpairmentReport {
                link_down_events: 1,
                link_up_events: 1,
                lost_in_flight: 6,
                corrupted: 2,
                cross_injected: 100,
                cross_delivered: 98,
            },
            audit: Some(AuditReport {
                injected: 1100,
                host_delivered: 1090,
                queue_drops: 6,
                wire_lost: 2,
                queued_at_end: 1,
                in_flight_at_end: 1,
                violations: Vec::new(),
            }),
            budget_exceeded: None,
        }
    }

    fn assert_bit_identical(a: &ScenarioReport, b: &ScenarioReport) {
        assert_eq!(a.cov.to_bits(), b.cov.to_bits());
        assert_eq!(a.poisson_cov.to_bits(), b.poisson_cov.to_bits());
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.generated_packets, b.generated_packets);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.loss_percent.to_bits(), b.loss_percent.to_bits());
        assert_eq!(a.bottleneck_queue, b.bottleneck_queue);
        assert_eq!(a.avg_queue_len.to_bits(), b.avg_queue_len.to_bits());
        assert_eq!(a.mean_delay_secs.to_bits(), b.mean_delay_secs.to_bits());
        assert_eq!(a.fairness.to_bits(), b.fairness.to_bits());
        assert_eq!(a.tcp_totals, b.tcp_totals);
        assert_eq!(a.flows.len(), b.flows.len());
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.packets_sent, fb.packets_sent);
            assert_eq!(fa.delivered, fb.delivered);
            assert_eq!(fa.mean_delay_secs.to_bits(), fb.mean_delay_secs.to_bits());
            assert_eq!(fa.tcp, fb.tcp);
            assert!(fb.cwnd_trace.is_none());
        }
        assert_eq!(a.duration_secs.to_bits(), b.duration_secs.to_bits());
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.wall_clock_secs.to_bits(), b.wall_clock_secs.to_bits());
        assert_eq!(a.timers, b.timers);
        assert_eq!(a.dispatch, b.dispatch);
        assert_eq!(a.impairments, b.impairments);
        assert_eq!(a.audit, b.audit);
        assert!(b.event_log.is_none());
        assert!(b.budget_exceeded.is_none());
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let report = sample_report();
        let payload = encode(&report).expect("encodable");
        let decoded = decode(&payload).expect("decodes");
        assert_bit_identical(&report, &decoded);
        // Re-encoding the decoded report reproduces the payload bytes.
        assert_eq!(encode(&decoded).expect("encodable"), payload);
    }

    #[test]
    fn real_scenario_round_trips() {
        let cfg = crate::ScenarioBuilder::paper()
            .topology(|t| t.clients(4))
            .instrumentation(|i| i.secs(2).audit(true))
            .finish();
        let report = crate::Scenario::run(&cfg);
        let payload = encode(&report).expect("encodable");
        let decoded = decode(&payload).expect("decodes");
        assert_bit_identical(&report, &decoded);
    }

    #[test]
    fn every_truncation_fails_to_parse() {
        let payload = encode(&sample_report()).expect("encodable");
        for cut in 0..payload.len() {
            assert!(
                decode(&payload[..cut]).is_none(),
                "truncation at byte {cut} decoded"
            );
        }
        // Trailing garbage is rejected too.
        let mut extended = payload.clone();
        extended.push_str("trailing\n");
        assert!(decode(&extended).is_none());
    }

    #[test]
    fn unencodable_shapes_are_refused() {
        let mut r = sample_report();
        r.budget_exceeded = Some(ExceededBudget::Events);
        assert!(encode(&r).is_none());

        let mut r = sample_report();
        r.audit.as_mut().expect("has audit").violations.push(
            crate::supervise::InvariantViolation {
                invariant: "packet-conservation",
                detail: "off by one".into(),
            },
        );
        assert!(encode(&r).is_none());

        let mut r = sample_report();
        r.flows[0].cwnd_trace = Some(tcpburst_stats::TimeSeries::new());
        assert!(encode(&r).is_none());
    }
}
