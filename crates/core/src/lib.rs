//! # tcpburst-core
//!
//! The experiment harness reproducing *"On the Burstiness of the TCP
//! Congestion-Control Mechanism in a Distributed Computing System"*
//! (Tinnakornsrisuphap, Feng & Philp, ICDCS 2000).
//!
//! The paper's question: does TCP *modulate* smooth application traffic
//! into bursty network traffic? Its instrument: the coefficient of
//! variation (c.o.v.) of the number of packets arriving at a shared gateway
//! per round-trip propagation delay, compared against the analytic c.o.v.
//! of the generating aggregate Poisson process.
//!
//! This crate wires the substrates together into the paper's client /
//! gateway / server simulation and exposes:
//!
//! * [`ScenarioConfig`] / [`Scenario`] — build and run one simulation
//!   (N clients pushing Poisson traffic over a chosen transport through a
//!   FIFO or RED gateway) and collect a [`ScenarioReport`],
//! * [`Protocol`] — the paper's seven protocol configurations (Poisson
//!   reference, UDP, Reno, Reno/RED, Vegas, Vegas/RED, Reno/DelayAck),
//! * [`experiments`] — one generator per table/figure of the paper's
//!   evaluation (Figure 2 c.o.v., Figure 3 throughput, Figure 4 loss,
//!   Figures 5–12 congestion-window evolution, Figure 13 timeout ratio),
//!   each returning printable rows,
//! * [`PaperParams`] — the reconstructed Table 1,
//! * [`parallel`] — the deterministic multi-core fan-out engine behind
//!   [`experiments::Sweep`] and [`ReplicatedSweep`]: any `--jobs` value
//!   produces bit-identical reports,
//! * [`store`] — the content-addressed result store: a finished grid
//!   point is persisted under a digest of its full configuration and is
//!   never recomputed,
//! * [`workers`] — multi-process sweep execution: grid points sharded
//!   across crash-isolated worker processes, byte-identical to the
//!   in-process run.
//!
//! Scenarios are assembled with the staged [`ScenarioBuilder`]
//! (topology → workload → transport → impairments → instrumentation);
//! the same stages drive the `tcpburst` CLI's flag handling, and the
//! [`Impairments`] schedule injects deterministic faults (link flaps,
//! corruption, cross-traffic) without breaking the bit-identical
//! parallel-sweep contract.
//!
//! ## Quickstart
//!
//! ```
//! use tcpburst_core::{Protocol, Scenario, ScenarioBuilder};
//!
//! // 20 Reno clients for 20 simulated seconds (the paper runs 200 s).
//! let cfg = ScenarioBuilder::paper()
//!     .topology(|t| t.clients(20))
//!     .transport(|t| t.protocol(Protocol::Reno))
//!     .instrumentation(|i| i.secs(20))
//!     .finish();
//! let report = Scenario::run(&cfg);
//! assert!(report.delivered_packets > 0);
//! println!("c.o.v. = {:.3} (Poisson reference {:.3})",
//!          report.cov, report.poisson_cov);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod chaos;
pub mod codec;
mod config;
pub mod daemon;
mod event;
pub mod experiments;
pub mod net_transport;
pub mod parallel;
pub mod plot;
mod profile;
mod replicate;
mod report;
mod scenario;
mod shard;
pub mod store;
pub mod supervise;
mod trace;
pub mod workers;

pub use chaos::{ChaosAction, ChaosSchedule, ChaosTransport, CHAOS_ENV, CHAOS_ID_ENV};
pub use daemon::{
    remote_worker_main, submit_job, ExecTuning, Gateway, JobConn, RemoteExec, WorkerOptions,
    DEFAULT_TOKEN,
};
pub use net_transport::{
    encode_frame, FrameError, FrameTransport, PipeTransport, TcpTransport, MAX_FRAME,
};

pub use builder::{
    BuilderStage, CliFlag, ImpairmentStage, InstrumentationStage, ScenarioBuilder, TopologyStage,
    TransportStage, WorkloadStage,
};
pub use config::{
    ConfigError, GatewayKind, PaperParams, Protocol, ScenarioConfig, SourceKind, TopoKind,
    TransportKind,
};
pub use event::{Event, ImpairEvent};
pub use parallel::{
    available_jobs, run_indexed, run_indexed_partial, run_indexed_partial_with, PartialResults,
};
pub use profile::{DispatchProfile, EventClassStats, TimerReport};
pub use replicate::{ReplicatedCell, ReplicatedSweep};
pub use report::{FlowReport, HopSeries, ImpairmentReport, ScenarioReport};
pub use scenario::Scenario;
pub use store::{
    point_digest, run_point_cached, sweep_digest, Digest, ResultStore, StoreStats,
    ENGINE_SCHEMA_VERSION,
};
pub use supervise::{
    run_point, AuditReport, ExceededBudget, FailurePolicy, InvariantViolation, JournalEntry,
    JournalFormat, PointFailure, PointOutcome, RunBudget, RunError, RunJournal, SupervisedSweep,
    Supervisor, SweepPoint, SweepSupervisor,
};
pub use trace::{EventLog, TraceEvent, TraceKind};
pub use workers::{worker_main, PointSpec, RobustnessCounters, WorkerCommand, WorkerPool};

pub use tcpburst_net::Impairments;
