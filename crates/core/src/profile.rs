//! Per-event-class dispatch profiling and timer-cancellation accounting.
//!
//! The scenario's hot loop classifies every dispatched event
//! (generation, link transmission, link delivery, transport timer) and
//! counts it; with the `event-timing` cargo feature enabled it also accrues
//! per-class wall-clock nanoseconds from a [`std::time::Instant`] pair per
//! dispatch. Timing is off by default because reading the host clock twice
//! per event costs more than dispatching many of the events being measured —
//! counts alone are free and always on.
//!
//! Nothing here feeds back into the simulation: profiling is observation
//! only, so enabling or disabling the feature cannot change any simulated
//! result (the determinism contract in `tests/parallel_determinism.rs`).

use std::fmt;

/// Dispatch count and (feature-gated) accumulated time for one event class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventClassStats {
    /// Events of this class dispatched.
    pub count: u64,
    /// Wall-clock nanoseconds spent in handlers of this class; stays zero
    /// unless the crate is built with the `event-timing` feature.
    pub nanos: u64,
}

impl EventClassStats {
    /// Mean handler cost in nanoseconds (zero without `event-timing`).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.nanos as f64 / self.count as f64
        }
    }
}

/// Where the simulation's dispatch work went, by event class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchProfile {
    /// Application packet-generation events.
    pub generate: EventClassStats,
    /// Link transmission-complete events.
    pub net_tx: EventClassStats,
    /// Link delivery events (propagation done, packet at next hop).
    pub net_delivery: EventClassStats,
    /// Transport timer firings (RTO, delayed ACK).
    pub transport: EventClassStats,
    /// Impairment-schedule events (flap/capacity/delay toggles, cross
    /// arrivals); zero on unimpaired runs.
    pub impair: EventClassStats,
}

impl DispatchProfile {
    /// Accumulates another profile into this one — the sharded engine sums
    /// its per-domain profiles into the report's total.
    pub fn merge(&mut self, other: &DispatchProfile) {
        for (mine, theirs) in [
            (&mut self.generate, &other.generate),
            (&mut self.net_tx, &other.net_tx),
            (&mut self.net_delivery, &other.net_delivery),
            (&mut self.transport, &other.transport),
            (&mut self.impair, &other.impair),
        ] {
            mine.count += theirs.count;
            mine.nanos += theirs.nanos;
        }
    }

    /// Total events dispatched across all classes.
    pub fn total(&self) -> u64 {
        self.generate.count
            + self.net_tx.count
            + self.net_delivery.count
            + self.transport.count
            + self.impair.count
    }
}

impl fmt::Display for DispatchProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let timed = self.generate.nanos
            + self.net_tx.nanos
            + self.net_delivery.nanos
            + self.transport.nanos
            > 0;
        write!(
            f,
            "dispatch: generate {}, net-tx {}, net-delivery {}, transport {}",
            self.generate.count, self.net_tx.count, self.net_delivery.count, self.transport.count
        )?;
        if self.impair.count > 0 {
            write!(f, ", impair {}", self.impair.count)?;
        }
        if timed {
            write!(
                f,
                " (mean ns: {:.0}/{:.0}/{:.0}/{:.0})",
                self.generate.mean_nanos(),
                self.net_tx.mean_nanos(),
                self.net_delivery.mean_nanos(),
                self.transport.mean_nanos()
            )?;
        }
        Ok(())
    }
}

/// How much dead-timer traffic the run carried, and how much the eager
/// cancellation path eliminated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerReport {
    /// Timer events that reached dispatch but were stale (superseded by a
    /// re-arm or disarm after the queue deletion missed). Near zero on the
    /// calendar backend; on the binary-heap backend this is every
    /// superseded RTO/delayed-ACK firing.
    pub stale_fired: u64,
    /// Scheduled events deleted from the queue in place before firing.
    pub cancelled_in_place: u64,
    /// High-water mark of simultaneously pending events.
    pub pending_peak: u64,
}

impl fmt::Display for TimerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timers: {} cancelled in place, {} stale fired, pending peak {}",
            self.cancelled_in_place, self.stale_fired, self.pending_peak
        )
    }
}

/// A start timestamp for one dispatch, compiled to nothing unless the
/// `event-timing` feature is on.
#[derive(Debug)]
pub(crate) struct ProfClock {
    #[cfg(feature = "event-timing")]
    start: std::time::Instant,
}

impl ProfClock {
    #[inline]
    pub(crate) fn start() -> Self {
        ProfClock {
            #[cfg(feature = "event-timing")]
            start: std::time::Instant::now(),
        }
    }

    /// Charges this dispatch to `stats`.
    #[inline]
    pub(crate) fn charge(self, stats: &mut EventClassStats) {
        stats.count += 1;
        #[cfg(feature = "event-timing")]
        {
            stats.nanos += self.start.elapsed().as_nanos() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_charges_counts() {
        let mut stats = EventClassStats::default();
        ProfClock::start().charge(&mut stats);
        ProfClock::start().charge(&mut stats);
        assert_eq!(stats.count, 2);
        #[cfg(not(feature = "event-timing"))]
        assert_eq!(stats.nanos, 0);
    }

    #[test]
    fn mean_nanos_handles_zero_count() {
        assert_eq!(EventClassStats::default().mean_nanos(), 0.0);
    }

    #[test]
    fn profile_totals_and_displays() {
        let mut p = DispatchProfile::default();
        p.generate.count = 3;
        p.net_delivery.count = 7;
        assert_eq!(p.total(), 10);
        let text = p.to_string();
        assert!(text.contains("generate 3"));
        assert!(text.contains("net-delivery 7"));
    }

    #[test]
    fn timer_report_displays() {
        let t = TimerReport {
            stale_fired: 1,
            cancelled_in_place: 42,
            pending_peak: 9,
        };
        let text = t.to_string();
        assert!(text.contains("42 cancelled in place"));
        assert!(text.contains("pending peak 9"));
    }
}
