//! The unified event type driving one scenario's simulation loop.

use tcpburst_net::NetEvent;
use tcpburst_transport::TransportEvent;

/// Everything that can happen in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A network event (link transmission completion or packet delivery).
    Net(NetEvent),
    /// A transport timer (RTO or delayed ACK).
    Transport(TransportEvent),
    /// Client `client`'s application generates its next packet.
    Generate {
        /// Index of the generating client.
        client: u32,
    },
    /// A scheduled impairment action (see [`ImpairEvent`]).
    Impair(ImpairEvent),
    /// Sample every instrumented hop's queue backlog and utilization
    /// (scheduled once per c.o.v. bin when `trace_hops` is on).
    HopSample,
}

/// Impairment-schedule actions, executed as ordinary scheduler events so
/// that fault injection shares the deterministic `(time, seq)` total order
/// with everything else.
///
/// Each toggle variant advances a [`tcpburst_des::PhaseCycle`] and
/// reschedules itself for the new phase's hold time; `CrossArrival` injects
/// one background datagram and draws the next inter-arrival gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpairEvent {
    /// Toggle the bottleneck link between up and down.
    FlapToggle,
    /// Toggle the bottleneck bandwidth between nominal and scaled.
    CapacityToggle,
    /// Toggle the bottleneck propagation delay between nominal and scaled.
    DelayToggle,
    /// Inject one background cross-traffic datagram at the gateway.
    CrossArrival,
}

impl From<NetEvent> for Event {
    fn from(ev: NetEvent) -> Self {
        Event::Net(ev)
    }
}

impl From<TransportEvent> for Event {
    fn from(ev: TransportEvent) -> Self {
        Event::Transport(ev)
    }
}

impl From<ImpairEvent> for Event {
    fn from(ev: ImpairEvent) -> Self {
        Event::Impair(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpburst_net::LinkId;

    #[test]
    fn conversions_wrap_the_right_variant() {
        let n: Event = NetEvent::TxComplete { link: LinkId(3), epoch: 0 }.into();
        assert!(matches!(
            n,
            Event::Net(NetEvent::TxComplete { link: LinkId(3), epoch: 0 })
        ));
        let i: Event = ImpairEvent::FlapToggle.into();
        assert!(matches!(i, Event::Impair(ImpairEvent::FlapToggle)));
    }
}
