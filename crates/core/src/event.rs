//! The unified event type driving one scenario's simulation loop.

use tcpburst_net::NetEvent;
use tcpburst_transport::TransportEvent;

/// Everything that can happen in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A network event (link transmission completion or packet delivery).
    Net(NetEvent),
    /// A transport timer (RTO or delayed ACK).
    Transport(TransportEvent),
    /// Client `client`'s application generates its next packet.
    Generate {
        /// Index of the generating client.
        client: u32,
    },
}

impl From<NetEvent> for Event {
    fn from(ev: NetEvent) -> Self {
        Event::Net(ev)
    }
}

impl From<TransportEvent> for Event {
    fn from(ev: TransportEvent) -> Self {
        Event::Transport(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpburst_net::LinkId;

    #[test]
    fn conversions_wrap_the_right_variant() {
        let n: Event = NetEvent::TxComplete { link: LinkId(3) }.into();
        assert!(matches!(n, Event::Net(NetEvent::TxComplete { link: LinkId(3) })));
    }
}
