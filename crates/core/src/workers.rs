//! Multi-process sweep execution: grid points sharded across worker
//! *processes* with work-stealing and per-worker crash isolation.
//!
//! Thread-level fan-out ([`crate::parallel`]) shares one address space: a
//! segfault, allocator corruption or OOM kill in any grid point takes the
//! whole sweep down. This module moves the blast radius to a child
//! process: the supervisor spawns `N` copies of the harness binary running
//! the hidden `tcpburst worker` subcommand, feeds them grid points over the
//! checksummed frame protocol ([`crate::net_transport`]), and work-steals
//! from the shared queue exactly like the thread pool (each driver thread
//! claims the next unclaimed index and forwards it to its private child).
//!
//! A worker that dies loses *nothing*: its in-flight point is requeued
//! onto a fresh worker (up to a bounded respawn count), and if workers
//! keep dying on that point the driver degrades gracefully and computes
//! it in-process — zero lost grid points, counted in
//! [`RobustnessCounters`].
//!
//! ## Protocol
//!
//! Frames are the [`crate::net_transport`] wire format (length prefix +
//! SHA-256-derived checksum + UTF-8 payload). On startup the worker sends
//! `ready <schema-version>`; a schema mismatch (parent and worker built
//! from different engine versions) aborts the handshake. The parent then
//! sends one `point <index> <protocol> <clients> <seed> <sim|-> <events|->
//! <wall|->` frame per claimed grid point (the trailing triple is the
//! watchdog budget, `-` = unlimited); the worker replies
//! `done <index>\n<codec payload>` or `fail <index> <kind>\n<message>`.
//! EOF on the worker's stdin is the shutdown signal. The same frames ride
//! a TCP socket in daemon mode ([`crate::daemon`]), where `hb` heartbeat
//! frames are additionally interleaved.
//!
//! The scenario *base configuration* never crosses the pipe: the worker
//! process re-parses the parent's own CLI argument tail (captured
//! verbatim), so both sides build the identical base config by running the
//! identical parser, and only the per-point coordinates travel as data.
//!
//! ## Determinism
//!
//! Replies are decoded by the same exact codec the result store uses, and
//! results are re-slotted in canonical grid order by the same machinery as
//! the thread pool — so sweep output is byte-identical at every
//! `--workers × --jobs` combination, *including* under injected chaos
//! ([`crate::chaos`]): requeues and fallbacks change only who computes a
//! point, never its bytes.

use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use tcpburst_des::SimDuration;

use crate::chaos::{ChaosSchedule, ChaosTransport, CHAOS_ENV, CHAOS_ID_ENV};
use crate::codec;
use crate::config::{Protocol, ScenarioConfig};
use crate::net_transport::{FrameTransport, PipeTransport};
use crate::parallel::{effective_jobs, run_indexed_partial_with};
use crate::report::ScenarioReport;
use crate::store::ENGINE_SCHEMA_VERSION;
use crate::supervise::{FailurePolicy, PointOutcome, RunBudget, RunError};

/// Environment variable naming a grid-point index at which a worker
/// process deliberately aborts — the crash-isolation test hook. Unset in
/// normal operation.
pub const CRASH_AT_ENV: &str = "TCPBURST_WORKER_CRASH_AT";

/// Fresh-worker respawns attempted for a point whose worker died mid-run
/// before the driver stops burning processes and computes the point
/// in-process instead.
const CRASH_RETRIES: u32 = 2;

/// Spawn sequence across the whole process, so each worker child gets a
/// distinct chaos id (`w1`, `w2`, ...) for targeted fault schedules.
static SPAWN_SEQ: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Point frames and replies (shared with the daemon control plane)
// ---------------------------------------------------------------------------

fn budget_field(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    }
}

fn parse_budget_field(token: &str) -> Option<Option<u64>> {
    if token == "-" {
        Some(None)
    } else {
        token.parse().ok().map(Some)
    }
}

pub(crate) fn point_frame(index: usize, point: &PointSpec, budget: &RunBudget) -> String {
    format!(
        "point {index} {} {} {} {} {} {}",
        point.protocol.cli_name(),
        point.clients,
        point.seed,
        budget_field(budget.max_sim_time.map(|d| d.as_nanos())),
        budget_field(budget.max_events),
        budget_field(budget.max_wall.map(|w| w.as_nanos() as u64)),
    )
}

/// Parses a `point ...` frame into its coordinates and budget.
pub(crate) fn parse_point_frame(text: &str) -> Option<(usize, PointSpec, RunBudget)> {
    let rest = text.strip_prefix("point ")?;
    let mut tokens = rest.split_whitespace();
    let index: usize = tokens.next()?.parse().ok()?;
    let protocol: Protocol = tokens.next()?.parse().ok()?;
    let clients: usize = tokens.next()?.parse().ok()?;
    let seed: u64 = tokens.next()?.parse().ok()?;
    let budget = RunBudget {
        max_sim_time: parse_budget_field(tokens.next()?)?.map(SimDuration::from_nanos),
        max_events: parse_budget_field(tokens.next()?)?,
        max_wall: parse_budget_field(tokens.next()?)?.map(Duration::from_nanos),
    };
    if tokens.next().is_some() {
        return None;
    }
    Some((index, PointSpec { protocol, clients, seed }, budget))
}

/// What a worker sent back for one point.
pub(crate) enum Reply {
    /// The point completed; decoded report attached.
    Done(ScenarioReport),
    /// The point failed remotely with a typed kind and message.
    Fail {
        /// The remote [`RunError::kind`].
        kind: String,
        /// The remote error rendered as text.
        message: String,
    },
}

/// Parses a `done`/`fail` reply frame into its echoed index and payload.
pub(crate) fn parse_reply(text: &str) -> Option<(usize, Reply)> {
    let (head, body) = text.split_once('\n')?;
    let mut tokens = head.split_whitespace();
    let tag = tokens.next()?;
    let index: usize = tokens.next()?.parse().ok()?;
    match tag {
        "done" => {
            if tokens.next().is_some() {
                return None;
            }
            Some((index, Reply::Done(codec::decode(body)?)))
        }
        "fail" => Some((
            index,
            Reply::Fail {
                kind: tokens.next()?.to_string(),
                message: body.to_string(),
            },
        )),
        _ => None,
    }
}

fn protocol_error(peer: &str, what: impl std::fmt::Display) -> RunError {
    RunError::Remote {
        kind: "protocol".to_string(),
        message: format!("{peer}: {what}"),
    }
}

// ---------------------------------------------------------------------------
// The worker process side
// ---------------------------------------------------------------------------

/// The body of the hidden `tcpburst worker` subcommand: reads point frames
/// from stdin, runs each under [`crate::supervise::run_point`], and writes
/// reply frames to stdout until EOF. Returns the process exit code (0 for
/// a clean shutdown, 1 on a protocol or pipe error). When `TCPBURST_CHAOS`
/// names a schedule for this worker, the transport is wrapped in the
/// fault-injection layer ([`crate::chaos`]).
///
/// `base` is the scenario configuration rebuilt from the parent's CLI
/// argument tail; each point frame overrides only its protocol, client
/// count and seed.
pub fn worker_main(base: &ScenarioConfig) -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let transport = PipeTransport::new(stdin.lock(), stdout.lock(), "driver");
    match ChaosSchedule::from_env() {
        Some(events) => worker_loop(&mut ChaosTransport::new(transport, events), base),
        None => {
            let mut transport = transport;
            worker_loop(&mut transport, base)
        }
    }
}

/// The shared request/reply loop: serves `point` frames until EOF. Also
/// the body of a remote worker once the daemon handshake is done.
pub(crate) fn worker_loop<T: FrameTransport>(transport: &mut T, base: &ScenarioConfig) -> i32 {
    let crash_at: Option<usize> = std::env::var(CRASH_AT_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    if transport
        .send_text(&format!("ready {ENGINE_SCHEMA_VERSION}"))
        .is_err()
    {
        return 1;
    }
    loop {
        let text = match transport.recv_text() {
            Ok(Some(text)) => text,
            Ok(None) => return 0,
            Err(_) => return 1,
        };
        let Some(reply) = handle_point(base, &text, crash_at) else {
            return 1;
        };
        if transport.send_text(&reply).is_err() {
            return 1;
        }
    }
}

pub(crate) fn handle_point(
    base: &ScenarioConfig,
    text: &str,
    crash_at: Option<usize>,
) -> Option<String> {
    let (index, spec, budget) = parse_point_frame(text)?;
    if crash_at == Some(index) {
        // The crash-isolation hook: die like a segfault would, with no
        // unwinding and no reply frame.
        std::process::abort();
    }
    let mut cfg = *base;
    cfg.num_clients = spec.clients;
    cfg.apply_protocol(spec.protocol);
    cfg.seed = spec.seed;
    Some(match crate::supervise::run_point(&cfg, &budget) {
        Ok(report) => match codec::encode(&report) {
            Some(payload) => format!("done {index}\n{payload}"),
            None => format!(
                "fail {index} unencodable\nreport carries trace payloads \
                 the worker protocol cannot ship"
            ),
        },
        Err(error) => format!("fail {index} {}\n{error}", error.kind()),
    })
}

// ---------------------------------------------------------------------------
// Robustness accounting
// ---------------------------------------------------------------------------

/// Control-plane robustness counters, surfaced in the sweep summary next
/// to the cache statistics. All zeros on a fault-free run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessCounters {
    /// In-flight grid points put back for another attempt after their
    /// worker died, disconnected or went silent (one increment per
    /// requeue event; a point can be requeued more than once).
    pub requeued_points: u64,
    /// Worker processes or connections replaced after an abnormal end.
    pub worker_restarts: u64,
    /// Liveness deadlines that expired with no frame and no heartbeat
    /// from a worker.
    pub heartbeat_misses: u64,
    /// Remote-worker re-registrations after backoff (resume handshakes
    /// accepted for a worker that reconnected).
    pub backoff_retries: u64,
}

impl RobustnessCounters {
    /// True when any counter is non-zero (the summary line is printed
    /// only then, keeping fault-free output unchanged).
    pub fn any(&self) -> bool {
        *self != RobustnessCounters::default()
    }

    /// Adds `other` into `self` (merging pool and daemon accounting).
    pub fn merge(&mut self, other: &RobustnessCounters) {
        self.requeued_points += other.requeued_points;
        self.worker_restarts += other.worker_restarts;
        self.heartbeat_misses += other.heartbeat_misses;
        self.backoff_retries += other.backoff_retries;
    }
}

impl std::fmt::Display for RobustnessCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requeued_points={} worker_restarts={} heartbeat_misses={} backoff_retries={}",
            self.requeued_points, self.worker_restarts, self.heartbeat_misses, self.backoff_retries
        )
    }
}

/// Atomic counterpart shared across driver threads.
#[derive(Debug, Default)]
pub(crate) struct SharedCounters {
    pub(crate) requeued_points: AtomicU64,
    pub(crate) worker_restarts: AtomicU64,
    pub(crate) heartbeat_misses: AtomicU64,
    pub(crate) backoff_retries: AtomicU64,
}

impl SharedCounters {
    pub(crate) fn snapshot(&self) -> RobustnessCounters {
        RobustnessCounters {
            requeued_points: self.requeued_points.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            heartbeat_misses: self.heartbeat_misses.load(Ordering::Relaxed),
            backoff_retries: self.backoff_retries.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// The parent (pool) side
// ---------------------------------------------------------------------------

/// How to launch one worker process: a program plus its full argument
/// vector. The sweep CLI uses its own binary with
/// `["worker", <the parent's scenario flags...>]`; the bench example
/// self-spawns with a private flag its `main` recognises.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// The executable to spawn.
    pub program: PathBuf,
    /// Its complete argument vector.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A command that re-executes the current binary with `args`.
    pub fn current_exe(args: Vec<String>) -> io::Result<WorkerCommand> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args,
        })
    }
}

/// One grid point's coordinates, as shipped to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSpec {
    /// Protocol of the point.
    pub protocol: Protocol,
    /// Client count of the point.
    pub clients: usize,
    /// Seed of the point.
    pub seed: u64,
}

/// One live child process with its framed pipe transport.
struct WorkerProc {
    child: Child,
    transport: PipeTransport<BufReader<ChildStdout>, ChildStdin>,
}

impl WorkerProc {
    fn spawn(command: &WorkerCommand) -> Result<WorkerProc, RunError> {
        let seq = SPAWN_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cmd = Command::new(&command.program);
        cmd.args(&command.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if std::env::var_os(CHAOS_ENV).is_some() {
            // Give each spawned worker a distinct chaos id so schedules
            // can target "the Nth worker ever spawned".
            cmd.env(CHAOS_ID_ENV, format!("w{seq}"));
        }
        let spawn_err = |e: io::Error| RunError::Io {
            path: command.program.clone(),
            message: format!("spawning worker: {e}"),
        };
        let mut child = cmd.spawn().map_err(spawn_err)?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| spawn_err(io::Error::other("worker stdin not piped")))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| spawn_err(io::Error::other("worker stdout not piped")))?;
        let mut this = WorkerProc {
            child,
            transport: PipeTransport::new(BufReader::new(stdout), stdin, format!("worker w{seq}")),
        };
        this.handshake()?;
        Ok(this)
    }

    fn handshake(&mut self) -> Result<(), RunError> {
        let peer = self.transport.peer().to_string();
        let text = self
            .transport
            .recv_text()
            .map_err(|e| e.to_run_error())?
            .ok_or_else(|| protocol_error(&peer, "worker exited before handshake"))?;
        let schema = text
            .strip_prefix("ready ")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| protocol_error(&peer, "malformed worker handshake"))?;
        if schema != ENGINE_SCHEMA_VERSION {
            return Err(protocol_error(
                &peer,
                format!(
                    "worker speaks engine schema {schema}, parent expects \
                     {ENGINE_SCHEMA_VERSION} (mixed builds?)"
                ),
            ));
        }
        Ok(())
    }

    /// Ships one point and blocks for its reply.
    fn run_point(
        &mut self,
        index: usize,
        point: &PointSpec,
        budget: &RunBudget,
    ) -> Result<Reply, RunError> {
        let peer = self.transport.peer().to_string();
        self.transport
            .send_text(&point_frame(index, point, budget))
            .map_err(|e| e.to_run_error())?;
        let text = self
            .transport
            .recv_text()
            .map_err(|e| e.to_run_error())?
            .ok_or_else(|| RunError::Remote {
                kind: "worker-died".to_string(),
                message: format!("{peer}: worker exited mid-point"),
            })?;
        let (echoed, reply) =
            parse_reply(&text).ok_or_else(|| protocol_error(&peer, "malformed worker reply"))?;
        if echoed != index {
            return Err(protocol_error(
                &peer,
                format!("worker replied for point {echoed}, expected {index}"),
            ));
        }
        Ok(reply)
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        // Kill unconditionally, then reap: a healthy worker would exit on
        // the stdin EOF anyway, and a wedged one must not hang the sweep.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A pool of worker processes executing grid points with work-stealing,
/// per-worker crash isolation and the supervisor's budget-doubling retry
/// policy (retries are driven from the parent: the point is re-sent with
/// a doubled budget).
///
/// A crashed worker's in-flight point is *requeued*: re-sent to a fresh
/// worker, and — if workers keep dying on it — computed in-process via the
/// caller's fallback, so no grid point is ever lost to a worker death.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    /// How to launch each worker.
    pub command: WorkerCommand,
    /// Worker-process count (0 = all cores).
    pub workers: usize,
    /// Keep-going (default) or fail-fast.
    pub policy: FailurePolicy,
    /// Watchdog budget per point.
    pub budget: RunBudget,
    /// Budget-failure retries per point (doubling each time).
    pub retries: u32,
}

impl WorkerPool {
    /// A pool with default supervision knobs.
    pub fn new(command: WorkerCommand, workers: usize) -> WorkerPool {
        WorkerPool {
            command,
            workers,
            policy: FailurePolicy::KeepGoing,
            budget: RunBudget::UNLIMITED,
            retries: 1,
        }
    }

    /// Runs every point across the pool; outcomes come back in point
    /// order, together with the pool's robustness counters.
    ///
    /// `fallback` computes one point in-process (under the given budget);
    /// it runs when worker processes keep dying on a point, so the point
    /// is never lost. `on_done` runs on the driver thread the moment its
    /// point completes (this is where the supervisor appends the journal
    /// line and writes the result store) — an `Err` from it demotes the
    /// point to [`PointOutcome::Failed`].
    pub fn run_points<F, G>(
        &self,
        points: &[PointSpec],
        fallback: G,
        on_done: F,
    ) -> (Vec<PointOutcome<ScenarioReport>>, RobustnessCounters)
    where
        F: Fn(usize, &ScenarioReport) -> Result<(), RunError> + Sync,
        G: Fn(usize, &RunBudget) -> Result<ScenarioReport, RunError> + Sync,
    {
        let workers = effective_jobs(self.workers, points.len());
        let abort = AtomicBool::new(false);
        let counters = SharedCounters::default();
        let fail = |error: RunError| {
            if self.policy == FailurePolicy::FailFast {
                abort.store(true, Ordering::SeqCst);
            }
            PointOutcome::Failed(error)
        };
        let finish = |index: usize, report: ScenarioReport| match on_done(index, &report) {
            Ok(()) => PointOutcome::Done(report),
            Err(e) => fail(e),
        };
        let mut partial = run_indexed_partial_with(
            workers,
            points.len(),
            || None::<WorkerProc>,
            |proc, index| {
                if abort.load(Ordering::SeqCst) {
                    return PointOutcome::Skipped;
                }
                let point = &points[index];
                let mut budget = self.budget;
                let mut attempt = 0u32;
                let mut crashes = 0u32;
                loop {
                    if crashes > CRASH_RETRIES {
                        // Workers keep dying on this point (or cannot be
                        // spawned at all): graceful degradation — compute
                        // it in-process so the point is requeued, never
                        // lost.
                        loop {
                            match fallback(index, &budget) {
                                Ok(report) => return finish(index, report),
                                Err(e) => {
                                    if e.kind() == "budget-exceeded" && attempt < self.retries {
                                        attempt += 1;
                                        budget = budget.doubled();
                                        continue;
                                    }
                                    return fail(e);
                                }
                            }
                        }
                    }
                    if proc.is_none() {
                        match WorkerProc::spawn(&self.command) {
                            Ok(w) => *proc = Some(w),
                            Err(_) => {
                                crashes += 1;
                                counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    }
                    let worker = proc.as_mut().expect("worker was just spawned");
                    match worker.run_point(index, point, &budget) {
                        Ok(Reply::Done(report)) => return finish(index, report),
                        Ok(Reply::Fail { kind, message }) => {
                            if kind == "budget-exceeded" && attempt < self.retries {
                                attempt += 1;
                                budget = budget.doubled();
                                continue;
                            }
                            return fail(RunError::Remote { kind, message });
                        }
                        Err(_) => {
                            // The pipe broke: the child crashed (or wedged
                            // and wrote garbage). Requeue the in-flight
                            // point onto a fresh worker.
                            *proc = None;
                            crashes += 1;
                            counters.requeued_points.fetch_add(1, Ordering::Relaxed);
                            counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                }
            },
        );
        let outcomes = partial
            .results
            .iter_mut()
            .map(|slot| match slot.take() {
                Some(outcome) => outcome,
                None => PointOutcome::Failed(RunError::Panicked {
                    message: "pool driver died before reporting".to_string(),
                }),
            })
            .collect();
        (outcomes, counters.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_frames_parse_back() {
        let base = crate::ScenarioBuilder::paper().finish();
        let spec = PointSpec {
            protocol: Protocol::VegasRed,
            clients: 25,
            seed: 0x1CDC_2000,
        };
        let budget = RunBudget {
            max_sim_time: Some(SimDuration::from_secs(3)),
            max_events: None,
            max_wall: Some(Duration::from_millis(250)),
        };
        let frame = point_frame(7, &spec, &budget);
        let (index, parsed, parsed_budget) = parse_point_frame(&frame).expect("parses");
        assert_eq!(index, 7);
        assert_eq!(parsed, spec);
        assert_eq!(parsed_budget.max_events, None);
        assert_eq!(parsed_budget.max_wall, Some(Duration::from_millis(250)));

        // handle_point runs the (tiny) scenario and replies `done 7`.
        let mut cfg = base;
        cfg.duration = SimDuration::from_millis(200);
        let reply = handle_point(&cfg, &frame, None).expect("parses");
        assert!(reply.starts_with("done 7\n") || reply.starts_with("fail 7 "));

        assert!(handle_point(&cfg, "point", None).is_none());
        assert!(handle_point(&cfg, "point 1 nosuch 5 0 - - -", None).is_none());
        assert!(handle_point(&cfg, &format!("{frame} extra"), None).is_none());
    }

    #[test]
    fn unlimited_budget_serializes_as_dashes() {
        let spec = PointSpec {
            protocol: Protocol::Udp,
            clients: 5,
            seed: 1,
        };
        let frame = point_frame(0, &spec, &RunBudget::UNLIMITED);
        assert!(frame.ends_with("- - -"), "{frame}");
    }

    #[test]
    fn replies_parse_back() {
        let (index, reply) = parse_reply("fail 3 budget-exceeded\nran out of budget")
            .expect("fail reply parses");
        assert_eq!(index, 3);
        match reply {
            Reply::Fail { kind, message } => {
                assert_eq!(kind, "budget-exceeded");
                assert_eq!(message, "ran out of budget");
            }
            Reply::Done(_) => panic!("wrong reply variant"),
        }
        assert!(parse_reply("done 3").is_none(), "no body");
        assert!(parse_reply("done x\npayload").is_none(), "bad index");
        assert!(parse_reply("what 3\npayload").is_none(), "bad tag");
        assert!(parse_reply("done 3\nnot a codec payload").is_none());
    }

    #[test]
    fn counters_merge_and_report() {
        let mut a = RobustnessCounters::default();
        assert!(!a.any());
        let b = RobustnessCounters {
            requeued_points: 1,
            worker_restarts: 2,
            heartbeat_misses: 0,
            backoff_retries: 3,
        };
        a.merge(&b);
        a.merge(&b);
        assert!(a.any());
        assert_eq!(a.requeued_points, 2);
        assert_eq!(a.backoff_retries, 6);
        assert_eq!(
            b.to_string(),
            "requeued_points=1 worker_restarts=2 heartbeat_misses=0 backoff_retries=3"
        );
    }
}
