//! Multi-process sweep execution: grid points sharded across worker
//! *processes* with work-stealing and per-worker crash isolation.
//!
//! Thread-level fan-out ([`crate::parallel`]) shares one address space: a
//! segfault, allocator corruption or OOM kill in any grid point takes the
//! whole sweep down. This module moves the blast radius to a child
//! process: the supervisor spawns `N` copies of the harness binary running
//! the hidden `tcpburst worker` subcommand, feeds them grid points over a
//! length-prefixed stdin/stdout protocol, and work-steals from the shared
//! queue exactly like the thread pool (each driver thread claims the next
//! unclaimed index and forwards it to its private child). A worker that
//! dies loses *one* point — the driver records the failure, respawns the
//! child, and keeps claiming.
//!
//! ## Protocol
//!
//! Every frame is a `u32` little-endian byte length followed by that many
//! bytes of UTF-8 text. On startup the worker sends
//! `ready <schema-version>`; a schema mismatch (parent and worker built
//! from different engine versions) aborts the handshake. The parent then
//! sends one `point <index> <protocol> <clients> <seed> <sim|-> <events|->
//! <wall|->` frame per claimed grid point (the trailing triple is the
//! watchdog budget, `-` = unlimited); the worker replies
//! `done <index>\n<codec payload>` or `fail <index> <kind>\n<message>`.
//! EOF on the worker's stdin is the shutdown signal.
//!
//! The scenario *base configuration* never crosses the pipe: the worker
//! process re-parses the parent's own CLI argument tail (captured
//! verbatim), so both sides build the identical base config by running the
//! identical parser, and only the per-point coordinates travel as data.
//!
//! ## Determinism
//!
//! Replies are decoded by the same exact codec the result store uses, and
//! results are re-slotted in canonical grid order by the same machinery as
//! the thread pool — so sweep output is byte-identical at every
//! `--workers × --jobs` combination (`scripts/verify.sh` diffs
//! `--workers 2` against the in-process run).

use std::io::{self, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tcpburst_des::SimDuration;

use crate::codec;
use crate::config::{Protocol, ScenarioConfig};
use crate::parallel::{effective_jobs, run_indexed_partial_with};
use crate::report::ScenarioReport;
use crate::store::ENGINE_SCHEMA_VERSION;
use crate::supervise::{run_point, FailurePolicy, PointOutcome, RunBudget, RunError};

/// Reject frames above this size: a corrupted length prefix must not make
/// the reader attempt a multi-gigabyte allocation.
const MAX_FRAME: usize = 256 << 20;

/// Environment variable naming a grid-point index at which a worker
/// process deliberately aborts — the crash-isolation test hook. Unset in
/// normal operation.
pub const CRASH_AT_ENV: &str = "TCPBURST_WORKER_CRASH_AT";

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary (the
/// shutdown signal), `Err` on truncation mid-frame or an oversized length.
fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn budget_field(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    }
}

fn parse_budget_field(token: &str) -> Option<Option<u64>> {
    if token == "-" {
        Some(None)
    } else {
        token.parse().ok().map(Some)
    }
}

fn point_frame(index: usize, point: &PointSpec, budget: &RunBudget) -> String {
    format!(
        "point {index} {} {} {} {} {} {}",
        point.protocol.cli_name(),
        point.clients,
        point.seed,
        budget_field(budget.max_sim_time.map(|d| d.as_nanos())),
        budget_field(budget.max_events),
        budget_field(budget.max_wall.map(|w| w.as_nanos() as u64)),
    )
}

// ---------------------------------------------------------------------------
// The worker process side
// ---------------------------------------------------------------------------

/// The body of the hidden `tcpburst worker` subcommand: reads point frames
/// from stdin, runs each under [`run_point`], and writes reply frames to
/// stdout until EOF. Returns the process exit code (0 for a clean
/// shutdown, 1 on a protocol or pipe error).
///
/// `base` is the scenario configuration rebuilt from the parent's CLI
/// argument tail; each point frame overrides only its protocol, client
/// count and seed.
pub fn worker_main(base: &ScenarioConfig) -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let crash_at: Option<usize> = std::env::var(CRASH_AT_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    if write_frame(&mut output, format!("ready {ENGINE_SCHEMA_VERSION}").as_bytes()).is_err() {
        return 1;
    }
    loop {
        let frame = match read_frame(&mut input) {
            Ok(Some(frame)) => frame,
            Ok(None) => return 0,
            Err(_) => return 1,
        };
        let Ok(text) = String::from_utf8(frame) else {
            return 1;
        };
        let Some(reply) = handle_point(base, &text, crash_at) else {
            return 1;
        };
        if write_frame(&mut output, reply.as_bytes()).is_err() {
            return 1;
        }
    }
}

fn handle_point(base: &ScenarioConfig, text: &str, crash_at: Option<usize>) -> Option<String> {
    let rest = text.strip_prefix("point ")?;
    let mut tokens = rest.split_whitespace();
    let index: usize = tokens.next()?.parse().ok()?;
    if crash_at == Some(index) {
        // The crash-isolation hook: die like a segfault would, with no
        // unwinding and no reply frame.
        std::process::abort();
    }
    let protocol: Protocol = tokens.next()?.parse().ok()?;
    let clients: usize = tokens.next()?.parse().ok()?;
    let seed: u64 = tokens.next()?.parse().ok()?;
    let budget = RunBudget {
        max_sim_time: parse_budget_field(tokens.next()?)?.map(SimDuration::from_nanos),
        max_events: parse_budget_field(tokens.next()?)?,
        max_wall: parse_budget_field(tokens.next()?)?.map(Duration::from_nanos),
    };
    if tokens.next().is_some() {
        return None;
    }
    let mut cfg = *base;
    cfg.num_clients = clients;
    cfg.apply_protocol(protocol);
    cfg.seed = seed;
    Some(match run_point(&cfg, &budget) {
        Ok(report) => match codec::encode(&report) {
            Some(payload) => format!("done {index}\n{payload}"),
            None => format!(
                "fail {index} unencodable\nreport carries trace payloads \
                 the worker protocol cannot ship"
            ),
        },
        Err(error) => format!("fail {index} {}\n{error}", error.kind()),
    })
}

// ---------------------------------------------------------------------------
// The parent (pool) side
// ---------------------------------------------------------------------------

/// How to launch one worker process: a program plus its full argument
/// vector. The sweep CLI uses its own binary with
/// `["worker", <the parent's scenario flags...>]`; the bench example
/// self-spawns with a private flag its `main` recognises.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// The executable to spawn.
    pub program: PathBuf,
    /// Its complete argument vector.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A command that re-executes the current binary with `args`.
    pub fn current_exe(args: Vec<String>) -> io::Result<WorkerCommand> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args,
        })
    }
}

/// One grid point's coordinates, as shipped to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSpec {
    /// Protocol of the point.
    pub protocol: Protocol,
    /// Client count of the point.
    pub clients: usize,
    /// Seed of the point.
    pub seed: u64,
}

/// What a worker sent back for one point.
enum Reply {
    Done(ScenarioReport),
    Fail { kind: String, message: String },
}

/// One live child process with its pipes.
struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl WorkerProc {
    fn spawn(command: &WorkerCommand) -> io::Result<WorkerProc> {
        let mut child = Command::new(&command.program)
            .args(&command.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| io::Error::other("worker stdin not piped"))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("worker stdout not piped"))?;
        let mut this = WorkerProc {
            child,
            stdin,
            stdout: BufReader::new(stdout),
        };
        this.handshake()?;
        Ok(this)
    }

    fn handshake(&mut self) -> io::Result<()> {
        let frame = read_frame(&mut self.stdout)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "worker exited before handshake")
        })?;
        let text = String::from_utf8(frame)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 handshake"))?;
        let schema = text
            .strip_prefix("ready ")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "malformed worker handshake")
            })?;
        if schema != ENGINE_SCHEMA_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "worker speaks engine schema {schema}, parent expects \
                     {ENGINE_SCHEMA_VERSION} (mixed builds?)"
                ),
            ));
        }
        Ok(())
    }

    /// Ships one point and blocks for its reply.
    fn run_point(&mut self, index: usize, point: &PointSpec, budget: &RunBudget) -> io::Result<Reply> {
        write_frame(&mut self.stdin, point_frame(index, point, budget).as_bytes())?;
        let frame = read_frame(&mut self.stdout)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "worker exited mid-point")
        })?;
        let text = String::from_utf8(frame)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 reply"))?;
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "malformed worker reply");
        let (head, body) = text.split_once('\n').ok_or_else(bad)?;
        let mut tokens = head.split_whitespace();
        let tag = tokens.next().ok_or_else(bad)?;
        let echoed: usize = tokens
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(bad)?;
        if echoed != index {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker replied for point {echoed}, expected {index}"),
            ));
        }
        match tag {
            "done" => {
                let report = codec::decode(body).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "undecodable worker report")
                })?;
                Ok(Reply::Done(report))
            }
            "fail" => Ok(Reply::Fail {
                kind: tokens.next().ok_or_else(bad)?.to_string(),
                message: body.to_string(),
            }),
            _ => Err(bad()),
        }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        // Kill unconditionally, then reap: a healthy worker would exit on
        // the stdin EOF anyway, and a wedged one must not hang the sweep.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A pool of worker processes executing grid points with work-stealing,
/// per-worker crash isolation and the supervisor's budget-doubling retry
/// policy (retries are driven from the parent: the point is re-sent with
/// a doubled budget).
#[derive(Debug, Clone)]
pub struct WorkerPool {
    /// How to launch each worker.
    pub command: WorkerCommand,
    /// Worker-process count (0 = all cores).
    pub workers: usize,
    /// Keep-going (default) or fail-fast.
    pub policy: FailurePolicy,
    /// Watchdog budget per point.
    pub budget: RunBudget,
    /// Budget-failure retries per point (doubling each time).
    pub retries: u32,
}

impl WorkerPool {
    /// A pool with default supervision knobs.
    pub fn new(command: WorkerCommand, workers: usize) -> WorkerPool {
        WorkerPool {
            command,
            workers,
            policy: FailurePolicy::KeepGoing,
            budget: RunBudget::UNLIMITED,
            retries: 1,
        }
    }

    /// Runs every point across the pool; outcomes come back in point
    /// order. `on_done` runs on the driver thread the moment its point
    /// completes (this is where the supervisor appends the journal line
    /// and writes the result store) — an `Err` from it demotes the point
    /// to [`PointOutcome::Failed`].
    pub fn run_points<F>(
        &self,
        points: &[PointSpec],
        on_done: F,
    ) -> Vec<PointOutcome<ScenarioReport>>
    where
        F: Fn(usize, &ScenarioReport) -> Result<(), RunError> + Sync,
    {
        let workers = effective_jobs(self.workers, points.len());
        let abort = AtomicBool::new(false);
        let fail = |error: RunError| {
            if self.policy == FailurePolicy::FailFast {
                abort.store(true, Ordering::SeqCst);
            }
            PointOutcome::Failed(error)
        };
        let mut partial = run_indexed_partial_with(
            workers,
            points.len(),
            || None::<WorkerProc>,
            |proc, index| {
                if abort.load(Ordering::SeqCst) {
                    return PointOutcome::Skipped;
                }
                let point = &points[index];
                let mut budget = self.budget;
                let mut attempt = 0u32;
                loop {
                    if proc.is_none() {
                        match WorkerProc::spawn(&self.command) {
                            Ok(w) => *proc = Some(w),
                            Err(e) => {
                                return fail(RunError::Io {
                                    path: self.command.program.clone(),
                                    message: format!("spawning worker: {e}"),
                                })
                            }
                        }
                    }
                    let worker = proc.as_mut().expect("worker was just spawned");
                    match worker.run_point(index, point, &budget) {
                        Ok(Reply::Done(report)) => {
                            return match on_done(index, &report) {
                                Ok(()) => PointOutcome::Done(report),
                                Err(e) => fail(e),
                            }
                        }
                        Ok(Reply::Fail { kind, message }) => {
                            if kind == "budget-exceeded" && attempt < self.retries {
                                attempt += 1;
                                budget = budget.doubled();
                                continue;
                            }
                            return fail(RunError::Remote { kind, message });
                        }
                        Err(e) => {
                            // The pipe broke: the child crashed (or wedged
                            // and wrote garbage). This point is lost; the
                            // next point this driver claims gets a fresh
                            // worker.
                            *proc = None;
                            return fail(RunError::Remote {
                                kind: "worker-died".to_string(),
                                message: format!(
                                    "worker process died running this point: {e}"
                                ),
                            });
                        }
                    }
                }
            },
        );
        partial
            .results
            .iter_mut()
            .map(|slot| match slot.take() {
                Some(outcome) => outcome,
                None => PointOutcome::Failed(RunError::Panicked {
                    message: "pool driver died before reporting".to_string(),
                }),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).expect("read").as_deref(),
            Some(&b"hello frame"[..])
        );
        assert_eq!(read_frame(&mut cursor).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut cursor).expect("eof").as_deref(), None);
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").expect("write");
        // Cut inside the payload and inside the length prefix.
        for cut in [2usize, 6] {
            let mut cursor = io::Cursor::new(buf[..cut].to_vec());
            assert!(read_frame(&mut cursor).is_err(), "cut={cut}");
        }
        // An absurd length prefix is rejected, not allocated.
        let mut huge = (u32::MAX).to_le_bytes().to_vec();
        huge.extend_from_slice(b"x");
        assert!(read_frame(&mut io::Cursor::new(huge)).is_err());
    }

    #[test]
    fn point_frames_parse_back() {
        let base = crate::ScenarioBuilder::paper().finish();
        let spec = PointSpec {
            protocol: Protocol::VegasRed,
            clients: 25,
            seed: 0x1CDC_2000,
        };
        let budget = RunBudget {
            max_sim_time: Some(SimDuration::from_secs(3)),
            max_events: None,
            max_wall: Some(Duration::from_millis(250)),
        };
        let frame = point_frame(7, &spec, &budget);
        // handle_point runs the (tiny) scenario and replies `done 7`.
        let mut cfg = base;
        cfg.duration = SimDuration::from_millis(200);
        let reply = handle_point(&cfg, &frame, None).expect("parses");
        assert!(reply.starts_with("done 7\n") || reply.starts_with("fail 7 "));

        assert!(handle_point(&cfg, "point", None).is_none());
        assert!(handle_point(&cfg, "point 1 nosuch 5 0 - - -", None).is_none());
        assert!(handle_point(&cfg, &format!("{frame} extra"), None).is_none());
    }

    #[test]
    fn unlimited_budget_serializes_as_dashes() {
        let spec = PointSpec {
            protocol: Protocol::Udp,
            clients: 5,
            seed: 1,
        };
        let frame = point_frame(0, &spec, &RunBudget::UNLIMITED);
        assert!(frame.ends_with("- - -"), "{frame}");
    }
}
