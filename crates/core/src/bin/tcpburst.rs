//! `tcpburst` — command-line front end for the paper-reproduction harness.
//!
//! Every scenario flag is owned by one stage of the
//! [`ScenarioBuilder`]; the CLI only keeps the flags that orchestrate
//! *many* scenarios (`--jobs`, `--seeds`, comma-separated `--clients`
//! lists). Flag parsing, dispatch and the usage text below all derive from
//! [`ScenarioBuilder::CLI_FLAGS`], so the help can never go stale.

use std::env;
use std::process::ExitCode;

use tcpburst_core::experiments::{
    cwnd_evolution_from, paper_traced_clients, table1, topology_ascii, Sweep,
};
use tcpburst_core::{Protocol, ReplicatedSweep, Scenario, ScenarioBuilder};

fn usage() -> String {
    format!(
        "\
tcpburst — reproduce 'On the Burstiness of the TCP Congestion-Control
Mechanism in a Distributed Computing System' (ICDCS 2000)

USAGE:
    tcpburst run       [scenario flags]
    tcpburst sweep     [scenario flags] [--clients a,b,c,...] [--jobs N]
    tcpburst replicate [scenario flags] [--clients a,b,c,...] [--seeds R]
                       [--jobs N]
    tcpburst cwnd      [scenario flags]
    tcpburst table1

SCENARIO FLAGS (one builder stage each):
{}
ORCHESTRATION:
    --clients a,b,c        sweep/replicate client-count axis
    --seeds R              replications per grid point (from --seed up)
    --jobs N               worker threads; 0 = all cores

PROTOCOLS:
    udp, reno, reno-red, vegas, vegas-red, reno-delayack, tahoe, newreno, sack

DEFAULTS:
    39 clients, reno, 30 s, seed 0x1CDC2000; sweeps use the paper's
    protocol set. Sweeps fan grid points across --jobs worker threads; the
    output is bit-identical for every --jobs value (--jobs 1 is fully
    serial), with or without --impair.

EXAMPLES:
    tcpburst run --clients 39 --protocol reno --impair flap:3s/10s,corrupt:1e-5
    tcpburst sweep --clients 5,15,25,35,39 --secs 60 --jobs 0
",
        ScenarioBuilder::cli_help()
    )
}

struct Args {
    cfg: tcpburst_core::ScenarioConfig,
    /// Remembered separately because the config stores the protocol only as
    /// its expanded transport/gateway knobs.
    protocol: Protocol,
    client_list: Vec<usize>,
    seeds: usize,
    jobs: usize,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut builder = ScenarioBuilder::paper()
        .instrumentation(|i| i.secs(30).seed(0x1CDC_2000));
    let mut protocol = Protocol::Reno;
    let mut client_list = vec![5, 15, 25, 35, 39, 45, 60];
    let mut seeds = 5usize;
    let mut jobs = 0usize;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--seeds" => {
                let v = argv.next().ok_or("--seeds requires a value")?;
                seeds = v.parse().map_err(|e| format!("--seeds: {e}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs requires a value")?;
                jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
            }
            _ => {
                let Some(spec) = ScenarioBuilder::flag_spec(&flag) else {
                    return Err(format!("unknown flag: {flag}"));
                };
                let value = match spec.metavar {
                    Some(_) => Some(
                        argv.next()
                            .ok_or_else(|| format!("{flag} requires a value"))?,
                    ),
                    None => None,
                };
                // A comma list is the sweep axis, not one scenario's client
                // count; the last entry still lands in the builder so `run`
                // sees a sensible value.
                if flag == "--clients" {
                    let v = value.as_deref().unwrap_or_default();
                    if v.contains(',') {
                        client_list = v
                            .split(',')
                            .map(|s| s.trim().parse().map_err(|e| format!("--clients: {e}")))
                            .collect::<Result<_, _>>()?;
                        let last = client_list.last().unwrap().to_string();
                        builder.apply_cli_flag("--clients", Some(&last))?;
                        continue;
                    }
                }
                if flag == "--protocol" {
                    protocol = value.as_deref().unwrap_or_default().parse()?;
                }
                builder.apply_cli_flag(&flag, value.as_deref())?;
            }
        }
    }
    let cfg = builder.try_finish()?;
    Ok(Args {
        cfg,
        protocol,
        client_list,
        seeds,
        jobs,
    })
}

fn cmd_run(args: &Args) {
    let r = Scenario::run(&args.cfg);
    let secs = args.cfg.duration.as_nanos() as f64 / 1e9;
    let mut headline = format!(
        "{} / {} clients / {secs} s",
        args.protocol.label(),
        args.cfg.num_clients,
    );
    if args.cfg.ecn {
        headline.push_str(" / ECN");
    }
    if !args.cfg.impair.is_none() {
        headline.push_str(&format!(" / impair {}", args.cfg.impair));
    }
    println!("{headline}");
    println!("{r}");
    println!(
        "c.o.v. ratio vs Poisson: {:.2}x   avg queue: {:.1} pkts   mean delay: {:.1} ms",
        r.cov_ratio(),
        r.avg_queue_len,
        r.mean_delay_secs * 1e3
    );
    println!(
        "engine: {} events in {:.2} s ({:.0} events/s)",
        r.events_processed,
        r.wall_clock_secs,
        r.events_per_sec()
    );
}

fn cmd_sweep(args: &Args) {
    let sweep = Sweep::run_with_jobs_from(
        &args.cfg,
        &Protocol::PAPER_SET,
        &args.client_list,
        args.jobs,
    );
    println!("{}", sweep.fig2_cov_table());
    println!("{}", sweep.fig3_throughput_table());
    println!("{}", sweep.fig4_loss_table());
    println!("{}", sweep.fig13_timeout_ratio_table());
}

fn cmd_replicate(args: &Args) {
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| args.cfg.seed + i).collect();
    let sweep = ReplicatedSweep::run_with_jobs_from(
        &args.cfg,
        &Protocol::PAPER_SET,
        &args.client_list,
        &seeds,
        args.jobs,
    );
    println!("{}", sweep.fig2_cov_table());
    println!("{}", sweep.fig3_throughput_table());
    println!("{}", sweep.fig4_loss_table());
    println!("{}", sweep.fig13_ratio_table());
}

fn cmd_cwnd(args: &Args) {
    let fig = cwnd_evolution_from(
        &args.cfg,
        args.protocol,
        args.cfg.num_clients,
        &paper_traced_clients(args.cfg.num_clients),
    );
    println!("{}", fig.table());
}

fn main() -> ExitCode {
    let mut argv = env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "sweep" => cmd_sweep(&args),
        "replicate" => cmd_replicate(&args),
        "cwnd" => cmd_cwnd(&args),
        "table1" => {
            println!("{}", table1());
            println!("{}", topology_ascii());
        }
        "help" | "--help" | "-h" => print!("{}", usage()),
        other => {
            eprintln!("error: unknown command {other}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
