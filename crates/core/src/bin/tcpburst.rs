//! `tcpburst` — command-line front end for the paper-reproduction harness.
//!
//! Every scenario flag is owned by one stage of the
//! [`ScenarioBuilder`]; the CLI only keeps the flags that orchestrate
//! *many* scenarios (`--jobs`, `--seeds`, comma-separated `--clients`
//! lists). Flag parsing, dispatch and the usage text below all derive from
//! [`ScenarioBuilder::CLI_FLAGS`], so the help can never go stale.

use std::env;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use tcpburst_core::experiments::{
    cwnd_evolution_from, paper_traced_clients, table1, topology_ascii,
};
use tcpburst_des::SimDuration;
use tcpburst_core::{
    remote_worker_main, run_point, submit_job, worker_main, ExecTuning, FailurePolicy, Gateway,
    JobConn, Protocol, RemoteExec, ReplicatedSweep, ResultStore, RunBudget, RunError,
    ScenarioBuilder, SupervisedSweep, SweepSupervisor, TopoKind, WorkerCommand, WorkerOptions,
    DEFAULT_TOKEN,
};

fn usage() -> String {
    format!(
        "\
tcpburst — reproduce 'On the Burstiness of the TCP Congestion-Control
Mechanism in a Distributed Computing System' (ICDCS 2000)

USAGE:
    tcpburst run       [scenario flags]
    tcpburst sweep     [scenario flags] [--clients a,b,c,...] [--jobs N]
    tcpburst replicate [scenario flags] [--clients a,b,c,...] [--seeds R]
                       [--jobs N]
    tcpburst cwnd      [scenario flags]
    tcpburst table1
    tcpburst serve     --listen ADDR [--token T] [--once]
                       [--liveness-ms N] [--grace-ms N]
    tcpburst worker    --connect ADDR [--token T] [--heartbeat-ms N]
                       [--max-reconnects N]
    tcpburst submit    --connect ADDR [--token T] sweep [sweep flags...]

SCENARIO FLAGS (one builder stage each):
{}
ORCHESTRATION:
    --clients a,b,c        sweep/replicate client-count axis
    --protocols a,b,c      sweep/replicate protocol set (default: the
                           paper's six, or the --variant's own column when
                           one is named; accepts any PROTOCOLS name)
    --seeds R              replications per grid point (from --seed up)
    --jobs N               worker threads; 0 = all cores
    --workers N            sweep only: shard fresh grid points across N
                           crash-isolated worker *processes* (0 = all cores;
                           default 1 = in-process threads); output is
                           byte-identical at every N

RESULT CACHE (sweep and replicate; `run` always simulates):
    --cache PATH           content-addressed result store location (default:
                           $TCPBURST_CACHE, else $XDG_CACHE_HOME/tcpburst/
                           store, else ~/.cache/tcpburst/store)
    --no-cache             skip the result store for this invocation
                           Completed grid points persist under a digest of
                           their full configuration, seed and engine schema;
                           a repeated sweep loads them instead of simulating
                           (bit-identical by construction). Trace-capturing
                           and sharded-engine configurations bypass the
                           cache; an engine schema bump invalidates it.

ROBUSTNESS (supervision and watchdog budgets):
    --keep-going           run every grid point; report failures at the end
                           (default)
    --fail-fast            stop claiming new points after the first failure
    --retries N            budget-failure retries per point, doubling the
                           budget each time (default 1)
    --max-events N         abort a run after N scheduler events
    --max-sim-secs S       abort a run after S simulated seconds
    --max-wall-secs S      abort a run after S wall-clock seconds
                           (budgets apply to `run` too: the partial report
                           prints, marked PARTIAL RUN, and the exit is
                           nonzero)
    --journal PATH         append each completed sweep point to a JSONL
                           journal (truncates PATH)
    --resume PATH          skip points already in the journal; the output is
                           byte-identical to an uninterrupted sweep

SWEEP SERVICE (distributed fan-out over TCP):
    serve                  long-running daemon: accepts sweep jobs and
                           worker registrations on --listen (prints the
                           bound address to stderr; --once exits after one
                           job)
    worker --connect       remote worker: dials the daemon, authenticates
                           with the shared --token, steals grid points,
                           heartbeats while computing, reconnects with
                           exponential backoff + jitter and a digest-keyed
                           resume handshake
    submit                 sends a sweep job to the daemon and streams its
                           output back; exits nonzero if the sweep failed
    --token T              shared job token (both sides default to
                           '{DEFAULT_TOKEN}')
    --liveness-ms N        daemon: declare a worker dead after N ms of
                           silence and requeue its in-flight point
                           (default 2000)
    --grace-ms N           daemon: with zero live workers for N ms, finish
                           the sweep in-process (default 1500)
    --heartbeat-ms N       worker: heartbeat interval while a point is
                           computing (default 400)
    --max-reconnects N     worker: reconnect attempts before giving up
                           (default 8)
    A sweep's finalized journal and figure tables are byte-identical to
    the serial in-process run at any worker count and under any injected
    fault schedule; killed/stalled/partitioned workers cost requeues, not
    results (counters on stderr: requeued_points, worker_restarts,
    heartbeat_misses, backoff_retries).

PROTOCOLS:
    udp, reno, reno-red, vegas, vegas-red, reno-delayack, tahoe, newreno,
    sack, gaimd, cubic, hstcp, bbr

    --variant swaps only the TCP congestion-control policy, keeping the
    gateway and ACK behaviour from --protocol; gaimd:<alpha>,<beta> sets
    the Ott-Swanson exponents (gaimd alone means alpha=0, beta=1 = Reno).
    The full policy vocabulary is listed under `variants` above; bbr is
    the only policy that paces its transmissions.

DEFAULTS:
    39 clients, reno, 30 s, seed 0x1CDC2000; sweeps use the paper's
    protocol set. Sweeps fan grid points across --jobs worker threads; the
    output is bit-identical for every --jobs value (--jobs 1 is fully
    serial), with or without --impair. Figure tables go to stdout; the
    supervision summary and per-point failures go to stderr.

EXAMPLES:
    tcpburst run --clients 39 --protocol reno --impair flap:3s/10s,corrupt:1e-5
    tcpburst sweep --clients 5,15,25,35,39 --secs 60 --jobs 0
    tcpburst sweep --clients 5,15 --journal sweep.jsonl
    tcpburst sweep --clients 5,15 --resume sweep.jsonl
    tcpburst sweep --clients 5,15,25 --workers 4 --no-cache
    tcpburst sweep --clients 20,39 --protocols reno,gaimd --secs 10
    tcpburst run --clients 39 --variant gaimd:0.31,0.875
    tcpburst run --topology parking-lot:5,4 --trace-hops --impair cross:2000/1500
    tcpburst sweep --topology incast:16 --protocols reno,cubic --secs 10
",
        ScenarioBuilder::cli_help()
    )
}

/// Where the result store lives, if anywhere.
enum CacheChoice {
    /// `ResultStore::default_location()`, best-effort (no cache if it has
    /// no usable location).
    Default,
    /// `--no-cache`.
    Off,
    /// `--cache PATH`; failing to open this one is a hard error.
    Explicit(PathBuf),
}

struct Args {
    cfg: tcpburst_core::ScenarioConfig,
    /// Remembered separately because the config stores the protocol only as
    /// its expanded transport/gateway knobs.
    protocol: Protocol,
    client_list: Vec<usize>,
    protocol_set: Vec<Protocol>,
    seeds: usize,
    jobs: usize,
    workers: usize,
    cache: CacheChoice,
    policy: FailurePolicy,
    retries: u32,
    budget: RunBudget,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    /// The raw argument tail after the subcommand, verbatim — re-executed
    /// by worker processes so parent and child parse the identical base
    /// configuration.
    raw: Vec<String>,
}

/// Sweep-service flags, stripped from the argument tail before scenario
/// parsing so `serve`/`worker`/`submit` can share the flag space.
struct NetOpts {
    listen: Option<String>,
    connect: Option<String>,
    token: String,
    once: bool,
    heartbeat: Duration,
    liveness: Duration,
    grace: Duration,
    max_reconnects: u32,
}

/// Extracts the sweep-service flags; everything else passes through to
/// the scenario parser (or, for `submit`, travels as the job argv).
fn split_net_flags(args: &[String]) -> Result<(NetOpts, Vec<String>), String> {
    let mut net = NetOpts {
        listen: None,
        connect: None,
        token: DEFAULT_TOKEN.to_string(),
        once: false,
        heartbeat: Duration::from_millis(400),
        liveness: Duration::from_millis(2000),
        grace: Duration::from_millis(1500),
        max_reconnects: 8,
    };
    let mut rest = Vec::new();
    let mut it = args.iter().cloned();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--listen" => net.listen = Some(value("--listen")?),
            "--connect" => net.connect = Some(value("--connect")?),
            "--token" => {
                let t = value("--token")?;
                if t.is_empty() || t.split_whitespace().count() != 1 {
                    return Err("--token must be one non-empty word".into());
                }
                net.token = t;
            }
            "--once" => net.once = true,
            "--heartbeat-ms" => {
                let ms: u64 = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
                net.heartbeat = Duration::from_millis(ms.max(1));
            }
            "--liveness-ms" => {
                let ms: u64 = value("--liveness-ms")?
                    .parse()
                    .map_err(|e| format!("--liveness-ms: {e}"))?;
                net.liveness = Duration::from_millis(ms.max(1));
            }
            "--grace-ms" => {
                let ms: u64 = value("--grace-ms")?
                    .parse()
                    .map_err(|e| format!("--grace-ms: {e}"))?;
                net.grace = Duration::from_millis(ms);
            }
            "--max-reconnects" => {
                net.max_reconnects = value("--max-reconnects")?
                    .parse()
                    .map_err(|e| format!("--max-reconnects: {e}"))?;
            }
            _ => rest.push(flag),
        }
    }
    Ok((net, rest))
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut builder = ScenarioBuilder::paper()
        .instrumentation(|i| i.secs(30).seed(0x1CDC_2000));
    let mut protocol = Protocol::Reno;
    let mut client_list = vec![5, 15, 25, 35, 39, 45, 60];
    let mut protocol_set: Vec<Protocol> = Protocol::PAPER_SET.to_vec();
    let mut protocols_explicit = false;
    let mut variant_protocol: Option<Protocol> = None;
    let mut seeds = 5usize;
    let mut jobs = 0usize;
    let mut workers = 1usize;
    let mut cache = CacheChoice::Default;
    let mut policy = FailurePolicy::KeepGoing;
    let mut retries = 1u32;
    let mut budget = RunBudget::UNLIMITED;
    let mut journal = None;
    let mut resume = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--seeds" => {
                let v = argv.next().ok_or("--seeds requires a value")?;
                seeds = v.parse().map_err(|e| format!("--seeds: {e}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--protocols" => {
                let v = argv.next().ok_or("--protocols requires a value")?;
                protocol_set = v
                    .split(',')
                    .map(|s| s.trim().parse().map_err(String::from))
                    .collect::<Result<_, String>>()?;
                if protocol_set.is_empty() {
                    return Err("--protocols requires at least one name".into());
                }
                protocols_explicit = true;
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs requires a value")?;
                jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
            }
            "--workers" => {
                let v = argv.next().ok_or("--workers requires a value")?;
                workers = v.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache" => {
                let v = argv.next().ok_or("--cache requires a value")?;
                cache = CacheChoice::Explicit(PathBuf::from(v));
            }
            "--no-cache" => cache = CacheChoice::Off,
            "--keep-going" => policy = FailurePolicy::KeepGoing,
            "--fail-fast" => policy = FailurePolicy::FailFast,
            "--retries" => {
                let v = argv.next().ok_or("--retries requires a value")?;
                retries = v.parse().map_err(|e| format!("--retries: {e}"))?;
            }
            "--max-events" => {
                let v = argv.next().ok_or("--max-events requires a value")?;
                let n: u64 = v.parse().map_err(|e| format!("--max-events: {e}"))?;
                budget.max_events = Some(n);
            }
            "--max-sim-secs" => {
                let v = argv.next().ok_or("--max-sim-secs requires a value")?;
                let s: f64 = v.parse().map_err(|e| format!("--max-sim-secs: {e}"))?;
                if !(s > 0.0) {
                    return Err("--max-sim-secs must be positive".into());
                }
                budget.max_sim_time = Some(SimDuration::from_nanos((s * 1e9) as u64));
            }
            "--max-wall-secs" => {
                let v = argv.next().ok_or("--max-wall-secs requires a value")?;
                let s: f64 = v.parse().map_err(|e| format!("--max-wall-secs: {e}"))?;
                if !(s >= 0.0) {
                    return Err("--max-wall-secs must be non-negative".into());
                }
                budget.max_wall = Some(Duration::from_secs_f64(s));
            }
            "--journal" => {
                let v = argv.next().ok_or("--journal requires a value")?;
                journal = Some(PathBuf::from(v));
            }
            "--resume" => {
                let v = argv.next().ok_or("--resume requires a value")?;
                resume = Some(PathBuf::from(v));
            }
            _ => {
                let Some(spec) = ScenarioBuilder::flag_spec(&flag) else {
                    return Err(format!("unknown flag: {flag}"));
                };
                let value = match spec.metavar {
                    Some(_) => Some(
                        argv.next()
                            .ok_or_else(|| format!("{flag} requires a value"))?,
                    ),
                    None => None,
                };
                // The --clients value doubles as the sweep axis; a single
                // number is a one-point axis. The last entry still lands in
                // the builder so `run` sees a sensible value.
                if flag == "--clients" {
                    let v = value.as_deref().unwrap_or_default();
                    client_list = v
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--clients: {e}")))
                        .collect::<Result<_, _>>()?;
                    let Some(last) = client_list.last() else {
                        return Err("--clients requires at least one count".into());
                    };
                    builder.apply_cli_flag("--clients", Some(&last.to_string()))?;
                    continue;
                }
                if flag == "--protocol" {
                    protocol = value.as_deref().unwrap_or_default().parse()?;
                }
                if flag == "--variant" {
                    // Keep the headline label in sync with the policy swap;
                    // bare names map onto their FIFO protocol rows, and any
                    // gaimd spec is labelled GAIMD.
                    let v = value.as_deref().unwrap_or_default();
                    let name = v.split(':').next().unwrap_or(v);
                    if let Ok(p) = name.parse::<Protocol>() {
                        protocol = p;
                        variant_protocol = Some(p);
                    }
                }
                builder.apply_cli_flag(&flag, value.as_deref())?;
            }
        }
    }
    // `sweep --variant cubic` with no explicit --protocols means "sweep
    // that one policy", not "sweep the paper set and ignore the flag".
    if !protocols_explicit {
        if let Some(p) = variant_protocol {
            protocol_set = vec![p];
        }
    }
    if journal.is_some() && resume.is_some() {
        return Err("--journal and --resume are mutually exclusive; \
                    --resume already appends to the journal it resumes"
            .into());
    }
    let cfg = builder.try_finish()?;
    Ok(Args {
        cfg,
        protocol,
        client_list,
        protocol_set,
        seeds,
        jobs,
        workers,
        cache,
        policy,
        retries,
        budget,
        journal,
        resume,
        raw: Vec::new(),
    })
}

/// Resolves the `--cache`/`--no-cache` choice into an open store. The
/// default location is best-effort (an unopenable default degrades to "no
/// cache" with a note); an explicit `--cache PATH` that cannot open is a
/// hard error.
fn open_store(choice: &CacheChoice) -> Result<Option<Arc<ResultStore>>, String> {
    match choice {
        CacheChoice::Off => Ok(None),
        CacheChoice::Explicit(path) => ResultStore::open(path.clone())
            .map(|s| Some(Arc::new(s)))
            .map_err(|e| format!("--cache {}: {e}", path.display())),
        CacheChoice::Default => match ResultStore::default_location() {
            Some(root) => match ResultStore::open(root.clone()) {
                Ok(s) => Ok(Some(Arc::new(s))),
                Err(e) => {
                    eprintln!(
                        "note: result cache disabled ({}: {e})",
                        root.display()
                    );
                    Ok(None)
                }
            },
            None => Ok(None),
        },
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    // A budget abort or audit failure still prints the (partial) report —
    // that diagnostic is the whole point — and then fails the command.
    let (r, failure) = match run_point(&args.cfg, &args.budget) {
        Ok(r) => (r, None),
        Err(RunError::BudgetExceeded { exceeded, report }) => {
            (*report, Some(format!("{exceeded} budget exceeded")))
        }
        Err(RunError::InvariantViolation { violations, report }) => {
            (*report, Some(format!("{} invariant violation(s)", violations.len())))
        }
        Err(e) => return Err(e.to_string()),
    };
    let secs = args.cfg.duration.as_nanos() as f64 / 1e9;
    let mut headline = format!(
        "{} / {} clients / {secs} s",
        args.protocol.label(),
        args.cfg.num_flows(),
    );
    if args.cfg.topology != TopoKind::Dumbbell {
        headline.push_str(&format!(" / {}", args.cfg.topology.cli_spec()));
    }
    if args.cfg.ecn {
        headline.push_str(" / ECN");
    }
    if !args.cfg.impair.is_none() {
        headline.push_str(&format!(" / impair {}", args.cfg.impair));
    }
    println!("{headline}");
    println!("{r}");
    println!(
        "c.o.v. ratio vs Poisson: {:.2}x   avg queue: {:.1} pkts   mean delay: {:.1} ms",
        r.cov_ratio(),
        r.avg_queue_len,
        r.mean_delay_secs * 1e3
    );
    if let Some(hops) = &r.hop_series {
        println!("per-hop series ({} hops, one sample per c.o.v. bin):", hops.occupancy.len());
        for (i, (occ, util)) in hops.occupancy.iter().zip(&hops.utilization).enumerate() {
            let peak_occ = occ.iter().map(|(_, v)| v).fold(0.0f64, f64::max);
            let n = util.len().max(1) as f64;
            let mean_util: f64 = util.iter().map(|(_, v)| v).sum::<f64>() / n;
            println!(
                "  hop {i}: peak queue {peak_occ:.0} pkts, mean utilization {:.1}%",
                mean_util * 100.0
            );
        }
    }
    println!(
        "engine: {} events in {:.2} s ({:.0} events/s)",
        r.events_processed,
        r.wall_clock_secs,
        r.events_per_sec()
    );
    match failure {
        None => Ok(()),
        Some(msg) => Err(msg),
    }
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let mut out = std::io::stdout().lock();
    let mut err = std::io::stderr().lock();
    run_sweep(args, None, &mut out, &mut err)
}

/// The sweep body, shared by the `sweep` command (stdout/stderr) and the
/// daemon's job loop (buffers streamed back to the submitter). `remote`
/// attaches the daemon's remote-worker executor.
fn run_sweep(
    args: &Args,
    remote: Option<Arc<RemoteExec>>,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), String> {
    let store = open_store(&args.cache)?;
    let mut supervisor = SweepSupervisor::new(&args.cfg, &args.protocol_set, &args.client_list)
        .jobs(args.jobs)
        .policy(args.policy)
        .budget(args.budget)
        .retries(args.retries);
    if let Some(store) = &store {
        supervisor = supervisor.store(Arc::clone(store));
    }
    if let Some(remote) = remote {
        supervisor = supervisor.remote(remote);
    } else if args.workers != 1 {
        // Worker processes re-execute this binary's hidden `worker`
        // subcommand with our own argument tail, so both sides parse the
        // identical base configuration.
        let mut worker_args = vec!["worker".to_string()];
        worker_args.extend(args.raw.iter().cloned());
        let command = WorkerCommand::current_exe(worker_args)
            .map_err(|e| format!("resolving worker binary: {e}"))?;
        supervisor = supervisor.workers(args.workers).worker_command(command);
    }
    let supervised: SupervisedSweep = match (&args.journal, &args.resume) {
        (Some(path), None) => supervisor.run_with_journal(path).map_err(|e| e.to_string())?,
        (None, Some(path)) => supervisor.resume_from(path).map_err(|e| e.to_string())?,
        _ => supervisor.run(),
    };
    // Figure tables on stdout stay byte-identical whether the sweep ran
    // fresh, journalled, resumed, cached, in-process, in worker processes
    // or on remote workers under chaos; supervision bookkeeping goes to
    // stderr.
    let w = |e: std::io::Error| format!("writing output: {e}");
    writeln!(out, "{}", supervised.sweep.fig2_cov_table()).map_err(w)?;
    writeln!(out, "{}", supervised.sweep.fig3_throughput_table()).map_err(w)?;
    writeln!(out, "{}", supervised.sweep.fig4_loss_table()).map_err(w)?;
    writeln!(out, "{}", supervised.sweep.fig13_timeout_ratio_table()).map_err(w)?;
    if supervised.resumed_points > 0 {
        let _ = writeln!(
            err,
            "resumed {} point(s) from journal, ran {} fresh",
            supervised.resumed_points, supervised.completed_points
        );
    }
    if store.is_some() {
        let (hits, misses) = (supervised.cache_hits, supervised.cache_misses);
        let _ = writeln!(
            err,
            "cache: {hits} hit(s), {misses} miss(es){}",
            if misses == 0 && hits > 0 {
                " (100% cache hits)"
            } else {
                ""
            }
        );
    }
    if supervised.robustness.any() {
        let _ = writeln!(err, "robustness: {}", supervised.robustness);
    }
    if let Some(e) = &supervised.journal_error {
        let _ = writeln!(err, "warning: journal finalize failed: {e}");
    }
    for f in &supervised.failures {
        let _ = writeln!(err, "FAILED  {f}");
    }
    for p in &supervised.skipped {
        let _ = writeln!(err, "SKIPPED {p} (fail-fast abort)");
    }
    if supervised.all_complete() {
        Ok(())
    } else {
        Err(format!(
            "{} point(s) failed, {} skipped",
            supervised.failures.len(),
            supervised.skipped.len()
        ))
    }
}

/// The `serve` daemon loop: accept submitted jobs, run each with the
/// gateway's remote workers attached, stream the output back.
fn cmd_serve(net: &NetOpts) -> Result<(), String> {
    let listen = net.listen.as_deref().ok_or("serve requires --listen ADDR")?;
    let gateway =
        Arc::new(Gateway::bind(listen, &net.token).map_err(|e| format!("--listen {listen}: {e}"))?);
    // The bound address goes to stderr so scripts can discover an
    // ephemeral (`:0`) port.
    eprintln!("listening on {}", gateway.local_addr());
    loop {
        let Some(mut job) = gateway
            .next_job() else {
            return Err("gateway accept loop died".into());
        };
        serve_one_job(&gateway, &mut job, net);
        if net.once {
            return Ok(());
        }
    }
}

fn serve_one_job(gateway: &Arc<Gateway>, job: &mut JobConn, net: &NetOpts) {
    let argv = job.argv().to_vec();
    let Some(("sweep", tail)) = argv.split_first().map(|(s, t)| (s.as_str(), t)) else {
        job.finish(false, "only 'sweep' jobs are supported");
        return;
    };
    let mut args = match parse_args(tail.iter().cloned()) {
        Ok(args) => args,
        Err(e) => {
            job.finish(false, &format!("job argv: {e}"));
            return;
        }
    };
    args.raw = tail.to_vec();
    let tuning = ExecTuning {
        liveness: net.liveness,
        grace: net.grace,
    };
    let exec = Arc::new(RemoteExec::new(Arc::clone(gateway), tail.to_vec(), tuning));
    let mut out = Vec::new();
    let mut err = Vec::new();
    let result = run_sweep(&args, Some(exec), &mut out, &mut err);
    if !out.is_empty() {
        job.send_out(&String::from_utf8_lossy(&out));
    }
    if !err.is_empty() {
        job.send_err(&String::from_utf8_lossy(&err));
    }
    match result {
        Ok(()) => job.finish(true, ""),
        Err(e) => job.finish(false, &e),
    }
}

fn cmd_replicate(args: &Args) -> Result<(), String> {
    let store = open_store(&args.cache)?;
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| args.cfg.seed + i).collect();
    let sweep = ReplicatedSweep::try_run_with_jobs_store(
        &args.cfg,
        &args.protocol_set,
        &args.client_list,
        &seeds,
        args.jobs,
        store.as_deref(),
    )
    .map_err(|f| format!("replicated sweep point failed: {f}"))?;
    if let Some(store) = &store {
        let stats = store.stats();
        eprintln!("cache: {} hit(s), {} miss(es)", stats.hits, stats.misses);
    }
    println!("{}", sweep.fig2_cov_table());
    println!("{}", sweep.fig3_throughput_table());
    println!("{}", sweep.fig4_loss_table());
    println!("{}", sweep.fig13_ratio_table());
    Ok(())
}

fn cmd_cwnd(args: &Args) {
    let fig = cwnd_evolution_from(
        &args.cfg,
        args.protocol,
        args.cfg.num_clients,
        &paper_traced_clients(args.cfg.num_clients),
    );
    println!("{}", fig.table());
}

fn main() -> ExitCode {
    let all: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = all.first().cloned() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = all[1..].to_vec();
    // Networking flags (--listen/--connect/--token/...) are peeled off
    // before scenario parsing so `serve`, `submit` and remote `worker`
    // share the scenario grammar with the in-process commands.
    let (net, scenario_rest) = match split_net_flags(&rest) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if cmd == "serve" {
        return match cmd_serve(&net) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "submit" {
        // Ship the scenario argv to a daemon verbatim; it is parsed there.
        let Some(addr) = net.connect.clone() else {
            eprintln!("error: submit requires --connect ADDR");
            return ExitCode::FAILURE;
        };
        let mut out = std::io::stdout().lock();
        let mut err = std::io::stderr().lock();
        return match submit_job(&addr, &net.token, &scenario_rest, &mut out, &mut err) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "worker" {
        if let Some(addr) = net.connect.clone() {
            // Remote worker: dial a daemon, authenticate, steal points
            // until the job drains; reconnect with backoff on failures.
            let opts = WorkerOptions {
                connect: addr,
                token: net.token.clone(),
                heartbeat: net.heartbeat,
                max_reconnects: net.max_reconnects,
                ..WorkerOptions::default()
            };
            let parse = |argv: &[String]| -> Result<_, String> {
                let mut args = parse_args(argv.iter().cloned())?;
                args.raw = argv.to_vec();
                Ok(args.cfg)
            };
            return ExitCode::from(remote_worker_main(&opts, &parse) as u8);
        }
    }
    let mut args = match parse_args(scenario_rest.iter().cloned()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    args.raw = scenario_rest;
    if cmd == "worker" {
        // Hidden subcommand: a sweep parent spawned us with its own flag
        // tail; serve grid points over stdin/stdout until EOF.
        return ExitCode::from(worker_main(&args.cfg) as u8);
    }
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "sweep" => cmd_sweep(&args),
        "replicate" => cmd_replicate(&args),
        "cwnd" => {
            cmd_cwnd(&args);
            Ok(())
        }
        "table1" => {
            println!("{}", table1());
            println!("{}", topology_ascii());
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => {
            eprintln!("error: unknown command {other}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // Runtime failures (point failures, journal I/O) are not usage
        // errors: report them without re-printing the help.
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
