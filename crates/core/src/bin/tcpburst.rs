//! `tcpburst` — command-line front end for the paper-reproduction harness.
//!
//! ```text
//! tcpburst run       [--clients N] [--protocol P] [--secs S] [--seed K] [--ecn]
//! tcpburst sweep     [--secs S] [--seed K] [--clients a,b,c,...] [--jobs N]
//! tcpburst replicate [--secs S] [--seed K] [--seeds R] [--clients ...] [--jobs N]
//! tcpburst cwnd      [--clients N] [--protocol P] [--secs S]
//! tcpburst table1
//! ```

use std::env;
use std::process::ExitCode;

use tcpburst_core::experiments::{
    cwnd_evolution, paper_traced_clients, table1, topology_ascii, Sweep,
};
use tcpburst_core::{Protocol, ReplicatedSweep, Scenario, ScenarioConfig};
use tcpburst_des::SimDuration;

const USAGE: &str = "\
tcpburst — reproduce 'On the Burstiness of the TCP Congestion-Control
Mechanism in a Distributed Computing System' (ICDCS 2000)

USAGE:
    tcpburst run       [--clients N] [--protocol P] [--secs S] [--seed K] [--ecn]
    tcpburst sweep     [--secs S] [--seed K] [--clients a,b,c,...] [--jobs N]
    tcpburst replicate [--secs S] [--seed K] [--seeds R] [--clients a,b,c,...]
                       [--jobs N]
    tcpburst cwnd      [--clients N] [--protocol P] [--secs S] [--seed K]
    tcpburst table1

PROTOCOLS:
    udp, reno, reno-red, vegas, vegas-red, reno-delayack, tahoe, newreno, sack

DEFAULTS:
    run:   39 clients, reno, 30 s      sweep:     paper set, 30 s
    cwnd:  39 clients, reno, 20 s      replicate: 5 seeds from --seed
    seed:  0x1CDC2000                  jobs:      0 = all available cores

Sweeps fan grid points across --jobs worker threads; the output is
bit-identical for every --jobs value (--jobs 1 runs fully serial).
";

struct Args {
    clients: usize,
    client_list: Vec<usize>,
    protocol: Protocol,
    secs: u64,
    seed: u64,
    seeds: usize,
    jobs: usize,
    ecn: bool,
}

fn parse_protocol(name: &str) -> Result<Protocol, String> {
    Ok(match name {
        "udp" => Protocol::Udp,
        "reno" => Protocol::Reno,
        "reno-red" => Protocol::RenoRed,
        "vegas" => Protocol::Vegas,
        "vegas-red" => Protocol::VegasRed,
        "reno-delayack" => Protocol::RenoDelayAck,
        "tahoe" => Protocol::Tahoe,
        "newreno" => Protocol::NewReno,
        "sack" => Protocol::Sack,
        other => return Err(format!("unknown protocol: {other}")),
    })
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        clients: 39,
        client_list: vec![5, 15, 25, 35, 39, 45, 60],
        protocol: Protocol::Reno,
        secs: 30,
        seed: 0x1CDC_2000,
        seeds: 5,
        jobs: 0,
        ecn: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--clients" => {
                let v = value("--clients")?;
                if v.contains(',') {
                    args.client_list = v
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--clients: {e}")))
                        .collect::<Result<_, _>>()?;
                    args.clients = *args.client_list.last().unwrap();
                } else {
                    args.clients = v.parse().map_err(|e| format!("--clients: {e}"))?;
                }
            }
            "--protocol" => args.protocol = parse_protocol(&value("--protocol")?)?,
            "--secs" => args.secs = value("--secs")?.parse().map_err(|e| format!("--secs: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?;
                if args.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--ecn" => args.ecn = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn cmd_run(args: &Args) {
    let mut cfg = ScenarioConfig::paper(args.clients, args.protocol);
    cfg.duration = SimDuration::from_secs(args.secs);
    cfg.seed = args.seed;
    cfg.ecn = args.ecn;
    let r = Scenario::run(&cfg);
    println!(
        "{} / {} clients / {} s{}",
        args.protocol.label(),
        args.clients,
        args.secs,
        if args.ecn { " / ECN" } else { "" }
    );
    println!("{r}");
    println!(
        "c.o.v. ratio vs Poisson: {:.2}x   avg queue: {:.1} pkts   mean delay: {:.1} ms",
        r.cov_ratio(),
        r.avg_queue_len,
        r.mean_delay_secs * 1e3
    );
    println!(
        "engine: {} events in {:.2} s ({:.0} events/s)",
        r.events_processed,
        r.wall_clock_secs,
        r.events_per_sec()
    );
}

fn cmd_sweep(args: &Args) {
    let sweep = Sweep::run_with_jobs(
        &Protocol::PAPER_SET,
        &args.client_list,
        SimDuration::from_secs(args.secs),
        args.seed,
        args.jobs,
    );
    println!("{}", sweep.fig2_cov_table());
    println!("{}", sweep.fig3_throughput_table());
    println!("{}", sweep.fig4_loss_table());
    println!("{}", sweep.fig13_timeout_ratio_table());
}

fn cmd_replicate(args: &Args) {
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| args.seed + i).collect();
    let sweep = ReplicatedSweep::run_with_jobs(
        &Protocol::PAPER_SET,
        &args.client_list,
        SimDuration::from_secs(args.secs),
        &seeds,
        args.jobs,
    );
    println!("{}", sweep.fig2_cov_table());
    println!("{}", sweep.fig3_throughput_table());
    println!("{}", sweep.fig4_loss_table());
    println!("{}", sweep.fig13_ratio_table());
}

fn cmd_cwnd(args: &Args) {
    let fig = cwnd_evolution(
        args.protocol,
        args.clients,
        &paper_traced_clients(args.clients),
        SimDuration::from_secs(args.secs),
        args.seed,
    );
    println!("{}", fig.table());
}

fn main() -> ExitCode {
    let mut argv = env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "sweep" => cmd_sweep(&args),
        "replicate" => cmd_replicate(&args),
        "cwnd" => cmd_cwnd(&args),
        "table1" => {
            println!("{}", table1());
            println!("{}", topology_ascii());
        }
        "help" | "--help" | "-h" => print!("{USAGE}"),
        other => {
            eprintln!("error: unknown command {other}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
